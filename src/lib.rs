//! PolyFlow: speculative parallelization via immediate postdominators.
//!
//! This is the umbrella crate of the reproduction of Agarwal, Malik, Woley,
//! Stone and Frank, *Exploiting Postdominance for Speculative
//! Parallelization* (HPCA 2007). It re-exports the workspace crates:
//!
//! * [`isa`] — instruction set, program builder, functional interpreter.
//! * [`cfg`] — control-flow graphs, dominators/postdominators, control
//!   dependence, natural loops.
//! * [`core`] — spawn-point classification and task-selection policies
//!   (the paper's contribution).
//! * [`reconv`] — the dynamic reconvergence predictor.
//! * [`sim`] — the PolyFlow timing simulator and superscalar baseline.
//! * [`workloads`] — SPEC2000 integer benchmark stand-ins.
//!
//! See `README.md` for a tour and `examples/` for runnable walkthroughs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use polyflow_cfg as cfg;
pub use polyflow_core as core;
pub use polyflow_isa as isa;
pub use polyflow_reconv as reconv;
pub use polyflow_sim as sim;
pub use polyflow_workloads as workloads;
