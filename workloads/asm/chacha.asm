; chacha — ChaCha20-style ARX core: 512 quarter-rounds of
; add / xor / rotate-left over a 4-word state, with a data-dependent
; hammock (odd mixer values fold in the round counter) so the spawn
; policies have reconvergence points to find inside the hot loop.
; Rotations are built from slli/srli/or since the ISA has no rotate.
; window: 60_000
.program chacha

.data state @ 0x10000 = [1634760805, 857760878, 2036477234, 1797285236]
.data out @ 0x20000 = [0]

fn main {
    la r20, state
    ld r1, 0(r20)
    ld r2, 8(r20)
    ld r3, 16(r20)
    ld r4, 24(r20)
    li r5, 0
    li r6, 0
    li r9, 0
    li r10, 512
round:
    ; a += b; d ^= a; d = rotl(d, 16)
    add r1, r1, r2
    xor r4, r4, r1
    slli r11, r4, 16
    srli r12, r4, 48
    or r4, r11, r12
    ; c += d; b ^= c; b = rotl(b, 12)
    add r3, r3, r4
    xor r2, r2, r3
    slli r11, r2, 12
    srli r12, r2, 52
    or r2, r11, r12
    ; a += b; d ^= a; d = rotl(d, 8)
    add r1, r1, r2
    xor r4, r4, r1
    slli r11, r4, 8
    srli r12, r4, 56
    or r4, r11, r12
    ; c += d; b ^= c; b = rotl(b, 7)
    add r3, r3, r4
    xor r2, r2, r3
    slli r11, r2, 7
    srli r12, r2, 57
    or r2, r11, r12
    ; data-dependent tweak: odd mixer folds the round counter in,
    ; even mixer stirs the rotated word instead
    andi r13, r1, 1
    beq r13, r0, even
    add r5, r5, r9
    j join
even:
    xor r6, r6, r2
join:
    addi r9, r9, 1
    blt r9, r10, round
    ; fold the state and both tweak accumulators into one checksum
    xor r7, r1, r2
    xor r8, r3, r4
    add r7, r7, r8
    add r7, r7, r5
    add r7, r7, r6
    la r21, out
    sd r7, 0(r21)
    halt
}
