; saxpy — the classic streaming array kernel: y[i] = a*x[i] + y[i]
; over 16-element arrays, followed by a sum-reduction over y, repeated
; 100 times. Address arithmetic (shift + add per element) and the
; load/multiply/store chain make this the memory-bound counterpart to
; chacha's pure-ALU mix; the two counted inner loops give the loop
; spawn heuristics consecutive iterations to overlap.
; window: 80_000
.program saxpy

.data x @ 0x10000 = [12, 7, 93, 31, 4, 68, 25, 50, 81, 2, 46, 77, 19, 38, 64, 9]
.data y @ 0x11000 = [5, 14, 3, 27, 91, 6, 42, 13, 70, 58, 21, 34, 88, 47, 16, 29]
.data out @ 0x12000 = [0]

fn main {
    li r3, 3
    li r9, 0
    li r28, 100
outer:
    la r20, x
    la r21, y
    li r1, 0
    li r2, 16
axpy:
    slli r4, r1, 3
    add r5, r20, r4
    add r6, r21, r4
    ld r7, 0(r5)
    ld r8, 0(r6)
    mul r7, r7, r3
    add r8, r8, r7
    sd r8, 0(r6)
    addi r1, r1, 1
    blt r1, r2, axpy
    ; reduce y into r10
    li r1, 0
    li r10, 0
reduce:
    slli r4, r1, 3
    add r6, r21, r4
    ld r7, 0(r6)
    add r10, r10, r7
    addi r1, r1, 1
    blt r1, r2, reduce
    addi r9, r9, 1
    blt r9, r28, outer
    la r22, out
    sd r10, 0(r22)
    halt
}
