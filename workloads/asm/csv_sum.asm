; csv_sum — byte-at-a-time CSV scanner: classifies each character of a
; three-row, four-column table (digit / comma / newline), accumulates
; numbers positionally, and calls a leaf mixer at every row boundary.
; Character classification makes the branching data-dependent the way
; real parsers are — the branch *pattern* is decided by the input
; bytes, not the loop structure. The outer counted loop re-scans the
; buffer 120 times to give the trace some weight.
; window: 120_000
.program csv_sum

; "107,35,9,214\n3,118,42,77\n256,1,99,8\n" — one word per character.
.data text @ 0x10000 = [49, 48, 55, 44, 51, 53, 44, 57, 44, 50, 49, 52, 10, 51, 44, 49, 49, 56, 44, 52, 50, 44, 55, 55, 10, 50, 53, 54, 44, 49, 44, 57, 57, 44, 56, 10, 0]
.data out @ 0x20000 = [0, 0, 0]

fn main {
    li r2, 0
    li r3, 0
    li r6, 0
    li r9, 0
    li r10, 120
pass:
    la r20, text
    li r1, 0
scan:
    ld r4, 0(r20)
    beq r4, r0, eof
    li r28, 48
    blt r4, r28, sep
    ; digit: value = value * 10 + (c - '0')
    li r28, 10
    mul r1, r1, r28
    addi r4, r4, -48
    add r1, r1, r4
    j advance
sep:
    ; field boundary (',' = 44 or '\n' = 10): bank the number
    add r2, r2, r1
    li r1, 0
    addi r3, r3, 1
    li r28, 10
    bne r4, r28, advance
    ; row boundary: stir the running sum through the leaf mixer
    addi r29, r29, -8
    sd r31, 0(r29)
    call mix
    ld r31, 0(r29)
    addi r29, r29, 8
advance:
    addi r20, r20, 8
    j scan
eof:
    addi r9, r9, 1
    blt r9, r10, pass
    la r21, out
    sd r2, 0(r21)
    sd r3, 8(r21)
    sd r6, 16(r21)
    halt
}

fn mix {
    ; r6 = rotl(r6 ^ sum, 13) + fields — a cheap row fingerprint
    xor r6, r6, r2
    slli r11, r6, 13
    srli r12, r6, 51
    or r6, r11, r12
    add r6, r6, r3
    ret
}
