//! Per-function control-flow graphs.

use polyflow_isa::{Function, Inst, Pc, Program};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a basic block within one [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// The block's index in [`Cfg::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id of the block at `index` in [`Cfg::blocks`] order.
    ///
    /// Useful for clients (e.g. dataflow solvers) that flatten a CFG into
    /// index-addressed arrays and need to map back.
    pub fn from_index(index: usize) -> BlockId {
        BlockId(index as u32)
    }

    pub(crate) fn new(i: usize) -> BlockId {
        BlockId(i as u32)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Why a CFG edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Taken direction of a conditional branch.
    Taken,
    /// Not-taken direction of a conditional branch, or plain fall-through
    /// from a non-control instruction.
    FallThrough,
    /// Unconditional direct jump.
    Jump,
    /// One possible target of an indirect jump.
    IndirectTarget,
    /// Fall-through past a call site (the intraprocedural edge; the callee
    /// is not part of this CFG).
    CallFallThrough,
}

/// A basic block: a maximal straight-line instruction sequence.
///
/// Blocks additionally end at call sites (with a
/// [`EdgeKind::CallFallThrough`] successor) so that every call instruction
/// terminates a block — this is what gives procedure fall-throughs their own
/// immediate postdominators (paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// First instruction.
    pub start: Pc,
    /// One past the last instruction.
    pub end: Pc,
}

impl Block {
    /// The `Pc` of the block's final (terminator) instruction.
    pub fn terminator_pc(&self) -> Pc {
        Pc::new(self.end.index() as u32 - 1)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end.index() - self.start.index()
    }

    /// Blocks are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `pc` lies in this block.
    pub fn contains(&self, pc: Pc) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// Why a [`Cfg`] cannot be built from a function's metadata.
///
/// The [`polyflow_isa::ProgramBuilder`] validates both conditions, so
/// builder-produced programs never trip these; hand-constructed
/// [`Function`] records (external symbol tables, tests, fuzzers) can.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// The function's instruction range is empty.
    EmptyFunction {
        /// The function's name.
        name: String,
    },
    /// The function's instruction range extends past the program's end.
    RangeOutOfProgram {
        /// The function's name.
        name: String,
        /// One past the function's claimed last instruction.
        end: u32,
        /// The actual program length.
        program_len: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::EmptyFunction { name } => write!(f, "empty function `{name}`"),
            CfgError::RangeOutOfProgram {
                name,
                end,
                program_len,
            } => write!(
                f,
                "function `{name}` claims instructions up to {end} but the \
                 program has {program_len}"
            ),
        }
    }
}

impl std::error::Error for CfgError {}

/// A control-flow graph for a single function.
#[derive(Debug, Clone)]
pub struct Cfg {
    function: Function,
    blocks: Vec<Block>,
    succs: Vec<Vec<(BlockId, EdgeKind)>>,
    preds: Vec<Vec<BlockId>>,
    exits: Vec<BlockId>,
    terminators: Vec<Inst>,
}

impl Cfg {
    /// Builds the CFG of `function` within `program`.
    ///
    /// Leaders are: the function entry, every in-function target of a
    /// branch, jump, or indirect jump (via the program's jump tables), and
    /// every instruction following a control instruction (including calls).
    ///
    /// # Panics
    ///
    /// Panics if the function is empty or its range leaves the program
    /// (the [`polyflow_isa::ProgramBuilder`] never produces either); use
    /// [`Cfg::try_build`] to get a typed [`CfgError`] instead.
    pub fn build(program: &Program, function: &Function) -> Cfg {
        Cfg::try_build(program, function).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Cfg::build`]: degenerate function metadata (an empty
    /// body, or a range past the program's end) yields a [`CfgError`]
    /// instead of a panic.
    pub fn try_build(program: &Program, function: &Function) -> Result<Cfg, CfgError> {
        let lo = function.range.start;
        let hi = function.range.end;
        if lo >= hi {
            return Err(CfgError::EmptyFunction {
                name: function.name.clone(),
            });
        }
        if hi as usize > program.len() {
            return Err(CfgError::RangeOutOfProgram {
                name: function.name.clone(),
                end: hi,
                program_len: program.len(),
            });
        }
        let in_range = |pc: Pc| (pc.index() as u32) >= lo && (pc.index() as u32) < hi;

        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(lo);
        for i in lo..hi {
            let pc = Pc::new(i);
            let inst = program.inst(pc);
            match inst {
                Inst::Br { target, .. } | Inst::Jmp { target } if in_range(target) => {
                    leaders.insert(target.index() as u32);
                }
                Inst::Jr { .. } => {
                    for &t in program.jump_targets(pc) {
                        if in_range(t) {
                            leaders.insert(t.index() as u32);
                        }
                    }
                }
                _ => {}
            }
            if inst.is_control() && i + 1 < hi {
                leaders.insert(i + 1);
            }
        }

        let bounds: Vec<u32> = leaders.into_iter().collect();
        let mut blocks = Vec::with_capacity(bounds.len());
        for (i, &start) in bounds.iter().enumerate() {
            let end = bounds.get(i + 1).copied().unwrap_or(hi);
            blocks.push(Block {
                id: BlockId::new(i),
                start: Pc::new(start),
                end: Pc::new(end),
            });
        }

        let block_at = |pc: Pc| -> Option<BlockId> {
            if !in_range(pc) {
                return None;
            }
            let i = bounds.partition_point(|&s| s <= pc.index() as u32) - 1;
            Some(BlockId::new(i))
        };

        let n = blocks.len();
        let mut succs: Vec<Vec<(BlockId, EdgeKind)>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut exits = Vec::new();
        let mut terminators = Vec::with_capacity(n);

        for b in &blocks {
            let tpc = b.terminator_pc();
            let term = program.inst(tpc);
            terminators.push(term);
            let mut out: Vec<(BlockId, EdgeKind)> = Vec::new();
            let mut is_exit = false;
            let fall = || block_at(b.end);
            match term {
                Inst::Br { target, .. } => {
                    match block_at(target) {
                        Some(t) => out.push((t, EdgeKind::Taken)),
                        None => is_exit = true,
                    }
                    match fall() {
                        Some(f) => out.push((f, EdgeKind::FallThrough)),
                        None => is_exit = true,
                    }
                }
                Inst::Jmp { target } => match block_at(target) {
                    Some(t) => out.push((t, EdgeKind::Jump)),
                    None => is_exit = true,
                },
                Inst::Jr { .. } => {
                    let targets = program.jump_targets(tpc);
                    let mut any_out_of_range = targets.is_empty();
                    for &t in targets {
                        match block_at(t) {
                            Some(tb) => out.push((tb, EdgeKind::IndirectTarget)),
                            None => any_out_of_range = true,
                        }
                    }
                    if any_out_of_range {
                        is_exit = true;
                    }
                }
                Inst::Call { .. } | Inst::CallR { .. } => match fall() {
                    Some(f) => out.push((f, EdgeKind::CallFallThrough)),
                    None => is_exit = true,
                },
                Inst::Ret | Inst::Halt => is_exit = true,
                _ => match fall() {
                    Some(f) => out.push((f, EdgeKind::FallThrough)),
                    None => is_exit = true,
                },
            }
            // Deduplicate parallel edges (e.g. a conditional branch whose
            // target equals its fall-through) while keeping edge kinds.
            out.dedup();
            for &(t, _) in &out {
                preds[t.index()].push(b.id);
            }
            if is_exit {
                exits.push(b.id);
            }
            succs[b.id.index()] = out;
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }

        Ok(Cfg {
            function: function.clone(),
            blocks,
            succs,
            preds,
            exits,
            terminators,
        })
    }

    /// Builds CFGs for every function in `program`, in layout order.
    pub fn build_all(program: &Program) -> Vec<Cfg> {
        program
            .functions()
            .iter()
            .map(|f| Cfg::build(program, f))
            .collect()
    }

    /// Fallible [`Cfg::build_all`]: stops at the first function whose
    /// metadata is degenerate.
    pub fn try_build_all(program: &Program) -> Result<Vec<Cfg>, CfgError> {
        program
            .functions()
            .iter()
            .map(|f| Cfg::try_build(program, f))
            .collect()
    }

    /// The function this CFG describes.
    pub fn function(&self) -> &Function {
        &self.function
    }

    /// All basic blocks, in address order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A CFG always has at least one block.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// The block containing `pc`, if `pc` is inside this function.
    pub fn block_at(&self, pc: Pc) -> Option<BlockId> {
        if !self.function.contains(pc) {
            return None;
        }
        let i = self
            .blocks
            .partition_point(|b| b.start <= pc)
            .checked_sub(1)?;
        Some(self.blocks[i].id)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Successor edges of a block.
    pub fn succs(&self, id: BlockId) -> &[(BlockId, EdgeKind)] {
        &self.succs[id.index()]
    }

    /// Predecessor blocks of a block (deduplicated).
    pub fn preds(&self, id: BlockId) -> &[BlockId] {
        &self.preds[id.index()]
    }

    /// Blocks from which control leaves the function (return, halt, or a
    /// transfer out of the function body).
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// The terminator instruction of a block.
    pub fn terminator(&self, id: BlockId) -> Inst {
        self.terminators[id.index()]
    }

    /// Iterates over all edges as `(from, to, kind)`.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId, EdgeKind)> + '_ {
        self.blocks
            .iter()
            .flat_map(move |b| self.succs(b.id).iter().map(move |&(t, k)| (b.id, t, k)))
    }

    /// Renders the CFG in Graphviz `dot` syntax (block PCs as labels).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.function.name);
        for b in &self.blocks {
            let _ = writeln!(
                s,
                "  {} [label=\"{} [{}..{})\"];",
                b.id, b.id, b.start, b.end
            );
        }
        for (from, to, kind) in self.edges() {
            let _ = writeln!(s, "  {from} -> {to} [label=\"{kind:?}\"];");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, ProgramBuilder, Reg};

    /// The paper's Figure 1: a loop containing an if-then-else.
    /// Returns (program, block ids for A..F).
    pub(crate) fn fig1() -> (Program, Cfg) {
        let mut b = ProgramBuilder::new();
        b.begin_function("fig1");
        let la = b.fresh_label("A");
        let ld = b.fresh_label("D");
        let le = b.fresh_label("E");
        b.bind_label(la);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // A: 0
        b.br_imm(Cond::Eq, Reg::R2, 0, ld); // B: 1 (li), 2 (br)
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // C: 3
        b.jmp(le); // 4
        b.bind_label(ld);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1); // D: 5
        b.bind_label(le);
        b.alui(AluOp::Add, Reg::R5, Reg::R5, 1); // E: 6
        b.br_imm(Cond::Lt, Reg::R1, 10, la); // F: 7 (li), 8 (br)
        b.halt(); // G: 9
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("fig1").unwrap());
        (p, cfg)
    }

    #[test]
    fn fig1_block_structure() {
        let (_, cfg) = fig1();
        // Blocks: A+B [0..3), C [3..5), D [5..6), E+F [6..9), halt [9..10)
        assert_eq!(cfg.len(), 5);
        let ab = cfg.block_at(Pc::new(0)).unwrap();
        let c = cfg.block_at(Pc::new(3)).unwrap();
        let d = cfg.block_at(Pc::new(5)).unwrap();
        let ef = cfg.block_at(Pc::new(6)).unwrap();
        let halt = cfg.block_at(Pc::new(9)).unwrap();
        assert_eq!(cfg.entry(), ab);
        // A/B branches to D (taken) and C (fall-through).
        let succs: Vec<_> = cfg.succs(ab).iter().map(|&(t, _)| t).collect();
        assert!(succs.contains(&c) && succs.contains(&d));
        // C jumps to E.
        assert_eq!(cfg.succs(c), &[(ef, EdgeKind::Jump)]);
        // D falls through to E.
        assert_eq!(cfg.succs(d), &[(ef, EdgeKind::FallThrough)]);
        // E/F loops back to A/B or falls to halt.
        let succs: Vec<_> = cfg.succs(ef).iter().map(|&(t, _)| t).collect();
        assert!(succs.contains(&ab) && succs.contains(&halt));
        // halt is the exit.
        assert_eq!(cfg.exits(), &[halt]);
        assert!(cfg.succs(halt).is_empty());
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let (_, cfg) = fig1();
        for (from, to, _) in cfg.edges() {
            assert!(cfg.preds(to).contains(&from));
        }
        let mut count = 0;
        for b in cfg.blocks() {
            count += cfg.preds(b.id).len();
        }
        // preds are deduplicated; fig1 has no parallel edges.
        assert_eq!(count, cfg.edges().count());
    }

    #[test]
    fn call_terminates_block() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R1, 1); // 0
        b.call("f"); // 1
        b.li(Reg::R2, 2); // 2
        b.halt(); // 3
        b.end_function();
        b.begin_function("f");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        assert_eq!(cfg.len(), 2);
        let b0 = cfg.block_at(Pc::new(0)).unwrap();
        let b1 = cfg.block_at(Pc::new(2)).unwrap();
        assert_eq!(cfg.succs(b0), &[(b1, EdgeKind::CallFallThrough)]);
        assert!(matches!(cfg.terminator(b0), Inst::Call { .. }));
    }

    #[test]
    fn indirect_jump_edges() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let c0 = b.fresh_label("c0");
        let c1 = b.fresh_label("c1");
        b.li(Reg::R1, 0); // 0
        b.jr(Reg::R1, &[c0, c1]); // 1
        b.bind_label(c0);
        b.li(Reg::R2, 1); // 2
        b.halt(); // 3
        b.bind_label(c1);
        b.li(Reg::R3, 2); // 4
        b.halt(); // 5
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let dispatch = cfg.block_at(Pc::new(1)).unwrap();
        let kinds: Vec<_> = cfg.succs(dispatch).iter().map(|&(_, k)| k).collect();
        assert_eq!(
            kinds,
            vec![EdgeKind::IndirectTarget, EdgeKind::IndirectTarget]
        );
        assert_eq!(cfg.exits().len(), 2);
    }

    #[test]
    fn ret_is_exit() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        b.li(Reg::R1, 1);
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.exits().len(), 1);
    }

    #[test]
    fn block_at_rejects_foreign_pcs() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        b.ret();
        b.end_function();
        b.begin_function("g");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        assert!(cfg.block_at(Pc::new(0)).is_some());
        assert!(cfg.block_at(Pc::new(1)).is_none());
        assert!(cfg.block_at(Pc::new(99)).is_none());
    }

    #[test]
    fn build_all_covers_functions() {
        let mut b = ProgramBuilder::new();
        for name in ["a", "b", "c"] {
            b.begin_function(name);
            b.ret();
            b.end_function();
        }
        let p = b.build().unwrap();
        let cfgs = Cfg::build_all(&p);
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[1].function().name, "b");
    }

    #[test]
    fn dot_output_mentions_blocks() {
        let (_, cfg) = fig1();
        let dot = cfg.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("B0"));
    }

    #[test]
    fn branch_to_own_fallthrough_dedups() {
        // bne r0, r0, next; next: halt — taken target == fall-through block.
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let next = b.fresh_label("next");
        b.br(Cond::Ne, Reg::R0, Reg::R0, next);
        b.bind_label(next);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let b0 = cfg.entry();
        // Both edges lead to the same block; preds deduplicated.
        let t = cfg.succs(b0)[0].0;
        assert_eq!(cfg.preds(t), &[b0]);
    }

    #[test]
    fn empty_function_is_a_typed_error() {
        // The builder refuses empty functions, so fabricate the metadata.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let ghost = Function {
            name: "ghost".to_string(),
            range: 1..1,
        };
        let err = Cfg::try_build(&p, &ghost).unwrap_err();
        assert_eq!(
            err,
            CfgError::EmptyFunction {
                name: "ghost".to_string()
            }
        );
        assert_eq!(err.to_string(), "empty function `ghost`");
    }

    #[test]
    fn out_of_program_range_is_a_typed_error() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let ghost = Function {
            name: "ghost".to_string(),
            range: 0..5,
        };
        let err = Cfg::try_build(&p, &ghost).unwrap_err();
        assert_eq!(
            err,
            CfgError::RangeOutOfProgram {
                name: "ghost".to_string(),
                end: 5,
                program_len: 1,
            }
        );
    }

    #[test]
    fn single_instruction_function_builds_trivial_cfg() {
        // The smallest legal function: one block that is both entry and
        // exit, with no edges. Common shape for workload leaf functions.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("leaf");
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::try_build(&p, p.function("leaf").unwrap()).unwrap();
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.exits(), &[cfg.entry()]);
        assert!(cfg.succs(cfg.entry()).is_empty());
        assert!(cfg.preds(cfg.entry()).is_empty());
    }
}
