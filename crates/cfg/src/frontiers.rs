//! Dominance and postdominance frontiers (Cooper–Harvey–Kennedy).
//!
//! The dominance frontier of a block `d` is the set of blocks `j` such
//! that `d` dominates a predecessor of `j` but does not strictly dominate
//! `j` — the classic construction behind SSA φ-placement. Computed over
//! the *postdominator* tree it yields the control-dependence relation:
//! `b` is control dependent on exactly the blocks in whose postdominance
//! frontier it appears, which this module's tests use to cross-validate
//! [`crate::ControlDeps`].

use crate::dom::{DomKind, DomTree};
use crate::graph::{BlockId, Cfg};
use std::collections::BTreeSet;

/// Per-block (post)dominance frontiers.
#[derive(Debug, Clone)]
pub struct Frontiers {
    kind: DomKind,
    sets: Vec<BTreeSet<BlockId>>,
}

impl Frontiers {
    /// Computes frontiers for `tree` (forward or postdominators) over
    /// `cfg` using Cooper's runner algorithm.
    ///
    /// For postdominators, join nodes are blocks with multiple successors
    /// (joins of the reverse CFG), and runners climb the postdominator
    /// tree; blocks whose walk reaches the virtual exit simply stop there.
    pub fn compute(cfg: &Cfg, tree: &DomTree) -> Frontiers {
        let n = cfg.len();
        let mut sets: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); n];
        // The general runner walk: for each edge p -> b (in the analysis
        // direction), climb the tree from p until reaching idom(b),
        // inserting b into every frontier passed. Unlike the textbook
        // shortcut that only visits multi-predecessor joins, this also
        // captures self-frontiers of single-predecessor loop headers
        // (e.g. a loop whose header is the function entry).
        let walk = |b: BlockId, p: BlockId, sets: &mut Vec<BTreeSet<BlockId>>| {
            if !tree.is_reachable(p) {
                return;
            }
            let target = tree.idom(b);
            let mut runner = Some(p);
            while runner != target {
                let Some(r) = runner else { break };
                sets[r.index()].insert(b);
                runner = tree.idom(r);
            }
        };
        match tree.kind() {
            DomKind::Dominators => {
                for b in cfg.blocks() {
                    for &p in cfg.preds(b.id) {
                        walk(b.id, p, &mut sets);
                    }
                }
            }
            DomKind::Postdominators => {
                for b in cfg.blocks() {
                    for &(s, _) in cfg.succs(b.id) {
                        walk(b.id, s, &mut sets);
                    }
                }
            }
        }
        Frontiers {
            kind: tree.kind(),
            sets,
        }
    }

    /// The frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &BTreeSet<BlockId> {
        &self.sets[b.index()]
    }

    /// True if `j` is in the frontier of `d`.
    pub fn contains(&self, d: BlockId, j: BlockId) -> bool {
        self.sets[d.index()].contains(&j)
    }

    /// Which analysis these frontiers belong to.
    pub fn kind(&self) -> DomKind {
        self.kind
    }

    /// Total frontier entries (useful in tests and benches).
    pub fn len(&self) -> usize {
        self.sets.iter().map(BTreeSet::len).sum()
    }

    /// True if every frontier is empty (straight-line code).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_dep::ControlDeps;
    use polyflow_isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

    fn fig1_cfg() -> Cfg {
        let mut b = ProgramBuilder::new();
        b.begin_function("fig1");
        let la = b.fresh_label("A");
        let ld = b.fresh_label("D");
        let le = b.fresh_label("E");
        b.bind_label(la);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Eq, Reg::R2, 0, ld);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.jmp(le);
        b.bind_label(ld);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        b.bind_label(le);
        b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        b.br_imm(Cond::Lt, Reg::R1, 10, la);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        Cfg::build(&p, p.function("fig1").unwrap())
    }

    #[test]
    fn forward_frontier_of_diamond_arms_is_the_join() {
        let cfg = fig1_cfg();
        let dom = DomTree::dominators(&cfg);
        let df = Frontiers::compute(&cfg, &dom);
        assert_eq!(df.kind(), DomKind::Dominators);
        let c = cfg.block_at(Pc::new(3)).unwrap();
        let d = cfg.block_at(Pc::new(5)).unwrap();
        let ef = cfg.block_at(Pc::new(6)).unwrap();
        let ab = cfg.block_at(Pc::new(0)).unwrap();
        // The then/else arms' dominance frontier is the join E.
        assert!(df.contains(c, ef));
        assert!(df.contains(d, ef));
        // The loop: A+B's frontier contains the header itself (back edge).
        assert!(df.contains(ab, ab));
        assert!(!df.is_empty());
    }

    #[test]
    fn postdominance_frontier_equals_control_dependence() {
        // b is control dependent on exactly the blocks in whose
        // postdominance frontier b lies.
        let cfg = fig1_cfg();
        let pdom = DomTree::postdominators(&cfg);
        let pdf = Frontiers::compute(&cfg, &pdom);
        let cd = ControlDeps::compute(&cfg, &pdom);
        for b in cfg.blocks() {
            for branch in cfg.blocks() {
                assert_eq!(
                    cd.depends_on(b.id, branch.id),
                    pdf.contains(b.id, branch.id),
                    "mismatch: {} on {}",
                    b.id,
                    branch.id
                );
            }
        }
    }

    #[test]
    fn straightline_frontiers_are_empty() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        b.nop();
        b.nop();
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let dom = DomTree::dominators(&cfg);
        let df = Frontiers::compute(&cfg, &dom);
        assert!(df.is_empty());
    }
}
