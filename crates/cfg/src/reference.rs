//! Slow, obviously-correct reference implementations used as test oracles.
//!
//! These compute dominance and postdominance with the textbook set-based
//! dataflow equations:
//!
//! ```text
//! dom(entry)  = {entry}
//! dom(n)      = {n} ∪ ⋂ over preds p of dom(p)
//! ```
//!
//! and postdominance as dominance over the reverse CFG with a virtual exit.
//! Complexity is O(n² · e) in the worst case — fine for test graphs, far
//! too slow for the workloads. Property tests compare [`crate::DomTree`]
//! against these on randomized CFGs.

use crate::graph::{BlockId, Cfg};
use std::collections::BTreeSet;

/// Computes, for each block, the full set of blocks that dominate it.
///
/// Unreachable blocks map to `None` (their dominator set is undefined).
pub fn dominator_sets(cfg: &Cfg) -> Vec<Option<BTreeSet<BlockId>>> {
    let n = cfg.len();
    let preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            cfg.preds(BlockId::new(i))
                .iter()
                .map(|p| p.index())
                .collect()
        })
        .collect();
    sets(n, cfg.entry().index(), &preds)
        .into_iter()
        .map(|o| o.map(|s| s.into_iter().map(BlockId::new).collect()))
        .collect()
}

/// Computes, for each block, the full set of blocks that postdominate it.
///
/// Blocks that cannot reach an exit map to `None`. The virtual exit itself
/// is omitted from the returned sets (it is not a real block).
pub fn postdominator_sets(cfg: &Cfg) -> Vec<Option<BTreeSet<BlockId>>> {
    let n = cfg.len();
    let virt = n;
    // Reverse graph preds = CFG succs, plus virtual exit flows.
    let mut preds: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            cfg.succs(BlockId::new(i))
                .iter()
                .map(|&(t, _)| t.index())
                .collect()
        })
        .collect();
    // In the reverse graph, an exit block's predecessor is the virtual exit.
    for p in preds.iter_mut() {
        p.dedup();
    }
    let mut rev_preds = vec![Vec::new(); n + 1];
    for (i, p) in preds.iter().enumerate() {
        // reverse graph edge i -> p? Careful: in reverse graph, the edge
        // u->v of the CFG becomes v->u, so preds_rev(u) = succs_cfg(u).
        rev_preds[i] = p.clone();
    }
    for &e in cfg.exits() {
        rev_preds[e.index()].push(virt);
    }
    rev_preds[virt] = Vec::new();

    let raw = sets(n + 1, virt, &rev_preds);
    raw.into_iter()
        .take(n)
        .map(|o| {
            o.map(|s| {
                s.into_iter()
                    .filter(|&x| x != virt)
                    .map(BlockId::new)
                    .collect()
            })
        })
        .collect()
}

/// The immediate postdominator of each block, derived from
/// [`postdominator_sets`]: the strict postdominator that is postdominated
/// by every other strict postdominator.
pub fn immediate_postdominators(cfg: &Cfg) -> Vec<Option<BlockId>> {
    let psets = postdominator_sets(cfg);
    let n = cfg.len();
    (0..n)
        .map(|i| {
            let set = psets[i].as_ref()?;
            let strict: Vec<BlockId> = set.iter().copied().filter(|&b| b.index() != i).collect();
            // ipdom = the strict postdominator whose own strict-postdominator
            // count is largest minus... simpler: the one contained in every
            // other strict postdominator's pdom set is the *farthest*; the
            // immediate one is the strict postdominator that does NOT
            // postdominate any other strict postdominator... Actually the
            // immediate postdominator is the strict postdominator `d` such
            // that every other strict postdominator postdominates `d`.
            strict.iter().copied().find(|&d| {
                strict.iter().all(|&other| {
                    other == d
                        || psets[d.index()]
                            .as_ref()
                            .map(|s| s.contains(&other))
                            .unwrap_or(false)
                })
            })
        })
        .collect()
}

fn sets(n: usize, root: usize, preds: &[Vec<usize>]) -> Vec<Option<BTreeSet<usize>>> {
    // Reachability from root along the edge direction implied by preds:
    // node x is reachable if root == x or some pred chain links it. We
    // compute reachability by forward propagation over the implied succs.
    let mut succs = vec![Vec::new(); n];
    for (v, ps) in preds.iter().enumerate() {
        for &u in ps {
            succs[u].push(v);
        }
    }
    let mut reach = vec![false; n];
    let mut stack = vec![root];
    reach[root] = true;
    while let Some(u) = stack.pop() {
        for &v in &succs[u] {
            if !reach[v] {
                reach[v] = true;
                stack.push(v);
            }
        }
    }

    let full: BTreeSet<usize> = (0..n).filter(|&i| reach[i]).collect();
    let mut dom: Vec<Option<BTreeSet<usize>>> = (0..n)
        .map(|i| {
            if !reach[i] {
                None
            } else if i == root {
                Some([root].into_iter().collect())
            } else {
                Some(full.clone())
            }
        })
        .collect();

    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if v == root || !reach[v] {
                continue;
            }
            let mut new: Option<BTreeSet<usize>> = None;
            for &p in &preds[v] {
                if !reach[p] {
                    continue;
                }
                let pd = dom[p].as_ref().expect("reachable");
                new = Some(match new {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(v);
            if dom[v].as_ref() != Some(&new) {
                dom[v] = Some(new);
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use polyflow_isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

    fn fig1_cfg() -> Cfg {
        let mut b = ProgramBuilder::new();
        b.begin_function("fig1");
        let la = b.fresh_label("A");
        let ld = b.fresh_label("D");
        let le = b.fresh_label("E");
        b.bind_label(la);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Eq, Reg::R2, 0, ld);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.jmp(le);
        b.bind_label(ld);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        b.bind_label(le);
        b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        b.br_imm(Cond::Lt, Reg::R1, 10, la);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        Cfg::build(&p, p.function("fig1").unwrap())
    }

    #[test]
    fn reference_agrees_with_chk_on_fig1() {
        let cfg = fig1_cfg();
        let fast = DomTree::postdominators(&cfg);
        let ipdoms = immediate_postdominators(&cfg);
        for b in cfg.blocks() {
            assert_eq!(fast.idom(b.id), ipdoms[b.id.index()], "block {}", b.id);
        }
    }

    #[test]
    fn reference_dominator_sets_on_fig1() {
        let cfg = fig1_cfg();
        let fast = DomTree::dominators(&cfg);
        let sets = dominator_sets(&cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                let slow = sets[b.id.index()]
                    .as_ref()
                    .map(|s| s.contains(&a.id))
                    .unwrap_or(false);
                assert_eq!(
                    fast.dominates(a.id, b.id),
                    slow || a.id == b.id && sets[b.id.index()].is_none(),
                    "{} dom {}",
                    a.id,
                    b.id
                );
            }
        }
    }

    #[test]
    fn postdominator_sets_contain_self() {
        let cfg = fig1_cfg();
        for (i, s) in postdominator_sets(&cfg).iter().enumerate() {
            let s = s.as_ref().expect("fig1 fully reaches exit");
            assert!(s.contains(&BlockId::new(i)));
        }
    }

    #[test]
    fn entry_postdominated_by_join_in_diamond() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let le = b.fresh_label("else");
        let lj = b.fresh_label("join");
        b.br_imm(Cond::Eq, Reg::R1, 0, le);
        b.nop();
        b.jmp(lj);
        b.bind_label(le);
        b.nop();
        b.bind_label(lj);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let join = cfg.block_at(Pc::new(5)).unwrap();
        let ipdoms = immediate_postdominators(&cfg);
        assert_eq!(ipdoms[cfg.entry().index()], Some(join));
    }
}
