//! Dominator and postdominator trees (Cooper–Harvey–Kennedy).

use crate::graph::{BlockId, Cfg};

/// Which analysis a [`DomTree`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomKind {
    /// Forward dominators rooted at the CFG entry.
    Dominators,
    /// Postdominators: dominators of the reverse CFG rooted at a virtual
    /// exit that succeeds every exit block (paper §2.1).
    Postdominators,
}

/// A dominator or postdominator tree over the blocks of one [`Cfg`].
///
/// For postdominators the tree root is a *virtual exit* node that is not a
/// real block: blocks whose immediate postdominator is the virtual exit
/// report [`DomTree::idom`] of `None` while still being
/// [`DomTree::is_reachable`]. Blocks that cannot reach any exit (infinite
/// loops) are unreachable in the reverse CFG and report `idom` of `None`
/// and `is_reachable` of `false`.
#[derive(Debug, Clone)]
pub struct DomTree {
    kind: DomKind,
    /// Immediate dominator of each block, as a real block.
    idom: Vec<Option<BlockId>>,
    /// Whether the node was reached from the root during analysis.
    reachable: Vec<bool>,
    /// Depth in the tree (root-adjacent blocks have depth 1; the virtual
    /// root has depth 0 and is not represented).
    depth: Vec<u32>,
    /// Children lists (real blocks only).
    children: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Computes forward dominators of `cfg` from its entry block.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        // Node space: blocks only; root = entry.
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                cfg.succs(BlockId::new(i))
                    .iter()
                    .map(|&(t, _)| t.index())
                    .collect()
            })
            .collect();
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                cfg.preds(BlockId::new(i))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect();
        let root = cfg.entry().index();
        let idom_raw = chk(n, root, &succs, &preds);
        Self::assemble(DomKind::Dominators, n, root, None, idom_raw)
    }

    /// Computes postdominators of `cfg` using a virtual exit node.
    pub fn postdominators(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let virt = n; // virtual exit index
                      // Reverse graph: succ = CFG preds, preds = CFG succs; virtual exit
                      // has an edge *to* every exit block in the reverse graph.
        let mut succs: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                cfg.preds(BlockId::new(i))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            })
            .collect();
        let mut preds: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                cfg.succs(BlockId::new(i))
                    .iter()
                    .map(|&(t, _)| t.index())
                    .collect()
            })
            .collect();
        succs.push(cfg.exits().iter().map(|b| b.index()).collect());
        preds.push(Vec::new());
        for &e in cfg.exits() {
            preds[e.index()].push(virt);
        }
        let idom_raw = chk(n + 1, virt, &succs, &preds);
        Self::assemble(DomKind::Postdominators, n, virt, Some(virt), idom_raw)
    }

    fn assemble(
        kind: DomKind,
        n: usize,
        root: usize,
        virt: Option<usize>,
        idom_raw: Vec<Option<usize>>,
    ) -> DomTree {
        let mut idom = vec![None; n];
        let mut reachable = vec![false; n];
        for i in 0..n {
            if let Some(d) = idom_raw[i] {
                reachable[i] = true;
                if i == root {
                    // The root's idom is itself; real roots have no parent.
                    continue;
                }
                if Some(d) == virt {
                    idom[i] = None; // parent is the virtual exit
                } else {
                    idom[i] = Some(BlockId::new(d));
                }
            }
        }
        if root < n {
            reachable[root] = true;
        }

        // Depths: iterate until settled (tree, so a simple pass in any
        // order with memoization works).
        let mut depth = vec![0u32; n];
        for i in 0..n {
            if !reachable[i] {
                continue;
            }
            let mut d = 0;
            let mut cur = i;
            while let Some(p) = idom[cur] {
                d += 1;
                cur = p.index();
            }
            // Blocks hanging off the virtual root get +1 so the (absent)
            // root sits at depth 0.
            depth[i] = d + 1;
        }

        let mut children = vec![Vec::new(); n];
        for (i, parent) in idom.iter().enumerate() {
            if let Some(p) = parent {
                children[p.index()].push(BlockId::new(i));
            }
        }

        DomTree {
            kind,
            idom,
            reachable,
            depth,
            children,
        }
    }

    /// Which analysis this tree holds.
    pub fn kind(&self) -> DomKind {
        self.kind
    }

    /// The immediate (post)dominator of `b`, as a real block.
    ///
    /// Returns `None` for the analysis root, for blocks whose immediate
    /// postdominator is the virtual exit, and for blocks not reached by the
    /// analysis. Use [`DomTree::is_reachable`] to distinguish the last case.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// True if the analysis reached `b` from its root. Unreached blocks
    /// (dead code for dominators; infinite loops for postdominators) have
    /// no defined (post)dominators.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Depth of `b` below the (virtual) root; root-adjacent blocks have
    /// depth 1. Returns 0 for unreachable blocks.
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Children of `b` in the tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// True if `a` (post)dominates `b` (reflexively).
    ///
    /// Unreachable nodes (post)dominate nothing and are (post)dominated by
    /// nothing except themselves.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        let mut cur = b;
        while self.depth(cur) > self.depth(a) {
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
        cur == a
    }

    /// True if `a` strictly (post)dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Walks up the tree from `b` (exclusive) to the root, yielding real
    /// blocks.
    pub fn ancestors(&self, b: BlockId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: self.idom(b),
        }
    }
}

/// Iterator over a block's (post)dominator-tree ancestors.
#[derive(Debug)]
pub struct Ancestors<'a> {
    tree: &'a DomTree,
    cur: Option<BlockId>,
}

impl Iterator for Ancestors<'_> {
    type Item = BlockId;
    fn next(&mut self) -> Option<BlockId> {
        let c = self.cur?;
        self.cur = self.tree.idom(c);
        Some(c)
    }
}

/// Cooper–Harvey–Kennedy iterative dominator computation on an abstract
/// graph of `n` nodes rooted at `root`.
///
/// Returns, for each node, its immediate dominator (the root maps to
/// itself); unreachable nodes map to `None`.
fn chk(n: usize, root: usize, succs: &[Vec<usize>], preds: &[Vec<usize>]) -> Vec<Option<usize>> {
    // Reverse postorder from root.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    state[root] = 1;
    while let Some(&mut (node, ref mut i)) = stack.last_mut() {
        if *i < succs[node].len() {
            let next = succs[node][*i];
            *i += 1;
            if state[next] == 0 {
                state[next] = 1;
                stack.push((next, 0));
            }
        } else {
            state[node] = 2;
            order.push(node);
            stack.pop();
        }
    }
    order.reverse(); // now RPO

    let mut rpo_number = vec![usize::MAX; n];
    for (i, &node) in order.iter().enumerate() {
        rpo_number[node] = i;
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);

    let intersect = |idom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo[a] > rpo[b] {
                a = idom[a].expect("processed node");
            }
            while rpo[b] > rpo[a] {
                b = idom[b].expect("processed node");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            if node == root {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[node] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_number, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[node] != Some(ni) {
                    idom[node] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

    /// Figure 1 graph: A+B, C, D, E+F, halt.
    fn fig1_cfg() -> Cfg {
        let mut b = ProgramBuilder::new();
        b.begin_function("fig1");
        let la = b.fresh_label("A");
        let ld = b.fresh_label("D");
        let le = b.fresh_label("E");
        b.bind_label(la);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Eq, Reg::R2, 0, ld);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.jmp(le);
        b.bind_label(ld);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        b.bind_label(le);
        b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        b.br_imm(Cond::Lt, Reg::R1, 10, la);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        Cfg::build(&p, p.function("fig1").unwrap())
    }

    #[test]
    fn fig1_dominators() {
        let cfg = fig1_cfg();
        let dom = DomTree::dominators(&cfg);
        let ab = cfg.block_at(Pc::new(0)).unwrap();
        let c = cfg.block_at(Pc::new(3)).unwrap();
        let d = cfg.block_at(Pc::new(5)).unwrap();
        let ef = cfg.block_at(Pc::new(6)).unwrap();
        let halt = cfg.block_at(Pc::new(9)).unwrap();
        assert_eq!(dom.idom(ab), None); // entry
        assert_eq!(dom.idom(c), Some(ab));
        assert_eq!(dom.idom(d), Some(ab));
        assert_eq!(dom.idom(ef), Some(ab));
        assert_eq!(dom.idom(halt), Some(ef));
        assert!(dom.dominates(ab, halt));
        assert!(dom.strictly_dominates(ab, ef));
        assert!(!dom.dominates(c, ef));
        assert!(dom.dominates(ef, ef));
    }

    #[test]
    fn fig1_postdominators_match_figure2() {
        let cfg = fig1_cfg();
        let pdom = DomTree::postdominators(&cfg);
        let ab = cfg.block_at(Pc::new(0)).unwrap();
        let c = cfg.block_at(Pc::new(3)).unwrap();
        let d = cfg.block_at(Pc::new(5)).unwrap();
        let ef = cfg.block_at(Pc::new(6)).unwrap();
        let halt = cfg.block_at(Pc::new(9)).unwrap();
        // Figure 2: F (here E+F) is the parent of B (here A+B), C and D's
        // parent is E, halt postdominates F.
        assert_eq!(pdom.idom(ab), Some(ef));
        assert_eq!(pdom.idom(c), Some(ef));
        assert_eq!(pdom.idom(d), Some(ef));
        assert_eq!(pdom.idom(ef), Some(halt));
        assert_eq!(pdom.idom(halt), None); // parent is the virtual exit
        assert!(pdom.is_reachable(halt));
        assert!(pdom.dominates(ef, ab)); // E+F postdominates A+B
        assert!(pdom.dominates(halt, ab));
        assert!(!pdom.dominates(c, ab));
    }

    #[test]
    fn dead_code_unreachable_in_dominators() {
        // f: jmp end; dead: nop...; end: halt
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let end = b.fresh_label("end");
        b.jmp(end);
        b.nop(); // dead
        b.bind_label(end);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let dom = DomTree::dominators(&cfg);
        let dead = cfg.block_at(Pc::new(1)).unwrap();
        assert!(!dom.is_reachable(dead));
        assert_eq!(dom.idom(dead), None);
        assert_eq!(dom.depth(dead), 0);
        // Unreachable blocks dominate nothing but themselves.
        assert!(!dom.dominates(dead, cfg.entry()));
        assert!(dom.dominates(dead, dead));
    }

    #[test]
    fn infinite_loop_has_no_postdominators() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let top = b.fresh_label("top");
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.jmp(top);
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let body = cfg.entry();
        assert!(!pdom.is_reachable(body));
        assert_eq!(pdom.idom(body), None);
    }

    #[test]
    fn diamond_postdominators() {
        // entry -> (t | e) -> join -> halt
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let le = b.fresh_label("else");
        let lj = b.fresh_label("join");
        b.br_imm(Cond::Eq, Reg::R1, 0, le);
        b.nop();
        b.jmp(lj);
        b.bind_label(le);
        b.nop();
        b.bind_label(lj);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let entry = cfg.entry();
        let join = cfg.block_at(Pc::new(5)).unwrap();
        assert_eq!(pdom.idom(entry), Some(join));
        let t = cfg.block_at(Pc::new(2)).unwrap();
        let e = cfg.block_at(Pc::new(4)).unwrap();
        assert_eq!(pdom.idom(t), Some(join));
        assert_eq!(pdom.idom(e), Some(join));
        // Ancestor iteration from entry: join, then stops at virtual root.
        let anc: Vec<_> = pdom.ancestors(entry).collect();
        assert_eq!(anc, vec![join]);
    }

    #[test]
    fn multi_exit_ipostdom_is_virtual() {
        // A branch where each arm returns separately: the branch block's
        // ipostdom is the virtual exit (no real block).
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let le = b.fresh_label("else");
        b.br_imm(Cond::Eq, Reg::R1, 0, le);
        b.ret();
        b.bind_label(le);
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let entry = cfg.entry();
        assert!(pdom.is_reachable(entry));
        assert_eq!(pdom.idom(entry), None);
        assert_eq!(pdom.depth(entry), 1);
    }

    #[test]
    fn dominance_is_partial_order_on_fig1() {
        let cfg = fig1_cfg();
        let dom = DomTree::dominators(&cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                for c in cfg.blocks() {
                    if dom.dominates(a.id, b.id) && dom.dominates(b.id, c.id) {
                        assert!(dom.dominates(a.id, c.id), "transitivity violated");
                    }
                }
                if dom.dominates(a.id, b.id) && dom.dominates(b.id, a.id) {
                    assert_eq!(a.id, b.id, "antisymmetry violated");
                }
            }
        }
    }

    #[test]
    fn kind_is_reported() {
        let cfg = fig1_cfg();
        assert_eq!(DomTree::dominators(&cfg).kind(), DomKind::Dominators);
        assert_eq!(
            DomTree::postdominators(&cfg).kind(),
            DomKind::Postdominators
        );
    }

    #[test]
    fn children_are_consistent_with_idom() {
        let cfg = fig1_cfg();
        let pdom = DomTree::postdominators(&cfg);
        for b in cfg.blocks() {
            for &c in pdom.children(b.id) {
                assert_eq!(pdom.idom(c), Some(b.id));
            }
        }
    }
}
