//! Control dependence (Ferrante–Ottenstein–Warren).

use crate::dom::DomTree;
use crate::graph::{BlockId, Cfg, EdgeKind};

/// The control-dependence relation of a CFG (paper Figure 3).
///
/// Block `X` is control dependent on branch block `B` if one successor edge
/// of `B` leads to `X` on all paths to the exit while the other may bypass
/// `X` entirely (§2.1). Computed from the postdominator tree with the
/// standard FOW edge walk: for each edge `(u, v)` where `v` does not
/// postdominate `u`, every block from `v` up the postdominator tree to (but
/// excluding) `ipostdom(u)` is control dependent on `u`.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// For each block: the branch blocks it is control dependent on,
    /// with the edge kind that leads to it.
    deps: Vec<Vec<(BlockId, EdgeKind)>>,
    /// For each branch block: the blocks control dependent on it.
    dependents: Vec<Vec<BlockId>>,
}

impl ControlDeps {
    /// Computes control dependences from a CFG and its postdominator tree.
    ///
    /// # Panics
    ///
    /// Panics if `pdom` was not computed from `cfg` (sizes disagree) or is
    /// a forward dominator tree.
    pub fn compute(cfg: &Cfg, pdom: &DomTree) -> ControlDeps {
        assert_eq!(
            pdom.kind(),
            crate::dom::DomKind::Postdominators,
            "ControlDeps requires a postdominator tree"
        );
        let n = cfg.len();
        let mut deps: Vec<Vec<(BlockId, EdgeKind)>> = vec![Vec::new(); n];
        let mut dependents: Vec<Vec<BlockId>> = vec![Vec::new(); n];

        for (u, v, kind) in cfg.edges() {
            // Skip edges whose target *strictly* postdominates the source:
            // walking from such a target would climb away from ipostdom(u)
            // forever. Non-strict matters: a self-loop edge (u → u) must be
            // walked so that u becomes control dependent on itself (FOW
            // define condition 2 with strict postdomination).
            if pdom.strictly_dominates(v, u) {
                continue;
            }
            // Walk from v up to (but not including) ipostdom(u). When
            // ipostdom(u) is the virtual exit (None) the walk ends at the
            // tree root.
            let stop = pdom.idom(u);
            let mut cur = Some(v);
            while let Some(w) = cur {
                if Some(w) == stop {
                    break;
                }
                deps[w.index()].push((u, kind));
                dependents[u.index()].push(w);
                if !pdom.is_reachable(w) {
                    // Inside an infinite loop: no postdominator chain to
                    // follow; the dependence on the entering edge is
                    // recorded, then stop.
                    break;
                }
                cur = pdom.idom(w);
            }
        }
        for d in &mut deps {
            d.sort_by_key(|&(b, _)| b);
            d.dedup();
        }
        for d in &mut dependents {
            d.sort_unstable();
            d.dedup();
        }
        ControlDeps { deps, dependents }
    }

    /// The branch blocks `b` is control dependent on, with the successor
    /// edge kind that leads toward `b`.
    pub fn deps_of(&self, b: BlockId) -> &[(BlockId, EdgeKind)] {
        &self.deps[b.index()]
    }

    /// The blocks control dependent on branch block `b`.
    pub fn dependents_of(&self, b: BlockId) -> &[BlockId] {
        &self.dependents[b.index()]
    }

    /// True if `b` is control dependent on `branch`.
    pub fn depends_on(&self, b: BlockId, branch: BlockId) -> bool {
        self.deps[b.index()].iter().any(|&(d, _)| d == branch)
    }

    /// Total number of control-dependence pairs.
    pub fn len(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// True if no block is control dependent on any branch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

    fn fig1_cfg() -> Cfg {
        let mut b = ProgramBuilder::new();
        b.begin_function("fig1");
        let la = b.fresh_label("A");
        let ld = b.fresh_label("D");
        let le = b.fresh_label("E");
        b.bind_label(la);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Eq, Reg::R2, 0, ld);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.jmp(le);
        b.bind_label(ld);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        b.bind_label(le);
        b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        b.br_imm(Cond::Lt, Reg::R1, 10, la);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        Cfg::build(&p, p.function("fig1").unwrap())
    }

    #[test]
    fn fig1_matches_figure3() {
        // Figure 3: A, B, E, F are control dependent on the loop branch in
        // F; C and D are control dependent on the branch in B; E is *not*
        // control dependent on B, C, or D.
        let cfg = fig1_cfg();
        let pdom = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let ab = cfg.block_at(Pc::new(0)).unwrap();
        let c = cfg.block_at(Pc::new(3)).unwrap();
        let d = cfg.block_at(Pc::new(5)).unwrap();
        let ef = cfg.block_at(Pc::new(6)).unwrap();

        // C and D depend on the if-else branch (in block A+B).
        assert!(cd.depends_on(c, ab));
        assert!(cd.depends_on(d, ab));
        // The join E+F does NOT depend on the if-else branch.
        assert!(!cd.depends_on(ef, ab));
        // The loop blocks depend on the loop branch (in block E+F).
        assert!(cd.depends_on(ab, ef));
        assert!(cd.depends_on(ef, ef)); // loop branch controls its own block's re-execution
                                        // C is NOT control dependent on the loop branch — only on the
                                        // if-else branch (Figure 3 shows exactly C, D under B).
        assert!(!cd.depends_on(c, ef));
        assert_eq!(cd.dependents_of(ab), &[c, d]);
    }

    #[test]
    fn straightline_has_no_deps() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        b.nop();
        b.nop();
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        assert!(cd.is_empty());
        assert_eq!(cd.len(), 0);
    }

    #[test]
    fn diamond_arms_depend_on_branch() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let le = b.fresh_label("else");
        let lj = b.fresh_label("join");
        b.br_imm(Cond::Eq, Reg::R1, 0, le);
        b.nop();
        b.jmp(lj);
        b.bind_label(le);
        b.nop();
        b.bind_label(lj);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let branch = cfg.entry();
        let t = cfg.block_at(Pc::new(2)).unwrap();
        let e = cfg.block_at(Pc::new(4)).unwrap();
        let join = cfg.block_at(Pc::new(5)).unwrap();
        assert!(cd.depends_on(t, branch));
        assert!(cd.depends_on(e, branch));
        assert!(!cd.depends_on(join, branch));
        // Edge kinds: the taken edge leads to the else arm.
        let dep = cd
            .deps_of(e)
            .iter()
            .find(|&&(b, _)| b == branch)
            .copied()
            .unwrap();
        assert_eq!(dep.1, EdgeKind::Taken);
    }

    #[test]
    #[should_panic(expected = "postdominator")]
    fn rejects_forward_dominators() {
        let cfg = fig1_cfg();
        let dom = DomTree::dominators(&cfg);
        let _ = ControlDeps::compute(&cfg, &dom);
    }

    #[test]
    fn if_then_dependence() {
        // branch over a then-block: only the then-block is dependent.
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let skip = b.fresh_label("skip");
        b.br_imm(Cond::Eq, Reg::R1, 0, skip);
        b.nop(); // then
        b.bind_label(skip);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let pdom = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pdom);
        let branch = cfg.entry();
        let then = cfg.block_at(Pc::new(2)).unwrap();
        let join = cfg.block_at(Pc::new(3)).unwrap();
        assert_eq!(cd.dependents_of(branch), &[then]);
        assert!(!cd.depends_on(join, branch));
    }
}
