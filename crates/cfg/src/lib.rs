//! Control-flow analysis for PolyFlow: CFGs, dominators, postdominators,
//! control dependence, and natural loops.
//!
//! The paper's central construction (§2.1) is the **immediate postdominator**
//! of each conditional branch: the first instruction guaranteed to be
//! fetched no matter which way the branch resolves. This crate provides
//! everything needed to compute that:
//!
//! * [`Cfg`] — a per-function control-flow graph built from a
//!   [`polyflow_isa::Program`]. Call instructions terminate blocks (with a
//!   fall-through edge), so each call site gets its own postdominator — the
//!   paper's *procedure fall-through* spawn points.
//! * [`DomTree`] — dominator or postdominator tree, computed with the
//!   iterative Cooper–Harvey–Kennedy algorithm. Postdominators are
//!   dominators of the reverse CFG with a virtual exit (§2.1).
//! * [`ControlDeps`] — the control-dependence relation of
//!   Ferrante–Ottenstein–Warren, derived from the postdominator tree
//!   (paper Figures 1–3).
//! * [`LoopForest`] — natural loops and their nesting, used to classify
//!   branches as loop branches / loop-exit branches.
//! * [`reference`] — slow, obviously-correct dataflow implementations used
//!   as oracles in property tests.
//!
//! # Example: the paper's Figure 1–2 graph
//!
//! ```
//! use polyflow_cfg::{Cfg, DomTree};
//! use polyflow_isa::{ProgramBuilder, Reg, Cond, AluOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop containing an if-then-else: blocks A,B,C,D,E,F as in Figure 1.
//! let mut b = ProgramBuilder::new();
//! b.begin_function("fig1");
//! let (la, ld, le) = (b.fresh_label("A"), b.fresh_label("D"), b.fresh_label("E"));
//! b.bind_label(la);
//! b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);      // A
//! b.br_imm(Cond::Eq, Reg::R2, 0, ld);           // B: if-else branch
//! b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);      // C (then)
//! b.jmp(le);
//! b.bind_label(ld);
//! b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);      // D (else)
//! b.bind_label(le);
//! b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);      // E (join)
//! b.br_imm(Cond::Lt, Reg::R1, 10, la);          // F: loop branch
//! b.halt();
//! b.end_function();
//! let program = b.build()?;
//!
//! let cfg = Cfg::build(&program, program.function("fig1").unwrap());
//! let pdom = DomTree::postdominators(&cfg);
//! // E postdominates B (control is guaranteed to reach the join).
//! let b_block = cfg.block_at(polyflow_isa::Pc::new(2)).unwrap();
//! let e_block = cfg.block_at(polyflow_isa::Pc::new(8)).unwrap();
//! assert_eq!(pdom.idom(b_block), Some(e_block));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod control_dep;
mod dom;
mod frontiers;
mod graph;
mod loops;
pub mod reference;

pub use control_dep::ControlDeps;
pub use dom::{Ancestors, DomKind, DomTree};
pub use frontiers::Frontiers;
pub use graph::{Block, BlockId, Cfg, CfgError, EdgeKind};
pub use loops::{Loop, LoopForest, LoopId};
