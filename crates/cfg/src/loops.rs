//! Natural loops and the loop nesting forest.

use crate::dom::DomTree;
use crate::graph::{BlockId, Cfg};
use std::collections::BTreeSet;

/// Identifies a loop within one [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(u32);

impl LoopId {
    /// Index into [`LoopForest::loops`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A natural loop: the union of all back edges sharing a header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// This loop's id.
    pub id: LoopId,
    /// The unique header block (dominates every block in the body).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including header and latches.
    pub body: BTreeSet<BlockId>,
    /// Edges `(from, to)` leaving the loop (`from` inside, `to` outside).
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// The immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

impl Loop {
    /// True if `b` is in the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a CFG, with nesting information.
///
/// Back edges are CFG edges `u → v` where `v` dominates `u`; the natural
/// loop of a back edge is `v` plus all blocks that reach `u` without
/// passing through `v`. Back edges sharing a header are merged into one
/// loop, matching the classic definition.
///
/// Irreducible cycles (no dominating header) are not recognized as loops;
/// the builder-produced workloads are all reducible.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Computes the loop forest from a CFG and its forward dominator tree.
    ///
    /// # Panics
    ///
    /// Panics if `dom` is a postdominator tree.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        assert_eq!(
            dom.kind(),
            crate::dom::DomKind::Dominators,
            "LoopForest requires forward dominators"
        );
        // Collect back edges grouped by header.
        let mut by_header: std::collections::BTreeMap<BlockId, Vec<BlockId>> =
            std::collections::BTreeMap::new();
        for (u, v, _) in cfg.edges() {
            if dom.dominates(v, u) {
                by_header.entry(v).or_default().push(u);
            }
        }

        let mut loops = Vec::new();
        for (header, latches) in by_header {
            // Natural loop: header + reverse-reachable from latches without
            // passing through header.
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for &p in cfg.preds(b) {
                        if !body.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
            let mut exit_edges = Vec::new();
            for &b in &body {
                for &(t, _) in cfg.succs(b) {
                    if !body.contains(&t) {
                        exit_edges.push((b, t));
                    }
                }
            }
            exit_edges.sort();
            exit_edges.dedup();
            let id = LoopId(loops.len() as u32);
            loops.push(Loop {
                id,
                header,
                latches,
                body,
                exit_edges,
                parent: None,
                depth: 1,
            });
        }

        // Nesting: parent of L = the smallest loop strictly containing L's
        // header whose body is a superset of L's body.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].body.len());
            idx
        };
        for (pos, &i) in order.iter().enumerate() {
            for &j in &order[pos + 1..] {
                if i != j
                    && loops[j].body.len() > loops[i].body.len()
                    && loops[j].body.is_superset(&loops[i].body)
                {
                    loops[i].parent = Some(LoopId(j as u32));
                    break;
                }
            }
        }
        // Depths from parents.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block: smallest body containing the block.
        let mut innermost: Vec<Option<LoopId>> = vec![None; cfg.len()];
        for &i in &order {
            for &b in &loops[i].body {
                if innermost[b.index()].is_none() {
                    innermost[b.index()] = Some(LoopId(i as u32));
                }
            }
        }

        LoopForest { loops, innermost }
    }

    /// All loops (unordered).
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the CFG has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.innermost
            .get(b.index())
            .copied()
            .flatten()
            .map(|id| self.get(id))
    }

    /// True if edge `u → v` is a back edge (v is a header and u a latch of
    /// the same loop).
    pub fn is_back_edge(&self, u: BlockId, v: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == v && l.latches.contains(&u))
    }

    /// True if block `b` is the source of a back edge.
    pub fn is_latch(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.latches.contains(&b))
    }

    /// True if block `b` has a successor outside its innermost loop.
    pub fn is_loop_exit_block(&self, b: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.exit_edges.iter().any(|&(from, _)| from == b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, Pc, Program, ProgramBuilder, Reg};

    fn nested_loops() -> (Program, Cfg) {
        // for i { for j { body } tail } after
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let outer = b.fresh_label("outer");
        let inner = b.fresh_label("inner");
        b.li(Reg::R1, 0); // 0
        b.bind_label(outer); // 1:
        b.li(Reg::R2, 0); // 1
        b.bind_label(inner); // 2:
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 2 body
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1); // 3
        b.br_imm(Cond::Lt, Reg::R2, 3, inner); // 4,5
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 6 tail
        b.br_imm(Cond::Lt, Reg::R1, 3, outer); // 7,8
        b.halt(); // 9
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        (p, cfg)
    }

    #[test]
    fn detects_two_nested_loops() {
        let (_, cfg) = nested_loops();
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert_eq!(lf.len(), 2);
        let inner_header = cfg.block_at(Pc::new(2)).unwrap();
        let outer_header = cfg.block_at(Pc::new(1)).unwrap();
        let inner = lf
            .loops()
            .iter()
            .find(|l| l.header == inner_header)
            .unwrap();
        let outer = lf
            .loops()
            .iter()
            .find(|l| l.header == outer_header)
            .unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
        assert!(outer.body.is_superset(&inner.body));
        assert!(outer.body.len() > inner.body.len());
    }

    #[test]
    fn innermost_resolution() {
        let (_, cfg) = nested_loops();
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        let body = cfg.block_at(Pc::new(2)).unwrap();
        let tail = cfg.block_at(Pc::new(6)).unwrap();
        let after = cfg.block_at(Pc::new(9)).unwrap();
        assert_eq!(lf.innermost(body).unwrap().depth, 2);
        assert_eq!(lf.innermost(tail).unwrap().depth, 1);
        assert!(lf.innermost(after).is_none());
    }

    #[test]
    fn back_edges_and_latches() {
        let (_, cfg) = nested_loops();
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        // The inner loop body collapses into one block [2..6): a self-loop.
        let inner_block = cfg.block_at(Pc::new(2)).unwrap();
        assert_eq!(inner_block, cfg.block_at(Pc::new(4)).unwrap());
        assert!(lf.is_back_edge(inner_block, inner_block));
        assert!(lf.is_latch(inner_block));
        assert!(lf.is_loop_exit_block(inner_block));
        // The outer loop's latch is the tail block [6..9).
        let outer_header = cfg.block_at(Pc::new(1)).unwrap();
        let outer_latch = cfg.block_at(Pc::new(6)).unwrap();
        assert!(lf.is_back_edge(outer_latch, outer_header));
        assert!(!lf.is_back_edge(outer_header, outer_latch));
    }

    #[test]
    fn exit_edges_leave_body() {
        let (_, cfg) = nested_loops();
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        for l in lf.loops() {
            for &(from, to) in &l.exit_edges {
                assert!(l.contains(from));
                assert!(!l.contains(to));
            }
        }
    }

    #[test]
    fn acyclic_cfg_has_no_loops() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let skip = b.fresh_label("skip");
        b.br_imm(Cond::Eq, Reg::R1, 0, skip);
        b.nop();
        b.bind_label(skip);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert!(lf.is_empty());
        assert!(lf.innermost(cfg.entry()).is_none());
    }

    #[test]
    fn self_loop() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let top = b.fresh_label("top");
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 5, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert_eq!(lf.len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, cfg.entry());
        assert_eq!(l.latches, vec![cfg.entry()]);
        assert_eq!(l.body.len(), 1);
    }

    #[test]
    fn shared_header_merges_loops() {
        // Two back edges to the same header: continue-style flow.
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let top = b.fresh_label("top");
        let l2 = b.fresh_label("second_latch");
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 0 header
        b.br_imm(Cond::Eq, Reg::R2, 0, top); // 1,2 first latch (continue)
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 3
        b.bind_label(l2);
        b.br_imm(Cond::Lt, Reg::R1, 9, top); // 4,5 second latch
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("f").unwrap());
        let dom = DomTree::dominators(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert_eq!(lf.len(), 1);
        assert_eq!(lf.loops()[0].latches.len(), 2);
    }
}
