//! Randomized differential tests: the Cooper–Harvey–Kennedy
//! dominator/postdominator implementation must agree with the brute-force
//! set-based reference on arbitrary (including irreducible) control-flow
//! graphs.
//!
//! Cases are generated from a fixed-seed [`SplitMix64`] stream, so every
//! run checks the same graphs and failures reproduce exactly (print the
//! case index to replay one graph).

use polyflow_cfg::{reference, Cfg, ControlDeps, DomTree, Frontiers};
use polyflow_isa::rng::SplitMix64;
use polyflow_isa::{Cond, Program, ProgramBuilder, Reg};

const CASES: u64 = 256;

/// Builds a program whose single function consists of `n` one-instruction
/// regions, each terminated by an arbitrary transfer drawn from `choices`:
/// `(kind, a, b)` where kind selects branch/jump/halt and `a`/`b` are
/// target region indices. This generates arbitrary digraphs, including
/// irreducible ones.
fn arbitrary_program(choices: &[(u8, usize, usize)]) -> Program {
    let n = choices.len();
    let mut b = ProgramBuilder::new();
    b.begin_function("rand");
    let labels: Vec<_> = (0..n).map(|i| b.fresh_label(&format!("L{i}"))).collect();
    for (i, &(kind, a, t)) in choices.iter().enumerate() {
        b.bind_label(labels[i]);
        b.nop();
        match kind % 4 {
            0 => {
                // Conditional branch to `a`, falling through to i+1 (or halt
                // via the trailing region).
                b.br(Cond::Eq, Reg::R1, Reg::R2, labels[a % n]);
                // Guard against falling off the end: region i's branch falls
                // into region i+1; the last region is always a halt (kind 2).
                if i + 1 == n {
                    b.halt();
                }
            }
            1 => {
                b.jmp(labels[t % n]);
            }
            2 => {
                b.halt();
            }
            _ => {
                // Two-way branch to a and t (branch then jump).
                b.br(Cond::Ne, Reg::R1, Reg::R2, labels[a % n]);
                b.jmp(labels[t % n]);
            }
        }
    }
    // Final catch-all halt so conditional fall-through at the end is valid.
    b.halt();
    b.end_function();
    b.build().expect("generated program is well formed")
}

/// One random `choices` vector per case, mirroring the old proptest
/// strategy `vec((0u8..4, 0usize..12, 0usize..12), 1..12)`.
fn random_choices(rng: &mut SplitMix64) -> Vec<(u8, usize, usize)> {
    let len = 1 + rng.index(11);
    (0..len)
        .map(|_| (rng.below(4) as u8, rng.index(12), rng.index(12)))
        .collect()
}

fn for_each_case(mut check: impl FnMut(usize, &Cfg)) {
    let mut rng = SplitMix64::new(0x90d5);
    for case in 0..CASES {
        let choices = random_choices(&mut rng);
        let p = arbitrary_program(&choices);
        let cfg = Cfg::build(&p, p.function("rand").unwrap());
        check(case as usize, &cfg);
    }
}

#[test]
fn dominators_match_reference() {
    for_each_case(|case, cfg| {
        let fast = DomTree::dominators(cfg);
        let sets = reference::dominator_sets(cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                let slow = match &sets[b.id.index()] {
                    Some(s) => s.contains(&a.id),
                    // Unreachable block: only reflexive dominance holds.
                    None => a.id == b.id,
                };
                assert_eq!(
                    fast.dominates(a.id, b.id),
                    slow,
                    "case {case}: {} dom {} (blocks {})",
                    a.id,
                    b.id,
                    cfg.len()
                );
            }
        }
    });
}

#[test]
fn postdominators_match_reference() {
    for_each_case(|case, cfg| {
        let fast = DomTree::postdominators(cfg);
        let sets = reference::postdominator_sets(cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                let slow = match &sets[b.id.index()] {
                    Some(s) => s.contains(&a.id),
                    None => a.id == b.id,
                };
                assert_eq!(
                    fast.dominates(a.id, b.id),
                    slow,
                    "case {case}: {} pdom {}",
                    a.id,
                    b.id
                );
            }
        }
    });
}

#[test]
fn immediate_postdominators_match_reference() {
    for_each_case(|case, cfg| {
        let fast = DomTree::postdominators(cfg);
        let slow = reference::immediate_postdominators(cfg);
        for b in cfg.blocks() {
            assert_eq!(
                fast.idom(b.id),
                slow[b.id.index()],
                "case {case}: block {}",
                b.id
            );
        }
    });
}

#[test]
fn postdominance_frontier_is_control_dependence() {
    // The classic identity: b is control dependent on exactly the
    // blocks of whose postdominance frontier it is a member.
    for_each_case(|case, cfg| {
        let pdom = DomTree::postdominators(cfg);
        let pdf = Frontiers::compute(cfg, &pdom);
        let cd = ControlDeps::compute(cfg, &pdom);
        for b in cfg.blocks() {
            // Skip blocks the postdominator analysis never reached
            // (infinite loops): control dependence walks stop early there.
            if !pdom.is_reachable(b.id) {
                continue;
            }
            for branch in cfg.blocks() {
                assert_eq!(
                    cd.depends_on(b.id, branch.id),
                    pdf.contains(b.id, branch.id),
                    "case {case}: {} on {}",
                    b.id,
                    branch.id
                );
            }
        }
    });
}

#[test]
fn ipostdom_strictly_postdominates() {
    for_each_case(|case, cfg| {
        let pdom = DomTree::postdominators(cfg);
        for b in cfg.blocks() {
            if let Some(d) = pdom.idom(b.id) {
                assert!(pdom.strictly_dominates(d, b.id), "case {case}: {}", b.id);
                // Depth decreases by exactly one along the tree edge.
                assert_eq!(pdom.depth(b.id), pdom.depth(d) + 1, "case {case}");
            }
        }
    });
}
