//! Property tests: the Cooper–Harvey–Kennedy dominator/postdominator
//! implementation must agree with the brute-force set-based reference on
//! arbitrary (including irreducible) control-flow graphs.

use polyflow_cfg::{reference, Cfg, ControlDeps, DomTree, Frontiers};
use polyflow_isa::{Cond, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// Builds a program whose single function consists of `n` one-instruction
/// regions, each terminated by an arbitrary transfer drawn from `choices`:
/// `(kind, a, b)` where kind selects branch/jump/halt and `a`/`b` are
/// target region indices. This generates arbitrary digraphs, including
/// irreducible ones.
fn arbitrary_program(choices: &[(u8, usize, usize)]) -> Program {
    let n = choices.len();
    let mut b = ProgramBuilder::new();
    b.begin_function("rand");
    let labels: Vec<_> = (0..n).map(|i| b.fresh_label(&format!("L{i}"))).collect();
    for (i, &(kind, a, t)) in choices.iter().enumerate() {
        b.bind_label(labels[i]);
        b.nop();
        match kind % 4 {
            0 => {
                // Conditional branch to `a`, falling through to i+1 (or halt
                // via the trailing region).
                b.br(Cond::Eq, Reg::R1, Reg::R2, labels[a % n]);
                // Guard against falling off the end: region i's branch falls
                // into region i+1; the last region is always a halt (kind 2).
                if i + 1 == n {
                    b.halt();
                }
            }
            1 => {
                b.jmp(labels[t % n]);
            }
            2 => {
                b.halt();
            }
            _ => {
                // Two-way branch to a and t (branch then jump).
                b.br(Cond::Ne, Reg::R1, Reg::R2, labels[a % n]);
                b.jmp(labels[t % n]);
            }
        }
    }
    // Final catch-all halt so conditional fall-through at the end is valid.
    b.halt();
    b.end_function();
    b.build().expect("generated program is well formed")
}

fn cfg_of(p: &Program) -> Cfg {
    Cfg::build(p, p.function("rand").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dominators_match_reference(
        choices in prop::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..12)
    ) {
        let p = arbitrary_program(&choices);
        let cfg = cfg_of(&p);
        let fast = DomTree::dominators(&cfg);
        let sets = reference::dominator_sets(&cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                let slow = match &sets[b.id.index()] {
                    Some(s) => s.contains(&a.id),
                    // Unreachable block: only reflexive dominance holds.
                    None => a.id == b.id,
                };
                prop_assert_eq!(
                    fast.dominates(a.id, b.id), slow,
                    "{} dom {} (blocks {})", a.id, b.id, cfg.len()
                );
            }
        }
    }

    #[test]
    fn postdominators_match_reference(
        choices in prop::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..12)
    ) {
        let p = arbitrary_program(&choices);
        let cfg = cfg_of(&p);
        let fast = DomTree::postdominators(&cfg);
        let sets = reference::postdominator_sets(&cfg);
        for a in cfg.blocks() {
            for b in cfg.blocks() {
                let slow = match &sets[b.id.index()] {
                    Some(s) => s.contains(&a.id),
                    None => a.id == b.id,
                };
                prop_assert_eq!(
                    fast.dominates(a.id, b.id), slow,
                    "{} pdom {}", a.id, b.id
                );
            }
        }
    }

    #[test]
    fn immediate_postdominators_match_reference(
        choices in prop::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..12)
    ) {
        let p = arbitrary_program(&choices);
        let cfg = cfg_of(&p);
        let fast = DomTree::postdominators(&cfg);
        let slow = reference::immediate_postdominators(&cfg);
        for b in cfg.blocks() {
            prop_assert_eq!(fast.idom(b.id), slow[b.id.index()], "block {}", b.id);
        }
    }

    #[test]
    fn postdominance_frontier_is_control_dependence(
        choices in prop::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..12)
    ) {
        // The classic identity: b is control dependent on exactly the
        // blocks of whose postdominance frontier it is a member.
        let p = arbitrary_program(&choices);
        let cfg = cfg_of(&p);
        let pdom = DomTree::postdominators(&cfg);
        let pdf = Frontiers::compute(&cfg, &pdom);
        let cd = ControlDeps::compute(&cfg, &pdom);
        for b in cfg.blocks() {
            // Skip blocks the postdominator analysis never reached
            // (infinite loops): control dependence walks stop early there.
            if !pdom.is_reachable(b.id) {
                continue;
            }
            for branch in cfg.blocks() {
                prop_assert_eq!(
                    cd.depends_on(b.id, branch.id),
                    pdf.contains(b.id, branch.id),
                    "{} on {}", b.id, branch.id
                );
            }
        }
    }

    #[test]
    fn ipostdom_strictly_postdominates(
        choices in prop::collection::vec((0u8..4, 0usize..12, 0usize..12), 1..12)
    ) {
        let p = arbitrary_program(&choices);
        let cfg = cfg_of(&p);
        let pdom = DomTree::postdominators(&cfg);
        for b in cfg.blocks() {
            if let Some(d) = pdom.idom(b.id) {
                prop_assert!(pdom.strictly_dominates(d, b.id));
                // Depth decreases by exactly one along the tree edge.
                prop_assert_eq!(pdom.depth(b.id), pdom.depth(d) + 1);
            }
        }
    }
}
