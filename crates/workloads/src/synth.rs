//! Parameterized synthetic kernels.
//!
//! The twelve named stand-ins model specific SPEC benchmarks; this module
//! generates kernels from a *parameter vector* instead, so users can ask
//! questions like "how does postdominator spawning respond as branch
//! predictability degrades?" without writing assembly.
//!
//! ```
//! use polyflow_workloads::synth::{Knobs, generate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = generate(&Knobs {
//!     hammocks_per_iteration: 3,
//!     hammock_bias_percent: 50,
//!     calls_per_iteration: 1,
//!     ..Knobs::default()
//! });
//! let trace = polyflow_isa::execute_window(&program, 500_000)?.trace;
//! assert!(!trace.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Control-flow knobs of a generated kernel.
///
/// The kernel is an outer loop of `iterations` rounds; each round draws a
/// data word from a random input table and runs the configured mix of
/// hammocks, inner loops, calls, and memory traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// Outer-loop rounds.
    pub iterations: i64,
    /// If-then-else hammocks per round.
    pub hammocks_per_iteration: usize,
    /// Probability (0–100) that a hammock takes its then-arm. 50 is
    /// maximally unpredictable; 0 or 100 is fully predictable.
    pub hammock_bias_percent: u8,
    /// Instructions per hammock arm.
    pub arm_length: usize,
    /// Calls to a shared leaf function per round.
    pub calls_per_iteration: usize,
    /// Leaf-function body length (serial instructions).
    pub leaf_length: usize,
    /// Inner counted loops per round.
    pub inner_loops_per_iteration: usize,
    /// Trip count of each inner loop.
    pub inner_trip_count: i64,
    /// Random loads per round from a table of this many words (0 = no
    /// memory traffic). Sizes beyond the 2 048-word L1 D-cache generate
    /// misses.
    pub data_words: usize,
    /// Independent single-cycle instructions per round (ILP filler).
    pub filler: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            iterations: 2_000,
            hammocks_per_iteration: 2,
            hammock_bias_percent: 50,
            arm_length: 6,
            calls_per_iteration: 0,
            leaf_length: 20,
            inner_loops_per_iteration: 0,
            inner_trip_count: 4,
            data_words: 1_024,
            filler: 8,
            seed: 0x5EED,
        }
    }
}

/// Generates a kernel from `knobs`. The program always halts after
/// `knobs.iterations` rounds.
///
/// # Panics
///
/// Panics if `hammock_bias_percent > 100`.
pub fn generate(knobs: &Knobs) -> Program {
    assert!(knobs.hammock_bias_percent <= 100, "bias is a percentage");
    let mut b = ProgramBuilder::named("synth");
    let table_words = knobs.data_words.max(16).next_power_of_two();
    // Input words are uniform in 0..100 so arbitrary bias thresholds work.
    let table = dsl::alloc_random_words(&mut b, table_words, 0, 100, knobs.seed);

    b.begin_function("main");
    dsl::emit_counted_loop(&mut b, Reg::R9, knobs.iterations, |b| {
        dsl::emit_load_indexed(b, Reg::R11, table, Reg::R9, (table_words as i64) - 1);
        for h in 0..knobs.hammocks_per_iteration {
            // Rotate which input bits feed each hammock so they are
            // mutually independent.
            b.alui(AluOp::Srl, Reg::R13, Reg::R11, (h % 8) as i64);
            b.alui(AluOp::And, Reg::R13, Reg::R13, 127);
            // Then-arm taken when the (near-uniform) value falls under the
            // bias threshold.
            let els = b.fresh_label("s_else");
            let join = b.fresh_label("s_join");
            b.li(Reg::R28, i64::from(knobs.hammock_bias_percent) * 128 / 100);
            b.br(Cond::Ge, Reg::R13, Reg::R28, els);
            dsl::emit_serial_work(b, Reg::R3, knobs.arm_length);
            b.jmp(join);
            b.bind_label(els);
            dsl::emit_serial_work(b, Reg::R4, knobs.arm_length);
            b.bind_label(join);
        }
        for _ in 0..knobs.inner_loops_per_iteration {
            let top = b.fresh_label("s_inner");
            b.li(Reg::R5, 0);
            b.bind_label(top);
            b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
            b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
            b.br_imm(Cond::Lt, Reg::R5, knobs.inner_trip_count, top);
        }
        for _ in 0..knobs.calls_per_iteration {
            dsl::emit_call_saved(b, "synth_leaf");
        }
        if knobs.data_words > 0 {
            // A dependent load chain: index derived from the input word.
            b.alui(AluOp::Xor, Reg::R12, Reg::R11, 0x35);
            dsl::emit_load_indexed(b, Reg::R7, table, Reg::R12, (table_words as i64) - 1);
            b.alu(AluOp::Add, Reg::R8, Reg::R8, Reg::R7);
        }
        dsl::emit_parallel_work(b, &[Reg::R2, Reg::R14, Reg::R15], knobs.filler);
    });
    b.halt();
    b.end_function();

    b.begin_function("synth_leaf");
    b.alui(AluOp::Add, Reg::R26, Reg::R26, 1);
    dsl::emit_serial_work(&mut b, Reg::R27, knobs.leaf_length);
    b.ret();
    b.end_function();

    b.build().expect("synthetic kernel is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn default_kernel_halts() {
        let p = generate(&Knobs::default());
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 10_000);
    }

    #[test]
    fn bias_controls_branch_mix() {
        let measure = |bias: u8| -> f64 {
            let p = generate(&Knobs {
                iterations: 800,
                hammocks_per_iteration: 1,
                hammock_bias_percent: bias,
                ..Knobs::default()
            });
            let r = execute_window(&p, 1_000_000).unwrap();
            let mut taken = 0u64;
            let mut total = 0u64;
            for e in &r.trace {
                // The hammock branch compares r13 against r28.
                if let polyflow_isa::Inst::Br { rs: Reg::R13, .. } = e.inst {
                    total += 1;
                    if !e.taken {
                        taken += 1; // not-taken = then-arm (under threshold)
                    }
                }
            }
            taken as f64 / total as f64
        };
        let lo = measure(10);
        let mid = measure(50);
        let hi = measure(90);
        assert!(lo < 0.2, "10% bias measured {lo:.2}");
        assert!((0.35..0.65).contains(&mid), "50% bias measured {mid:.2}");
        assert!(hi > 0.8, "90% bias measured {hi:.2}");
    }

    #[test]
    fn calls_appear_when_requested() {
        let p = generate(&Knobs {
            iterations: 50,
            calls_per_iteration: 2,
            ..Knobs::default()
        });
        let r = execute_window(&p, 200_000).unwrap();
        let calls = r
            .trace
            .iter()
            .filter(|e| e.class() == polyflow_isa::InstClass::Call)
            .count();
        assert_eq!(calls, 100);
    }

    #[test]
    fn harder_branches_make_spawning_more_valuable() {
        use polyflow_core::{Policy, ProgramAnalysis};
        use polyflow_sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};
        let speedup = |bias: u8| -> f64 {
            let p = generate(&Knobs {
                iterations: 1_500,
                hammocks_per_iteration: 2,
                hammock_bias_percent: bias,
                arm_length: 8,
                ..Knobs::default()
            });
            let trace = execute_window(&p, 1_000_000).unwrap().trace;
            let analysis = ProgramAnalysis::analyze(&p);
            let ss = MachineConfig::superscalar();
            let prep = PreparedTrace::new(&trace, &ss);
            let base = simulate(&prep, &ss, &mut NoSpawn);
            let pf = MachineConfig::hpca07();
            let prep = PreparedTrace::new(&trace, &pf);
            let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
            simulate(&prep, &pf, &mut src).speedup_percent_over(&base)
        };
        let predictable = speedup(2);
        let hard = speedup(50);
        assert!(
            hard > predictable + 5.0,
            "hard branches should reward spawning: {hard:.1}% vs {predictable:.1}%"
        );
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bias_validation() {
        generate(&Knobs {
            hammock_bias_percent: 101,
            ..Knobs::default()
        });
    }
}
