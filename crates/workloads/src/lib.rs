//! SPEC2000 integer benchmark stand-ins.
//!
//! The paper evaluates on the SPEC2000 integer suite (MinneSPEC reduced
//! inputs, eon excluded). We cannot ship SPEC, so each benchmark is
//! replaced by a synthetic program **with the control-flow character the
//! paper itself reports for it** (see DESIGN.md §5):
//!
//! | stand-in    | engineered character |
//! |-------------|----------------------|
//! | `bzip2`     | predictable buffer loops, high baseline IPC |
//! | `crafty`    | deep 50/50 if-else chains + switches (hammock/other) |
//! | `gap`       | indirect-call interpreter, large I-footprint (procFT) |
//! | `gcc`       | many mixed functions, largest static spawn count |
//! | `gzip`      | predictable compression loops |
//! | `mcf`       | pointer chasing with data-dependent hammocks |
//! | `parser`    | recursive descent with medium branches |
//! | `perlbmk`   | hard indirect-jump opcode dispatch ("other") |
//! | `twolf`     | the `new_dbox_a` nested-loop kernel of Figure 6 |
//! | `vortex`    | dense small procedures across a wide I-footprint |
//! | `vpr.place` | move/accept loops with 50/50 metropolis hammock |
//! | `vpr.route` | short inner waves inside independent outer routes (loopFT) |
//!
//! # Example
//!
//! ```
//! use polyflow_workloads::{all, by_name};
//!
//! let twolf = by_name("twolf").unwrap();
//! assert_eq!(twolf.name, "twolf");
//! assert!(twolf.program.len() > 0);
//! assert_eq!(all().len(), 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dsl;
mod programs;
pub mod synth;

use polyflow_isa::{AsmError, Program};
use std::fmt;
use std::path::Path;

/// A benchmark stand-in: a program plus its simulation window.
///
/// Workloads come from two sources: the 12 bundled synthetic SPEC
/// stand-ins ([`by_name`]/[`all`]), and runtime-loaded `.asm` files
/// ([`from_asm_str`]/[`from_asm_file`]).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The workload name (a bundled benchmark name matching the paper's
    /// x-axis labels, or a runtime-loaded program's `.program` name /
    /// file stem).
    pub name: String,
    /// The program.
    pub program: Program,
    /// Instructions to simulate (the paper fast-forwards and runs 100M;
    /// our kernels have no init phase and use smaller windows).
    pub window: u64,
}

/// Default simulation window for runtime-loaded workloads without a
/// `; window: N` pragma. Generous on purpose: a program that halts
/// earlier produces the identical trace under any window at least as
/// long as its run, so over-sizing costs nothing but interpreter time.
pub const DEFAULT_ASM_WINDOW: u64 = 2_000_000;

/// An error loading a runtime `.asm` workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The assembly failed to parse or validate.
    Parse(AsmError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Io(e) => write!(f, "{e}"),
            WorkloadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> WorkloadError {
        WorkloadError::Parse(e)
    }
}

/// Parses assembly text into a runtime [`Workload`].
///
/// The workload name is the program's `.program` directive when present,
/// else `fallback_name` (callers pass the file stem). The simulation
/// window comes from a `; window: N` pragma comment anywhere in the
/// source, else [`DEFAULT_ASM_WINDOW`].
///
/// # Errors
///
/// Returns the assembler's [`AsmError`] (with source position) when the
/// text fails to parse or validate.
pub fn from_asm_str(src: &str, fallback_name: &str) -> Result<Workload, AsmError> {
    let program = polyflow_isa::parse_program(src)?;
    let name = if program.name() == "program" {
        fallback_name.to_string()
    } else {
        program.name().to_string()
    };
    Ok(Workload {
        name,
        program,
        window: window_pragma(src).unwrap_or(DEFAULT_ASM_WINDOW),
    })
}

/// Loads a runtime [`Workload`] from an `.asm` file (see
/// [`from_asm_str`]; the fallback name is the file stem).
///
/// # Errors
///
/// Returns [`WorkloadError::Io`] when the file cannot be read and
/// [`WorkloadError::Parse`] when the assembly is invalid.
pub fn from_asm_file(path: impl AsRef<Path>) -> Result<Workload, WorkloadError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path).map_err(WorkloadError::Io)?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    Ok(from_asm_str(&src, stem)?)
}

/// Extracts a `; window: N` (or `# window: N`) pragma from assembly
/// comment lines. `N` accepts `_` separators.
fn window_pragma(src: &str) -> Option<u64> {
    for line in src.lines() {
        let line = line.trim();
        let Some(comment) = line.strip_prefix(';').or_else(|| line.strip_prefix('#')) else {
            continue;
        };
        if let Some(v) = comment.trim().strip_prefix("window:") {
            if let Ok(n) = v.trim().replace('_', "").parse() {
                return Some(n);
            }
        }
    }
    None
}

/// The benchmark names, in the paper's plotting order.
pub const NAMES: [&str; 12] = [
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perlbmk",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
];

/// The benchmark names as a slice — the validation surface for CLI
/// workload filters and the simulation service's request checking
/// (anything not in this list is an unknown-workload error, not a
/// silently empty sweep).
pub fn names() -> &'static [&'static str] {
    &NAMES
}

/// Builds every workload, in the paper's plotting order.
pub fn all() -> Vec<Workload> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("known name"))
        .collect()
}

/// Builds one workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    let (program, window) = match name {
        "bzip2" => (programs::bzip2::build(), 400_000),
        "crafty" => (programs::crafty::build(), 400_000),
        "gap" => (programs::gap::build(), 400_000),
        "gcc" => (programs::gcc::build(), 400_000),
        "gzip" => (programs::gzip::build(), 400_000),
        "mcf" => (programs::mcf::build(), 500_000),
        "parser" => (programs::parser::build(), 400_000),
        "perlbmk" => (programs::perlbmk::build(), 400_000),
        "twolf" => (programs::twolf::build(), 400_000),
        "vortex" => (programs::vortex::build(), 400_000),
        "vpr.place" => (programs::vpr_place::build(), 400_000),
        "vpr.route" => (programs::vpr_route::build(), 400_000),
        _ => return None,
    };
    Some(Workload {
        name: name.to_string(),
        program,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn all_has_twelve_in_paper_order() {
        let ws = all();
        assert_eq!(ws.len(), 12);
        let names: Vec<_> = ws.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn every_bundled_workload_roundtrips_byte_identically() {
        // Satellite of the runtime-workload work: `to_asm` →
        // `parse_program` must reproduce each bundled program exactly
        // (name, data addresses, jump tables and all), otherwise an
        // uploaded canonical rendering would not share a cache identity
        // with the bundled build.
        for w in all() {
            let text = polyflow_isa::to_asm(&w.program);
            let p2 = polyflow_isa::parse_program(&text)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", w.name));
            assert_eq!(w.program, p2, "{} drifted through the text format", w.name);
        }
    }

    #[test]
    fn from_asm_str_reads_name_and_window_pragma() {
        let src = "\
; window: 250_000
.program demo

fn main {
    halt
}
";
        let w = from_asm_str(src, "fallback").unwrap();
        assert_eq!(w.name, "demo");
        assert_eq!(w.window, 250_000);
        // Without directive or pragma: fallback name, default window.
        let w = from_asm_str("fn main {\n halt\n}", "mine").unwrap();
        assert_eq!(w.name, "mine");
        assert_eq!(w.window, DEFAULT_ASM_WINDOW);
    }

    #[test]
    fn bundled_workloads_reload_from_their_canonical_asm() {
        // The full loop: render twolf, load it back as a *runtime*
        // workload, and get the same name and program.
        let twolf = by_name("twolf").unwrap();
        let w = from_asm_str(&polyflow_isa::to_asm(&twolf.program), "upload").unwrap();
        assert_eq!(w.name, "twolf");
        assert_eq!(w.program, twolf.program);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("eon").is_none(), "eon is excluded, as in the paper");
    }

    #[test]
    fn every_workload_executes_to_halt_within_window() {
        for w in all() {
            let r = execute_window(&w.program, w.window)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(
                r.halted,
                "{} did not halt within {} instructions (ran {})",
                w.name, w.window, r.steps
            );
            assert!(
                r.steps > 50_000,
                "{} trace too short: {} instructions",
                w.name,
                r.steps
            );
        }
    }
}
