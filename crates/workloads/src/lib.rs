//! SPEC2000 integer benchmark stand-ins.
//!
//! The paper evaluates on the SPEC2000 integer suite (MinneSPEC reduced
//! inputs, eon excluded). We cannot ship SPEC, so each benchmark is
//! replaced by a synthetic program **with the control-flow character the
//! paper itself reports for it** (see DESIGN.md §5):
//!
//! | stand-in    | engineered character |
//! |-------------|----------------------|
//! | `bzip2`     | predictable buffer loops, high baseline IPC |
//! | `crafty`    | deep 50/50 if-else chains + switches (hammock/other) |
//! | `gap`       | indirect-call interpreter, large I-footprint (procFT) |
//! | `gcc`       | many mixed functions, largest static spawn count |
//! | `gzip`      | predictable compression loops |
//! | `mcf`       | pointer chasing with data-dependent hammocks |
//! | `parser`    | recursive descent with medium branches |
//! | `perlbmk`   | hard indirect-jump opcode dispatch ("other") |
//! | `twolf`     | the `new_dbox_a` nested-loop kernel of Figure 6 |
//! | `vortex`    | dense small procedures across a wide I-footprint |
//! | `vpr.place` | move/accept loops with 50/50 metropolis hammock |
//! | `vpr.route` | short inner waves inside independent outer routes (loopFT) |
//!
//! # Example
//!
//! ```
//! use polyflow_workloads::{all, by_name};
//!
//! let twolf = by_name("twolf").unwrap();
//! assert_eq!(twolf.name, "twolf");
//! assert!(twolf.program.len() > 0);
//! assert_eq!(all().len(), 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dsl;
mod programs;
pub mod synth;

use polyflow_isa::Program;

/// A benchmark stand-in: a program plus its simulation window.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark name (matches the paper's x-axis labels).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Instructions to simulate (the paper fast-forwards and runs 100M;
    /// our kernels have no init phase and use smaller windows).
    pub window: u64,
}

/// The benchmark names, in the paper's plotting order.
pub const NAMES: [&str; 12] = [
    "bzip2",
    "crafty",
    "gap",
    "gcc",
    "gzip",
    "mcf",
    "parser",
    "perlbmk",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
];

/// The benchmark names as a slice — the validation surface for CLI
/// workload filters and the simulation service's request checking
/// (anything not in this list is an unknown-workload error, not a
/// silently empty sweep).
pub fn names() -> &'static [&'static str] {
    &NAMES
}

/// Builds every workload, in the paper's plotting order.
pub fn all() -> Vec<Workload> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("known name"))
        .collect()
}

/// Builds one workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    let (program, window) = match name {
        "bzip2" => (programs::bzip2::build(), 400_000),
        "crafty" => (programs::crafty::build(), 400_000),
        "gap" => (programs::gap::build(), 400_000),
        "gcc" => (programs::gcc::build(), 400_000),
        "gzip" => (programs::gzip::build(), 400_000),
        "mcf" => (programs::mcf::build(), 500_000),
        "parser" => (programs::parser::build(), 400_000),
        "perlbmk" => (programs::perlbmk::build(), 400_000),
        "twolf" => (programs::twolf::build(), 400_000),
        "vortex" => (programs::vortex::build(), 400_000),
        "vpr.place" => (programs::vpr_place::build(), 400_000),
        "vpr.route" => (programs::vpr_route::build(), 400_000),
        _ => return None,
    };
    Some(Workload {
        name: NAMES.iter().find(|n| **n == name)?,
        program,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn all_has_twelve_in_paper_order() {
        let ws = all();
        assert_eq!(ws.len(), 12);
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("eon").is_none(), "eon is excluded, as in the paper");
    }

    #[test]
    fn every_workload_executes_to_halt_within_window() {
        for w in all() {
            let r = execute_window(&w.program, w.window)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            assert!(
                r.halted,
                "{} did not halt within {} instructions (ran {})",
                w.name, w.window, r.steps
            );
            assert!(
                r.steps > 50_000,
                "{} trace too short: {} instructions",
                w.name,
                r.steps
            );
        }
    }
}
