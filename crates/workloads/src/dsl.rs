//! Code-generation helpers shared by the workload stand-ins.
//!
//! Register conventions used by all workloads:
//!
//! * `r1`–`r9`: loop counters and locals of the current function,
//! * `r10`: the LCG pseudo-random state (never clobbered by leaves),
//! * `r11`–`r15`: LCG scratch / extracted random values,
//! * `r16`–`r25`: data-structure pointers,
//! * `r26`, `r27`: leaf-function scratch,
//! * `r28`: assembler temporary (`br_imm` clobbers it),
//! * `r29`: stack pointer, `r31`: link register.

use polyflow_isa::{AluOp, Label, Pc, ProgramBuilder, Reg};

/// The LCG state register.
pub const RNG: Reg = Reg::R10;
/// Multiplier scratch used by [`emit_rng_next`].
pub const RNG_TMP: Reg = Reg::R11;

/// Seeds the pseudo-random state register.
pub fn emit_rng_init(b: &mut ProgramBuilder, seed: i64) {
    b.li(RNG, seed);
}

/// Advances the LCG: `r10 = r10 * 6364136223846793005 + 1442695040888963407`
/// (Knuth's MMIX constants). Three instructions; clobbers `r11`.
pub fn emit_rng_next(b: &mut ProgramBuilder) {
    b.li(RNG_TMP, 6364136223846793005u64 as i64);
    b.alu(AluOp::Mul, RNG, RNG, RNG_TMP);
    b.li(RNG_TMP, 1442695040888963407u64 as i64);
    b.alu(AluOp::Add, RNG, RNG, RNG_TMP);
}

/// Extracts `(r10 >> shift) & mask` into `dst` (two instructions).
/// High bits of the LCG are the random ones; use `shift >= 32`.
pub fn emit_rng_bits(b: &mut ProgramBuilder, dst: Reg, shift: i64, mask: i64) {
    b.alui(AluOp::Srl, dst, RNG, shift);
    b.alui(AluOp::And, dst, dst, mask);
}

/// Emits `count` dependent single-cycle ALU instructions on `reg`
/// (a serial chain — models address arithmetic and the like).
pub fn emit_serial_work(b: &mut ProgramBuilder, reg: Reg, count: usize) {
    for _ in 0..count {
        b.alui(AluOp::Add, reg, reg, 1);
    }
}

/// Emits `count` independent single-cycle ALU instructions spread over
/// `regs` (ILP-rich filler).
pub fn emit_parallel_work(b: &mut ProgramBuilder, regs: &[Reg], count: usize) {
    for i in 0..count {
        let r = regs[i % regs.len()];
        b.alui(AluOp::Add, r, r, 1);
    }
}

/// Emits a counted loop: `body` runs `iters` times using `counter`.
/// The loop branch is the final instruction emitted.
pub fn emit_counted_loop<F>(b: &mut ProgramBuilder, counter: Reg, iters: i64, body: F)
where
    F: FnOnce(&mut ProgramBuilder),
{
    let top = b.fresh_label("loop_top");
    b.li(counter, 0);
    b.bind_label(top);
    body(b);
    b.alui(AluOp::Add, counter, counter, 1);
    b.br_imm(polyflow_isa::Cond::Lt, counter, iters, top);
}

/// Allocates a table of `n` pseudo-random words in `lo..hi` (host-side
/// generation). Workloads index it with their loop counter to obtain
/// *data-dependent* unpredictability — like SPEC inputs, the randomness
/// lives in memory, not in a serial register chain.
pub fn alloc_random_words(b: &mut ProgramBuilder, n: usize, lo: u64, hi: u64, seed: u64) -> u64 {
    assert!(hi > lo);
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let words: Vec<u64> = (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + (s >> 33) % (hi - lo)
        })
        .collect();
    b.alloc_data(&words)
}

/// Emits `dst = mem[base + (index & mask) * 8]` (four instructions,
/// clobbers `r28` via none — uses `dst` as scratch). `mask` must be a
/// power of two minus one matching the table length.
pub fn emit_load_indexed(b: &mut ProgramBuilder, dst: Reg, base: u64, index: Reg, mask: i64) {
    b.alui(AluOp::And, dst, index, mask);
    b.alui(AluOp::Sll, dst, dst, 3);
    b.alui(AluOp::Add, dst, dst, base as i64);
    b.load(dst, dst, 0);
}

/// Builds a singly linked list of `nodes` nodes in the data segment.
///
/// Node layout: word 0 = byte address of the next node (0 terminates),
/// word 1 = payload. Nodes are laid out in an LCG-shuffled order so a
/// traversal strides unpredictably across `nodes * 16` bytes of memory —
/// the pointer-chasing pattern of `mcf`/`twolf`.
///
/// Returns the byte address of the head node.
pub fn alloc_linked_list(
    b: &mut ProgramBuilder,
    nodes: usize,
    payload: impl Fn(usize) -> u64,
    seed: u64,
) -> u64 {
    assert!(nodes > 0, "list must have at least one node");
    // Shuffle 0..nodes with a Fisher–Yates driven by a splitmix-style
    // generator (host-side; this is data-layout randomness, not simulated
    // randomness).
    let mut order: Vec<usize> = (0..nodes).collect();
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    for i in (1..nodes).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    // Reserve the region, then write node words.
    let base = b.alloc_zeroed(nodes * 2);
    let addr_of = |slot: usize| base + (slot * 16) as u64;
    let mut data = Vec::with_capacity(nodes * 2);
    for (rank, &slot) in order.iter().enumerate() {
        let next_addr = if rank + 1 < nodes {
            addr_of(order[rank + 1])
        } else {
            0
        };
        data.push((addr_of(slot), next_addr));
        data.push((addr_of(slot) + 8, payload(rank)));
    }
    // alloc_zeroed reserved the space; now emit the initializers.
    for (addr, value) in data {
        push_data(b, addr, value);
    }
    addr_of(order[0])
}

/// Adds one initialized word at an absolute address (used for structures
/// built on top of `alloc_zeroed` regions).
fn push_data(b: &mut ProgramBuilder, addr: u64, value: u64) {
    // ProgramBuilder has no absolute-address API; emulate by recording via
    // alloc_data? Instead we expose this through a small extension below.
    b.push_initialized_word(addr, value);
}

/// Generates `count` leaf functions named `"{prefix}{i}"`, each `body_len`
/// single-cycle instructions followed by `ret`. Functions touch their own
/// data word so they are not trivially dead.
///
/// Used to create large instruction footprints (vortex/gap/gcc).
pub fn emit_leaf_functions(
    b: &mut ProgramBuilder,
    prefix: &str,
    count: usize,
    body_len: usize,
) -> Vec<String> {
    let mut names = Vec::with_capacity(count);
    for i in 0..count {
        let name = format!("{prefix}{i}");
        let data = b.alloc_data(&[i as u64]);
        b.begin_function(&name);
        b.li(Reg::R26, data as i64);
        b.load(Reg::R27, Reg::R26, 0);
        for j in 0..body_len {
            // Mostly serial work on the loaded object field.
            if j % 4 == 0 {
                b.alui(AluOp::Mul, Reg::R27, Reg::R27, 3);
            } else {
                b.alui(AluOp::Add, Reg::R27, Reg::R27, 1);
            }
        }
        b.store(Reg::R27, Reg::R26, 0);
        b.ret();
        b.end_function();
        names.push(name);
    }
    names
}

/// Emits an if-then-else hammock: `cond_reg != 0` runs `then_len`
/// instructions on `r3`, otherwise `else_len` instructions on `r4`;
/// both fall into the join. Returns the Pc of the branch.
pub fn emit_hammock(b: &mut ProgramBuilder, cond_reg: Reg, then_len: usize, else_len: usize) -> Pc {
    let els = b.fresh_label("h_else");
    let join = b.fresh_label("h_join");
    let br = b.br_imm(polyflow_isa::Cond::Eq, cond_reg, 0, els);
    emit_serial_work(b, Reg::R3, then_len);
    b.jmp(join);
    b.bind_label(els);
    emit_serial_work(b, Reg::R4, else_len);
    b.bind_label(join);
    br
}

/// Emits a call-site saving/restoring the link register on the stack, so
/// non-leaf functions can call others.
pub fn emit_call_saved(b: &mut ProgramBuilder, callee: &str) {
    b.alui(AluOp::Add, Reg::SP, Reg::SP, -8);
    b.store(Reg::RA, Reg::SP, 0);
    b.call(callee);
    b.load(Reg::RA, Reg::SP, 0);
    b.alui(AluOp::Add, Reg::SP, Reg::SP, 8);
}

/// Emits an indirect dispatch through a label table: selects one of
/// `cases.len()` labels using `sel_reg` (must hold `0..cases.len()`),
/// loading the target from the table and `jr`-ing to it.
pub fn emit_dispatch(b: &mut ProgramBuilder, sel_reg: Reg, cases: &[Label]) {
    let table = b.alloc_label_table(cases);
    b.alui(AluOp::Sll, Reg::R14, sel_reg, 3);
    b.li(Reg::R15, table as i64);
    b.alu(AluOp::Add, Reg::R15, Reg::R15, Reg::R14);
    b.load(Reg::R15, Reg::R15, 0);
    b.jr(Reg::R15, cases);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, Cond, Interpreter};

    #[test]
    fn rng_emits_deterministic_stream() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        emit_rng_init(&mut b, 42);
        emit_rng_next(&mut b);
        emit_rng_bits(&mut b, Reg::R12, 33, 0xff);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        let expected = 42u64
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        assert_eq!(i.reg(RNG), expected);
        assert_eq!(i.reg(Reg::R12), (expected >> 33) & 0xff);
    }

    #[test]
    fn counted_loop_runs_n_times() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        emit_counted_loop(&mut b, Reg::R1, 7, |b| {
            b.alui(AluOp::Add, Reg::R2, Reg::R2, 2);
        });
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.reg(Reg::R2), 14);
    }

    #[test]
    fn linked_list_traversal_visits_all_nodes() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let head = alloc_linked_list(&mut b, 10, |i| i as u64 + 1, 99);
        let top = b.fresh_label("walk");
        let done = b.fresh_label("done");
        b.li(Reg::R16, head as i64);
        b.bind_label(top);
        b.br_imm(Cond::Eq, Reg::R16, 0, done);
        b.load(Reg::R2, Reg::R16, 8); // payload
        b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        b.load(Reg::R16, Reg::R16, 0); // next
        b.jmp(top);
        b.bind_label(done);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(10_000).unwrap();
        // payloads 1..=10 sum to 55
        assert_eq!(i.reg(Reg::R3), 55);
    }

    #[test]
    fn leaf_functions_execute_and_return() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("leaf0");
        b.call("leaf1");
        b.halt();
        b.end_function();
        let names = emit_leaf_functions(&mut b, "leaf", 2, 5);
        assert_eq!(names, vec!["leaf0", "leaf1"]);
        let p = b.build().unwrap();
        let r = execute_window(&p, 10_000).unwrap();
        assert!(r.halted);
    }

    #[test]
    fn hammock_takes_both_arms() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R5, 1);
        emit_hammock(&mut b, Reg::R5, 3, 2); // then arm
        b.li(Reg::R5, 0);
        emit_hammock(&mut b, Reg::R5, 3, 2); // else arm
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.reg(Reg::R3), 3);
        assert_eq!(i.reg(Reg::R4), 2);
    }

    #[test]
    fn dispatch_reaches_selected_case() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let c0 = b.fresh_label("c0");
        let c1 = b.fresh_label("c1");
        let out = b.fresh_label("out");
        b.li(Reg::R5, 1);
        emit_dispatch(&mut b, Reg::R5, &[c0, c1]);
        b.bind_label(c0);
        b.li(Reg::R6, 100);
        b.jmp(out);
        b.bind_label(c1);
        b.li(Reg::R6, 200);
        b.bind_label(out);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(1000).unwrap();
        assert_eq!(i.reg(Reg::R6), 200);
    }

    #[test]
    fn call_saved_preserves_nesting() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        emit_call_saved(&mut b, "mid");
        b.halt();
        b.end_function();
        b.begin_function("mid");
        emit_call_saved(&mut b, "leafx0");
        b.ret();
        b.end_function();
        emit_leaf_functions(&mut b, "leafx", 1, 3);
        let p = b.build().unwrap();
        let r = execute_window(&p, 10_000).unwrap();
        assert!(r.halted);
    }
}
