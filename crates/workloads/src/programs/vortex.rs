//! `vortex` stand-in: dense small procedures across a wide instruction
//! footprint.
//!
//! Vortex (an OO database) executes long chains of small procedure calls
//! whose combined code footprint thrashes the 8 KB L1 I-cache. Procedure
//! fall-through spawns overlap the callee's I-cache misses with the
//! caller's continuation — the paper reports a 56% loss when procFT
//! spawns are removed (§4.3).

use crate::dsl;
use polyflow_isa::{AluOp, Program, ProgramBuilder, Reg};

/// Leaf procedures (70 x ~40 instructions ≈ 2 800 instructions: larger
/// than the 2 048-instruction L1I).
const LEAVES: usize = 70;
/// Driver transactions.
const TRANSACTIONS: i64 = 130;
/// Calls per transaction.
const CALLS_PER_TXN: usize = 6;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("vortex");

    b.begin_function("main");
    dsl::emit_counted_loop(&mut b, Reg::R9, TRANSACTIONS, |b| {
        // Each transaction touches a rotating window of the procedure
        // space, so the active footprint keeps shifting and the I-cache
        // never settles.
        for k in 0..CALLS_PER_TXN {
            // Rotate via the build-time index: call (txn*stride + k) mod LEAVES.
            // The rotation must happen at run time, so dispatch through a
            // small set of mid-level functions that fan out to leaves.
            dsl::emit_call_saved(b, &format!("mid{}", k % 7));
        }
        b.alui(AluOp::Add, Reg::R8, Reg::R8, 1);
    });
    b.halt();
    b.end_function();

    // Mid-level functions: each calls a fixed run of leaves (direct,
    // predictable calls — vortex's branches are mostly easy; the pain is
    // the footprint).
    for m in 0..7usize {
        b.begin_function(&format!("mid{m}"));
        for j in 0..(LEAVES / 7) {
            dsl::emit_call_saved(&mut b, &format!("obj{}", m * (LEAVES / 7) + j));
        }
        b.ret();
        b.end_function();
    }
    dsl::emit_leaf_functions(&mut b, "obj", LEAVES, 34);

    b.build().expect("vortex builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        assert!(
            p.len() > 2_300,
            "instruction footprint too small for I-cache pressure: {}",
            p.len()
        );
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn call_density_is_high() {
        let p = build();
        let r = execute_window(&p, 100_000).unwrap();
        let calls = r
            .trace
            .iter()
            .filter(|e| e.class() == polyflow_isa::InstClass::Call)
            .count();
        let density = calls as f64 / r.trace.len() as f64;
        assert!(density > 0.01, "call density {density:.4} too low");
    }
}
