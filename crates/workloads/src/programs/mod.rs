//! One module per benchmark stand-in. Each exposes `build() -> Program`.

pub mod bzip2;
pub mod crafty;
pub mod gap;
pub mod gcc;
pub mod gzip;
pub mod mcf;
pub mod parser;
pub mod perlbmk;
pub mod twolf;
pub mod vortex;
pub mod vpr_place;
pub mod vpr_route;
