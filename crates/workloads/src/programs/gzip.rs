//! `gzip` stand-in: LZ-style match loops.
//!
//! gzip scans a window for matches: short inner loops with an early-out
//! branch that is biased but not fully predictable, over L1-resident
//! data. Speedups are modest across the board, as in the paper.

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Window words (8 KB — mostly L1-resident).
const WINDOW_WORDS: usize = 1_024;
/// Match attempts.
const ATTEMPTS: i64 = 5_500;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("gzip");
    // Pseudo-random window contents so match lengths vary.
    let mut s = 0x671au64;
    let words: Vec<u64> = (0..WINDOW_WORDS)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 32 & 0xf
        })
        .collect();
    let window = b.alloc_data(&words);

    b.begin_function("main");
    let cmp_top = b.fresh_label("cmp");
    let mismatch = b.fresh_label("mismatch");

    // Hash-chain heads: per-attempt comparison positions from input data.
    let positions = dsl::alloc_random_words(&mut b, 2_048, 0, (WINDOW_WORDS as u64) * 64, 0x9219);
    b.li(Reg::R20, window as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, ATTEMPTS, |b| {
        // Pick two positions to compare (packed into one input word).
        dsl::emit_load_indexed(b, Reg::R11, positions, Reg::R9, 2_047);
        b.alui(AluOp::And, Reg::R12, Reg::R11, (WINDOW_WORDS as i64) - 1);
        b.alui(AluOp::Srl, Reg::R13, Reg::R11, 6);
        b.alui(AluOp::And, Reg::R13, Reg::R13, (WINDOW_WORDS as i64) - 1);
        b.alui(AluOp::Sll, Reg::R12, Reg::R12, 3);
        b.alui(AluOp::Sll, Reg::R13, Reg::R13, 3);
        b.alu(AluOp::Add, Reg::R16, Reg::R20, Reg::R12);
        b.alu(AluOp::Add, Reg::R17, Reg::R20, Reg::R13);
        // Compare words until mismatch (match lengths are short: values
        // are 4-bit, so P(equal) ~ 1/16 per step after the first).
        b.li(Reg::R1, 0);
        b.bind_label(cmp_top);
        b.load(Reg::R2, Reg::R16, 0);
        b.load(Reg::R3, Reg::R17, 0);
        b.br(Cond::Ne, Reg::R2, Reg::R3, mismatch);
        b.alui(AluOp::Add, Reg::R16, Reg::R16, 8);
        b.alui(AluOp::Add, Reg::R17, Reg::R17, 8);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 8, cmp_top);
        b.bind_label(mismatch);
        // Emit literal/match bookkeeping: the Huffman state update is a
        // serial chain through the pass.
        b.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R1);
        b.alu(AluOp::Mul, Reg::R5, Reg::R5, Reg::R4);
        b.alui(AluOp::And, Reg::R5, Reg::R5, 0xffff);
        dsl::emit_parallel_work(b, &[Reg::R6, Reg::R7], 4);
    });
    b.halt();
    b.end_function();

    b.build().expect("gzip builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn match_lengths_are_short_and_varied() {
        let p = build();
        let r = execute_window(&p, 200_000).unwrap();
        // The early-out branch (bne r2, r3) should be taken (mismatch)
        // most of the time but not always.
        let mut taken = 0u64;
        let mut total = 0u64;
        for e in &r.trace {
            if let polyflow_isa::Inst::Br {
                cond: Cond::Ne,
                rs: Reg::R2,
                rt: Reg::R3,
                ..
            } = e.inst
            {
                total += 1;
                if e.taken {
                    taken += 1;
                }
            }
        }
        assert!(total > 1000);
        let frac = taken as f64 / total as f64;
        assert!((0.7..1.0).contains(&frac), "mismatch rate {frac:.2}");
    }
}
