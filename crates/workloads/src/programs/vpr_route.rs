//! `vpr.route` stand-in: short inner waves inside independent outer
//! routes.
//!
//! The router expands short wavefronts (inner loops with small,
//! data-dependent trip counts) once per connection; connections are
//! independent of one another. The inner loop branch mispredicts at every
//! exit, and the code after the inner loop belongs to the *next* piece of
//! independent outer work — the loop fall-through spawn is therefore the
//! critical one (the paper reports a 29% loss when loopFT is removed).

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Independent routes (outer iterations).
const ROUTES: i64 = 4_000;
/// Per-route scratch array words.
const TRACK_WORDS: usize = 4_096;
/// Random-input table words (per-route wavefront lengths).
const INPUT_WORDS: usize = 1_024;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("vpr.route");
    let tracks = b.alloc_zeroed(TRACK_WORDS);
    // Per-route wavefront lengths 2..=5, drawn from input data (not a
    // serial register chain) so routes stay independent.
    let lens = dsl::alloc_random_words(&mut b, INPUT_WORDS, 2, 6, 0x0043);

    b.begin_function("main");
    let wave = b.fresh_label("wave");

    dsl::emit_counted_loop(&mut b, Reg::R9, ROUTES, |b| {
        // This route's wavefront length comes from the input table.
        dsl::emit_load_indexed(b, Reg::R12, lens, Reg::R9, (INPUT_WORDS as i64) - 1);
        // Inner wave expansion: serial-ish cost updates seeded from the
        // route id, so each route's dataflow is private.
        b.li(Reg::R1, 0);
        b.alu(AluOp::Add, Reg::R2, Reg::R9, Reg::R0);
        b.bind_label(wave);
        b.alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R1);
        b.alui(AluOp::Mul, Reg::R2, Reg::R2, 3);
        b.alui(AluOp::And, Reg::R2, Reg::R2, 0xffff);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br(Cond::Lt, Reg::R1, Reg::R12, wave);
        // Outer work: commit this route to its own slot (independent of
        // other routes) and set up the next route.
        b.alui(AluOp::And, Reg::R5, Reg::R9, (TRACK_WORDS as i64) - 1);
        b.alui(AluOp::Sll, Reg::R5, Reg::R5, 3);
        b.li(Reg::R16, tracks as i64);
        b.alu(AluOp::Add, Reg::R16, Reg::R16, Reg::R5);
        b.store(Reg::R2, Reg::R16, 0);
        dsl::emit_parallel_work(b, &[Reg::R3, Reg::R4, Reg::R6, Reg::R7], 12);
        b.load(Reg::R8, Reg::R16, 0);
        b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R8);
    });
    b.halt();
    b.end_function();

    b.build().expect("vpr.route builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn inner_trip_counts_vary() {
        let p = build();
        let r = execute_window(&p, 100_000).unwrap();
        // The wave branch (backward, comparing r1 < r12) should be taken
        // a varying number of times per route.
        let mut runs = std::collections::HashSet::new();
        let mut current = 0u32;
        for e in &r.trace {
            if e.inst.is_cond_branch() {
                if let polyflow_isa::Inst::Br {
                    rs: Reg::R1,
                    rt: Reg::R12,
                    ..
                } = e.inst
                {
                    if e.taken {
                        current += 1;
                    } else {
                        runs.insert(current);
                        current = 0;
                    }
                }
            }
        }
        assert!(runs.len() >= 3, "trip counts too uniform: {runs:?}");
    }
}
