//! `parser` stand-in: recursive-descent parsing with medium-bias
//! branches.
//!
//! The link-grammar parser mixes procedure recursion with moderately
//! predictable (~70/30) alternatives. Both procFT and hammock spawns find
//! work; no single heuristic dominates.

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Sentences parsed.
const SENTENCES: i64 = 1_600;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("parser");
    let dict = b.alloc_zeroed(512);
    // Sentence-token stream; `r21` is the global cursor.
    let tokens = dsl::alloc_random_words(&mut b, 4_096, 0, u64::MAX / 2, 0x9a45e4);
    let tokens_mask = 4_095i64;

    b.begin_function("main");
    b.li(Reg::R20, dict as i64);
    b.li(Reg::R21, 0);
    dsl::emit_counted_loop(&mut b, Reg::R9, SENTENCES, |b| {
        dsl::emit_call_saved(b, "parse_expr");
        dsl::emit_parallel_work(b, &[Reg::R7, Reg::R8], 4);
    });
    b.halt();
    b.end_function();

    // parse_expr -> parse_term -> parse_factor: a fixed three-deep
    // "recursion" (real recursion depth is data-bounded; three levels
    // keep the call stack live without risking non-termination).
    b.begin_function("parse_expr");
    dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, tokens_mask);
    b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
    b.alui(AluOp::And, Reg::R13, Reg::R11, 3);
    // ~75% taken: most expressions are sums.
    let simple = b.fresh_label("simple_expr");
    let done = b.fresh_label("expr_done");
    b.br_imm(Cond::Eq, Reg::R13, 0, simple);
    dsl::emit_call_saved(&mut b, "parse_term");
    dsl::emit_call_saved(&mut b, "parse_term");
    b.jmp(done);
    b.bind_label(simple);
    dsl::emit_call_saved(&mut b, "parse_term");
    b.bind_label(done);
    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
    b.ret();
    b.end_function();

    b.begin_function("parse_term");
    dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, tokens_mask);
    b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 4);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 3);
    let unary = b.fresh_label("unary");
    let tdone = b.fresh_label("term_done");
    b.br_imm(Cond::Gt, Reg::R13, 0, unary); // ~75% taken
    dsl::emit_call_saved(&mut b, "parse_factor");
    dsl::emit_call_saved(&mut b, "parse_factor");
    b.jmp(tdone);
    b.bind_label(unary);
    dsl::emit_call_saved(&mut b, "parse_factor");
    b.bind_label(tdone);
    b.ret();
    b.end_function();

    b.begin_function("parse_factor");
    // Dictionary probe: load, 50/50 hammock on the value, store.
    dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, tokens_mask);
    b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
    b.alui(AluOp::Srl, Reg::R14, Reg::R11, 8);
    b.alui(AluOp::And, Reg::R14, Reg::R14, 63);
    b.alui(AluOp::Sll, Reg::R14, Reg::R14, 3);
    // `r20` holds the dictionary base (set once in main and never
    // clobbered by the parse functions).
    b.alu(AluOp::Add, Reg::R26, Reg::R20, Reg::R14);
    b.load(Reg::R27, Reg::R26, 0);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 16);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    dsl::emit_hammock(&mut b, Reg::R13, 4, 2);
    b.alui(AluOp::Add, Reg::R27, Reg::R27, 1);
    b.store(Reg::R27, Reg::R26, 0);
    b.ret();
    b.end_function();

    b.build().expect("parser builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, InstClass};

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn nested_calls_occur() {
        let p = build();
        let r = execute_window(&p, 100_000).unwrap();
        let mut depth = 0usize;
        let mut max_depth = 0;
        for e in &r.trace {
            match e.class() {
                InstClass::Call => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                InstClass::Ret => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        assert!(max_depth >= 3, "max call depth {max_depth}");
    }
}
