//! `twolf` stand-in: the `new_dbox_a` kernel of the paper's Figure 6.
//!
//! A nested for-loop: the outer loop walks a linked list of terminals;
//! the inner loop walks each terminal's net list. The inner body contains
//! one if-then-else (taken ~30% of the time) and two if-then statements
//! (the `ABS` macro, ~50% each), exactly the structure the paper
//! highlights. Inner lists average three nodes. The data footprint
//! exceeds the L1 D-cache, so the pointer loads miss regularly.

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Outer linked-list length (terminals).
const TERMS: usize = 350;
/// Inner list lengths cycle through this pattern (average 3, as in §2.3).
const NET_LENS: [usize; 5] = [1, 2, 3, 4, 5];
/// Times `new_dbox_a` is invoked by the driver.
const CALLS: i64 = 6;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("twolf");

    // ---- data: inner net lists -------------------------------------------------
    // Net node layout: [0]=next, [8]=flag, [16]=xpos, [24]=newx.
    // Host-side RNG for data generation.
    let mut s = SEED;
    let mut rand = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let mut inner_heads = Vec::with_capacity(TERMS);
    for t in 0..TERMS {
        let len = NET_LENS[t % NET_LENS.len()];
        let base = b.alloc_zeroed(len * 4);
        for i in 0..len {
            let addr = base + (i * 32) as u64;
            let next = if i + 1 < len { addr + 32 } else { 0 };
            b.push_initialized_word(addr, next);
            // flag == 1 on ~30% of nodes (the if-then-else bias in §2.3).
            b.push_initialized_word(addr + 8, (rand() % 10 < 3) as u64);
            // xpos, newx: random around the means so the ABS branches are
            // ~50/50.
            b.push_initialized_word(addr + 16, 1000 + rand() % 200);
            b.push_initialized_word(addr + 24, 1000 + rand() % 200);
        }
        inner_heads.push(base);
    }
    // Outer terminal list: [0]=next, [8]=net head.
    let outer = b.alloc_zeroed(TERMS * 2);
    for (t, &head) in inner_heads.iter().enumerate().take(TERMS) {
        let addr = outer + (t * 16) as u64;
        let next = if t + 1 < TERMS { addr + 16 } else { 0 };
        b.push_initialized_word(addr, next);
        b.push_initialized_word(addr + 8, head);
    }
    let cost = b.alloc_data(&[0]);

    // ---- driver -----------------------------------------------------------------
    b.begin_function("main");
    dsl::emit_counted_loop(&mut b, Reg::R9, CALLS, |b| {
        dsl::emit_call_saved(b, "new_dbox_a");
    });
    b.halt();
    b.end_function();

    // ---- new_dbox_a (Figure 6) ---------------------------------------------------
    b.begin_function("new_dbox_a");
    let outer_top = b.fresh_label("outer");
    let outer_done = b.fresh_label("outer_done");
    let inner_top = b.fresh_label("inner");
    let inner_done = b.fresh_label("inner_done");
    let else_arm = b.fresh_label("flag_else");
    let flag_join = b.fresh_label("flag_join");
    let abs1_skip = b.fresh_label("abs1_skip");
    let abs2_skip = b.fresh_label("abs2_skip");

    b.li(Reg::R16, outer as i64); // termptr
    b.li(Reg::R20, cost as i64); // costptr
    b.li(Reg::R21, 1100); // new_mean
    b.li(Reg::R22, 1100); // old_mean

    b.bind_label(outer_top);
    b.br_imm(Cond::Eq, Reg::R16, 0, outer_done); // outer loop condition
    b.load(Reg::R17, Reg::R16, 8); // netptr = dimptr->netptr

    b.bind_label(inner_top);
    b.br_imm(Cond::Eq, Reg::R17, 0, inner_done); // inner loop condition
    b.load(Reg::R1, Reg::R17, 16); // oldx = netptr->xpos
    b.load(Reg::R2, Reg::R17, 8); // flag
                                  // if (netptr->flag == 1) { newx = netptr->newx; flag = 0 } else { newx = oldx }
    b.br_imm(Cond::Ne, Reg::R2, 1, else_arm);
    b.load(Reg::R3, Reg::R17, 24); // newx = netptr->newx
    b.store(Reg::R0, Reg::R17, 8); // netptr->flag = 0
    b.jmp(flag_join);
    b.bind_label(else_arm);
    b.alu(AluOp::Add, Reg::R3, Reg::R1, Reg::R0); // newx = oldx
    b.bind_label(flag_join);
    // *costptr += ABS(newx - new_mean) - ABS(oldx - old_mean)
    b.alu(AluOp::Sub, Reg::R4, Reg::R3, Reg::R21);
    b.br_imm(Cond::Ge, Reg::R4, 0, abs1_skip); // if-then (ABS)
    b.alu(AluOp::Sub, Reg::R4, Reg::R0, Reg::R4);
    b.bind_label(abs1_skip);
    b.alu(AluOp::Sub, Reg::R5, Reg::R1, Reg::R22);
    b.br_imm(Cond::Ge, Reg::R5, 0, abs2_skip); // if-then (ABS)
    b.alu(AluOp::Sub, Reg::R5, Reg::R0, Reg::R5);
    b.bind_label(abs2_skip);
    b.load(Reg::R6, Reg::R20, 0);
    b.alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R4);
    b.alu(AluOp::Sub, Reg::R6, Reg::R6, Reg::R5);
    b.store(Reg::R6, Reg::R20, 0);
    // Wire-length bookkeeping: independent work in the inner body.
    b.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
    b.alui(AluOp::Add, Reg::R8, Reg::R8, 2);
    b.alui(AluOp::Xor, Reg::R18, Reg::R18, 5);
    b.load(Reg::R17, Reg::R17, 0); // netptr = netptr->nterm (loop index load!)
    b.jmp(inner_top);

    b.bind_label(inner_done);
    b.load(Reg::R16, Reg::R16, 0); // termptr = termptr->nextterm
    b.jmp(outer_top);

    b.bind_label(outer_done);
    b.ret();
    b.end_function();

    b.build().expect("twolf builds")
}

/// Data-generation seed.
const SEED: u64 = 0x7001f;

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 50_000, "only {} steps", r.steps);
    }

    #[test]
    fn inner_if_else_is_taken_about_thirty_percent() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        // Find the flag branch: the `bne r2, r28` in new_dbox_a. Count
        // direction mix of all conditional branches comparing against the
        // flag (crudest: measure that both directions of some branch are
        // well represented).
        let mut by_pc: std::collections::HashMap<_, (u64, u64)> = Default::default();
        for e in &r.trace {
            if e.inst.is_cond_branch() {
                let c = by_pc.entry(e.pc).or_default();
                if e.taken {
                    c.0 += 1;
                } else {
                    c.1 += 1;
                }
            }
        }
        // At least one branch is mixed 20-45% in one direction (the flag
        // if-then-else; "taken" here means skipping to the else arm).
        let mixed = by_pc.values().any(|&(t, n)| {
            let total = t + n;
            total > 1000 && {
                let frac = n.min(t) as f64 / total as f64;
                (0.2..=0.45).contains(&frac)
            }
        });
        assert!(mixed, "expected a ~30% branch, got {by_pc:?}");
    }
}
