//! `bzip2` stand-in: predictable buffer transforms.
//!
//! bzip2's hot loops scan and permute buffers with highly biased
//! branches; the superscalar baseline already extracts most of the ILP
//! (the paper reports its highest baseline IPC, 2.8, and small speedups).

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Buffer words (6.4 KB — fits the L1 D-cache).
const BUF_WORDS: usize = 800;
/// Transform passes.
const PASSES: i64 = 28;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("bzip2");
    let buf = b.alloc_zeroed(BUF_WORDS);
    let counts = b.alloc_zeroed(256);

    b.begin_function("main");
    let scan_top = b.fresh_label("scan");
    let rare = b.fresh_label("rare");
    let merge = b.fresh_label("merge");
    let mtf_top = b.fresh_label("mtf");

    b.li(Reg::R20, buf as i64);
    b.li(Reg::R21, counts as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, PASSES, |b| {
        // Pass 1: counting scan with a ~3% branch (run-length escape).
        b.li(Reg::R1, 0);
        b.bind_label(scan_top);
        b.alui(AluOp::Sll, Reg::R2, Reg::R1, 3);
        b.alu(AluOp::Add, Reg::R2, Reg::R20, Reg::R2);
        b.load(Reg::R3, Reg::R2, 0);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R2, 0);
        // Rank accumulation: a serial multiply chain through the scan,
        // as in the real BWT bookkeeping.
        b.alu(AluOp::Mul, Reg::R7, Reg::R7, Reg::R3);
        b.alui(AluOp::And, Reg::R7, Reg::R7, 0xffff);
        b.alui(AluOp::And, Reg::R4, Reg::R3, 31);
        b.br_imm(Cond::Ne, Reg::R4, 31, merge); // taken ~97%
        b.bind_label(rare);
        dsl::emit_serial_work(b, Reg::R5, 4);
        b.bind_label(merge);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, BUF_WORDS as i64, scan_top);
        // Pass 2: move-to-front-ish update over the count table
        // (branch-free, ILP-rich).
        b.li(Reg::R1, 0);
        b.bind_label(mtf_top);
        b.alui(AluOp::Sll, Reg::R2, Reg::R1, 3);
        b.alu(AluOp::Add, Reg::R2, Reg::R21, Reg::R2);
        b.load(Reg::R3, Reg::R2, 0);
        b.alui(AluOp::Xor, Reg::R3, Reg::R3, 0x1f);
        b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
        b.store(Reg::R3, Reg::R2, 0);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 256, mtf_top);
    });
    b.halt();
    b.end_function();

    b.build().expect("bzip2 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn branches_are_mostly_predictable() {
        let p = build();
        let r = execute_window(&p, 200_000).unwrap();
        let mut taken = 0u64;
        let mut total = 0u64;
        for e in &r.trace {
            if e.inst.is_cond_branch() {
                total += 1;
                if e.taken {
                    taken += 1;
                }
            }
        }
        let bias = taken as f64 / total as f64;
        assert!(bias > 0.9, "bias {bias:.2} — bzip2 should be predictable");
    }
}
