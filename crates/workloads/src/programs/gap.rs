//! `gap` stand-in: an interpreter dispatching through indirect calls.
//!
//! GAP (a computer-algebra interpreter) alternates between a dispatch
//! loop and medium-sized handler routines chosen by the input expression
//! stream. Indirect calls mispredict when the handler changes, and the
//! handler space is bigger than the L1 I-cache — procedure fall-through
//! spawns recover both costs (§4.1 shows gap responding strongly to
//! procFT).

use crate::dsl;
use polyflow_isa::{AluOp, Program, ProgramBuilder, Reg};

/// Handler routines (56 x ~45 instructions plus dispatch ≈ 2 500+
/// instructions of live code).
const HANDLERS: usize = 56;
/// Interpreted operations.
const OPS: i64 = 3_000;
/// Input expression stream length (words).
const STREAM: usize = 2_048;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("gap");

    // Function-pointer table, patched with handler entry addresses.
    let names: Vec<String> = (0..HANDLERS).map(|i| format!("eval{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let table = b.alloc_fn_table(&name_refs);
    // The input expression stream: which handler each op needs.
    let stream = dsl::alloc_random_words(&mut b, STREAM, 0, HANDLERS as u64, 0x6a9);
    let interp_state = b.alloc_data(&[0]);

    b.begin_function("main");
    b.li(Reg::R22, interp_state as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, OPS, |b| {
        // Interpreter value-stack depth: a genuine serial dependence
        // carried through memory from op to op.
        b.load(Reg::R23, Reg::R22, 0);
        b.alui(AluOp::Mul, Reg::R23, Reg::R23, 31);
        b.alui(AluOp::Mul, Reg::R23, Reg::R23, 17);
        b.alui(AluOp::And, Reg::R23, Reg::R23, 0xffff);
        b.alui(AluOp::Add, Reg::R23, Reg::R23, 1);
        // Read the next op from the input stream: the indirect call
        // target is data-dependent and unpredictable.
        dsl::emit_load_indexed(b, Reg::R12, stream, Reg::R9, (STREAM as i64) - 1);
        b.alui(AluOp::Sll, Reg::R12, Reg::R12, 3);
        b.li(Reg::R13, table as i64);
        b.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R12);
        b.load(Reg::R13, Reg::R13, 0);
        // Indirect call with RA saved around it.
        b.alui(AluOp::Add, Reg::SP, Reg::SP, -8);
        b.store(Reg::RA, Reg::SP, 0);
        b.callr(Reg::R13);
        b.load(Reg::RA, Reg::SP, 0);
        b.alui(AluOp::Add, Reg::SP, Reg::SP, 8);
        // Interpreter bookkeeping between ops (independent of the handler).
        dsl::emit_parallel_work(b, &[Reg::R5, Reg::R6, Reg::R7], 6);
        b.store(Reg::R23, Reg::R22, 0);
    });
    b.halt();
    b.end_function();

    // Handlers: mixed ALU/memory bodies with a small internal loop every
    // fourth handler.
    for (i, name) in names.iter().enumerate() {
        let data = b.alloc_data(&[i as u64 + 1]);
        b.begin_function(name);
        b.li(Reg::R26, data as i64);
        b.load(Reg::R27, Reg::R26, 0);
        if i % 4 == 0 {
            let top = b.fresh_label("h_loop");
            b.li(Reg::R25, 0);
            b.bind_label(top);
            b.alui(AluOp::Add, Reg::R27, Reg::R27, 3);
            b.alui(AluOp::Add, Reg::R25, Reg::R25, 1);
            b.br_imm(polyflow_isa::Cond::Lt, Reg::R25, 4, top);
            dsl::emit_serial_work(&mut b, Reg::R27, 24);
        } else {
            dsl::emit_serial_work(&mut b, Reg::R27, 24);
            dsl::emit_parallel_work(&mut b, &[Reg::R24, Reg::R25, Reg::R23], 20);
        }
        b.store(Reg::R27, Reg::R26, 0);
        b.ret();
        b.end_function();
    }

    b.build().expect("gap builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        assert!(p.len() > 2_000, "footprint {} too small", p.len());
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn indirect_calls_change_targets() {
        let p = build();
        let r = execute_window(&p, 150_000).unwrap();
        let mut targets = std::collections::HashSet::new();
        for e in &r.trace {
            if matches!(e.inst, polyflow_isa::Inst::CallR { .. }) {
                targets.insert(e.next_pc);
            }
        }
        assert!(
            targets.len() > HANDLERS / 2,
            "only {} targets",
            targets.len()
        );
    }
}
