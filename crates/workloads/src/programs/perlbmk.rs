//! `perlbmk` stand-in: a hard indirect-jump opcode dispatch loop.
//!
//! Perl's interpreter dispatches opcodes through an indirect jump whose
//! target is effectively unpredictable. The "other" spawn category — the
//! immediate postdominator of the indirect jump — lets fetch run ahead to
//! the next dispatch while the jump resolves. The paper singles out
//! perlbmk as the benchmark where "other" spawns beat all heuristics
//! (§4.1) and reports a 21% loss when hammocks are removed (§4.3), so the
//! cases also contain hammocks.

use crate::dsl;
use polyflow_isa::{AluOp, Program, ProgramBuilder, Reg};

/// Dispatched opcodes.
const OPS: i64 = 7_000;
/// Opcode case count (power of two).
const CASES: usize = 8;
/// Bytecode stream length (words).
const BYTECODE: usize = 2_048;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("perlbmk");
    let state = b.alloc_zeroed(64);
    // The "compiled script": a stream of random opcodes. Dispatch reads
    // it by program counter, so opcode choice is data, not a serial
    // register chain.
    let bytecode = dsl::alloc_random_words(&mut b, BYTECODE, 0, 1 << 16, 0x9e71);

    b.begin_function("main");
    let case_labels: Vec<_> = (0..CASES)
        .map(|i| b.fresh_label(&format!("op{i}")))
        .collect();
    let continue_l = b.fresh_label("continue");

    b.li(Reg::R20, state as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, OPS, |b| {
        // The interpreter's stack-depth word: a serial memory dependence
        // carried from op to op (as in the real runloop).
        b.load(Reg::R21, Reg::R20, 56);
        b.alui(AluOp::Mul, Reg::R21, Reg::R21, 31);
        b.alui(AluOp::Mul, Reg::R21, Reg::R21, 17);
        b.alui(AluOp::And, Reg::R21, Reg::R21, 0xffff);
        b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
        // Fetch the next opcode word: the jr target is unpredictable.
        dsl::emit_load_indexed(b, Reg::R11, bytecode, Reg::R9, (BYTECODE as i64) - 1);
        b.alui(AluOp::And, Reg::R12, Reg::R11, (CASES as i64) - 1);
        dsl::emit_dispatch(b, Reg::R12, &case_labels);
        // ---- opcode bodies -------------------------------------------------
        for (i, &l) in case_labels.iter().enumerate() {
            b.bind_label(l);
            match i % 4 {
                0 => {
                    // Arithmetic op: serial chain.
                    dsl::emit_serial_work(b, Reg::R2, 8);
                }
                1 => {
                    // Memory op: touch interpreter state.
                    b.load(Reg::R3, Reg::R20, 8 * (i as i64));
                    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                    b.store(Reg::R3, Reg::R20, 8 * (i as i64));
                    dsl::emit_serial_work(b, Reg::R4, 4);
                }
                2 => {
                    // Conditional op: a 50/50 hammock on an operand bit.
                    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 5);
                    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
                    dsl::emit_hammock(b, Reg::R13, 5, 3);
                }
                _ => {
                    // String-ish op: parallel work.
                    dsl::emit_parallel_work(b, &[Reg::R5, Reg::R6, Reg::R7], 9);
                }
            }
            b.jmp(continue_l);
        }
        b.bind_label(continue_l);
        // Common interpreter bookkeeping (the reconvergence region).
        b.alu(AluOp::Add, Reg::R8, Reg::R8, Reg::R12);
        b.alui(AluOp::Xor, Reg::R8, Reg::R8, 3);
        b.store(Reg::R21, Reg::R20, 56);
    });
    b.halt();
    b.end_function();

    b.build().expect("perlbmk builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, InstClass};

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn dispatch_targets_are_spread() {
        let p = build();
        let r = execute_window(&p, 200_000).unwrap();
        let mut targets = std::collections::HashMap::new();
        for e in &r.trace {
            if e.class() == InstClass::IndirectJump {
                *targets.entry(e.next_pc).or_insert(0u64) += 1;
            }
        }
        assert_eq!(targets.len(), CASES, "all cases reached");
        let total: u64 = targets.values().sum();
        for (&t, &n) in &targets {
            let frac = n as f64 / total as f64;
            assert!(
                (0.05..=0.25).contains(&frac),
                "case {t} frequency {frac:.2} is too skewed"
            );
        }
    }
}
