//! `vpr.place` stand-in: simulated-annealing placement moves.
//!
//! Each move computes the cost delta of a swap over a handful of nets
//! (a short inner loop), then accepts or rejects it — a 50/50 metropolis
//! hammock. Loop and hammock spawns both find work.

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Placement grid words.
const GRID_WORDS: usize = 2_048;
/// Annealing moves.
const MOVES: i64 = 2_600;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("vpr.place");
    let grid = b.alloc_zeroed(GRID_WORDS);

    b.begin_function("main");
    let net_top = b.fresh_label("net");
    let reject = b.fresh_label("reject");
    let decided = b.fresh_label("decided");

    // Move descriptors: net positions and the accept bit come from the
    // (random) netlist data, indexed by the move number.
    let moves_tbl = dsl::alloc_random_words(&mut b, 4_096, 0, u64::MAX / 2, 0x0e9);
    b.li(Reg::R20, grid as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, MOVES, |b| {
        dsl::emit_load_indexed(b, Reg::R11, moves_tbl, Reg::R9, 4_095);
        // Cost loop over 5 connected nets.
        b.li(Reg::R1, 0);
        b.li(Reg::R3, 0);
        b.bind_label(net_top);
        // Net index: mix the move word with the net counter.
        b.alui(AluOp::Sll, Reg::R12, Reg::R1, 4);
        b.alu(AluOp::Xor, Reg::R12, Reg::R12, Reg::R11);
        b.alui(AluOp::And, Reg::R12, Reg::R12, (GRID_WORDS as i64) - 1);
        b.alui(AluOp::Sll, Reg::R12, Reg::R12, 3);
        b.alu(AluOp::Add, Reg::R16, Reg::R20, Reg::R12);
        b.load(Reg::R2, Reg::R16, 0);
        // Bounding-box update: serial through the nets of this move.
        b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        b.alui(AluOp::Mul, Reg::R3, Reg::R3, 3);
        b.alui(AluOp::And, Reg::R3, Reg::R3, 0xffff);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 5, net_top);
        // Metropolis accept/reject on a move bit (50/50, hard).
        b.alui(AluOp::Srl, Reg::R13, Reg::R11, 30);
        b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
        b.br_imm(Cond::Eq, Reg::R13, 0, reject);
        // Accept: commit the swap (stores).
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R16, 0);
        dsl::emit_serial_work(b, Reg::R4, 5);
        b.jmp(decided);
        b.bind_label(reject);
        dsl::emit_serial_work(b, Reg::R5, 3);
        b.bind_label(decided);
        // Temperature bookkeeping (independent tail).
        dsl::emit_parallel_work(b, &[Reg::R6, Reg::R7], 6);
    });
    b.halt();
    b.end_function();

    b.build().expect("vpr.place builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn accept_reject_is_balanced() {
        let p = build();
        let r = execute_window(&p, 200_000).unwrap();
        let mut taken = 0u64;
        let mut total = 0u64;
        for e in &r.trace {
            if let polyflow_isa::Inst::Br { rs: Reg::R13, .. } = e.inst {
                total += 1;
                if e.taken {
                    taken += 1;
                }
            }
        }
        assert!(total > 500);
        let frac = taken as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "accept rate {frac:.2}");
    }
}
