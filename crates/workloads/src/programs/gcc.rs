//! `gcc` stand-in: a large, heterogeneous code base.
//!
//! gcc is the paper's biggest benchmark by static spawn count (13 707 in
//! Figure 5) and responds moderately to every spawn category. The
//! stand-in is the largest of ours: dozens of mixed "pass" functions —
//! loops, hammocks, switches, calls — driven in rotation.

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Pass functions of each flavor.
const PASSES_PER_FLAVOR: usize = 20;
/// Driver iterations.
const UNITS: i64 = 110;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("gcc");
    let symtab = b.alloc_zeroed(1024);
    // Source-token stream: drives every data-dependent branch. `r21` is a
    // global stream cursor advanced by each pass function.
    let tokens = dsl::alloc_random_words(&mut b, 4_096, 0, u64::MAX / 2, 0x6cc);

    b.begin_function("main");
    b.li(Reg::R20, symtab as i64);
    b.li(Reg::R21, 0);
    dsl::emit_counted_loop(&mut b, Reg::R9, UNITS, |b| {
        for i in 0..PASSES_PER_FLAVOR {
            dsl::emit_call_saved(b, &format!("scan{i}"));
            dsl::emit_call_saved(b, &format!("fold{i}"));
            dsl::emit_call_saved(b, &format!("emit{i}"));
        }
    });
    b.halt();
    b.end_function();

    // scanN: tokenizing loop with a biased branch and a hammock.
    for i in 0..PASSES_PER_FLAVOR {
        b.begin_function(&format!("scan{i}"));
        let top = b.fresh_label("scan_top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, 4_095);
        b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
        b.alui(AluOp::And, Reg::R13, Reg::R11, 7);
        // ~12% taken "rare token" branch.
        let rare = b.fresh_label("rare");
        let merge = b.fresh_label("merge");
        b.br_imm(Cond::Eq, Reg::R13, 0, rare);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.jmp(merge);
        b.bind_label(rare);
        dsl::emit_serial_work(&mut b, Reg::R3, 6);
        b.bind_label(merge);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 6, top);
        b.ret();
        b.end_function();
    }

    // foldN: constant folding with 50/50 hammocks over symbol data.
    for i in 0..PASSES_PER_FLAVOR {
        b.begin_function(&format!("fold{i}"));
        b.li(Reg::R26, symtab as i64);
        b.load(Reg::R27, Reg::R26, 8 * (i as i64));
        dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, 4_095);
        b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
        b.alui(AluOp::Srl, Reg::R13, Reg::R11, 8);
        b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
        dsl::emit_hammock(&mut b, Reg::R13, 5, 5);
        b.alui(AluOp::Srl, Reg::R13, Reg::R11, 9);
        b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
        dsl::emit_hammock(&mut b, Reg::R13, 3, 7);
        b.alu(AluOp::Add, Reg::R27, Reg::R27, Reg::R3);
        b.store(Reg::R27, Reg::R26, 8 * (i as i64));
        b.ret();
        b.end_function();
    }

    // emitN: switch-driven code emission (indirect jump) + serial tail.
    for i in 0..PASSES_PER_FLAVOR {
        b.begin_function(&format!("emit{i}"));
        let cases: Vec<_> = (0..4).map(|c| b.fresh_label(&format!("e{c}"))).collect();
        let join = b.fresh_label("e_join");
        dsl::emit_load_indexed(&mut b, Reg::R11, tokens, Reg::R21, 4_095);
        b.alui(AluOp::Add, Reg::R21, Reg::R21, 1);
        b.alui(AluOp::Srl, Reg::R12, Reg::R11, 12);
        b.alui(AluOp::And, Reg::R12, Reg::R12, 3);
        dsl::emit_dispatch(&mut b, Reg::R12, &cases);
        for (c, &l) in cases.iter().enumerate() {
            b.bind_label(l);
            dsl::emit_serial_work(&mut b, Reg::R4, 3 + c);
            b.jmp(join);
        }
        b.bind_label(join);
        dsl::emit_parallel_work(&mut b, &[Reg::R5, Reg::R6], 4);
        b.ret();
        b.end_function();
        let _ = i;
    }

    b.build().expect("gcc builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        assert!(p.len() > 1_500, "gcc should be large, got {}", p.len());
        let r = execute_window(&p, 2_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn has_many_functions() {
        let p = build();
        assert_eq!(p.functions().len(), 1 + 3 * PASSES_PER_FLAVOR);
    }
}
