//! `mcf` stand-in: pointer chasing under hard-to-predict branches.
//!
//! The real mcf spends its time walking arc lists whose nodes miss the
//! data caches, with branches that depend on the loaded values. The
//! stand-in chases a shuffled linked list whose footprint exceeds the L1
//! D-cache (and partially the L2), and wraps a data-dependent if-then-else
//! around each visit. Branch resolution therefore waits on cache misses —
//! precisely the case where hammock spawns shine (paper §4.1).

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Arc-list length. 14_000 nodes x 16 B = 224 KB: far beyond the 16 KB
/// L1D, comfortably inside L2 after the first pass.
const NODES: usize = 3_500;
/// Passes over the arc list.
const PASSES: i64 = 6;

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("mcf");

    // Payloads are pseudo-random so `payload < threshold` is a 50/50
    // data-dependent branch.
    let head = dsl::alloc_linked_list(
        &mut b,
        NODES,
        |i| {
            let mut s = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            s ^= s >> 31;
            s % 1000
        },
        0xAC5,
    );
    let out = b.alloc_zeroed(8);

    b.begin_function("main");
    let walk = b.fresh_label("walk");
    let list_done = b.fresh_label("list_done");
    let cheap = b.fresh_label("cheap");
    let join = b.fresh_label("join");

    b.li(Reg::R19, out as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, PASSES, |b| {
        b.li(Reg::R16, head as i64); // arc pointer
        b.bind_label(walk);
        b.br_imm(Cond::Eq, Reg::R16, 0, list_done);
        b.load(Reg::R1, Reg::R16, 8); // cost (misses L1D)
                                      // if (cost < 500) { expensive reduced-cost update } else { cheap }
        b.br_imm(Cond::Lt, Reg::R1, 500, cheap);
        // "expensive" arm: serial arithmetic on the loaded cost
        b.alui(AluOp::Add, Reg::R2, Reg::R1, 17);
        b.alui(AluOp::Mul, Reg::R2, Reg::R2, 3);
        b.alui(AluOp::Sub, Reg::R2, Reg::R2, 5);
        b.alui(AluOp::Sra, Reg::R2, Reg::R2, 1);
        b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        b.jmp(join);
        b.bind_label(cheap);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        b.bind_label(join);
        // Independent bookkeeping after the join (what a hammock spawn
        // overlaps with the mispredicted arm).
        b.alu(AluOp::Add, Reg::R5, Reg::R3, Reg::R4);
        b.alui(AluOp::Xor, Reg::R6, Reg::R5, 0x55);
        b.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
        b.alui(AluOp::Add, Reg::R8, Reg::R8, 1);
        b.store(Reg::R5, Reg::R19, 0);
        b.load(Reg::R16, Reg::R16, 0); // next arc (misses)
        b.jmp(walk);
        b.bind_label(list_done);
    });
    b.halt();
    b.end_function();

    b.build().expect("mcf builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, InstClass};

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000);
    }

    #[test]
    fn loads_stride_widely() {
        // The shuffled list makes consecutive next-pointer loads far apart:
        // the mean absolute address delta should exceed many cache lines.
        let p = build();
        let r = execute_window(&p, 200_000).unwrap();
        let addrs: Vec<u64> = r
            .trace
            .iter()
            .filter(|e| {
                e.class() == InstClass::Load
                    && matches!(
                        e.inst,
                        polyflow_isa::Inst::Load {
                            rd: Reg::R16,
                            off: 0,
                            ..
                        }
                    )
            })
            .filter_map(|e| e.mem_addr)
            .collect();
        assert!(addrs.len() > 1000);
        let mut big_jumps = 0;
        for w in addrs.windows(2) {
            if w[0].abs_diff(w[1]) > 4096 {
                big_jumps += 1;
            }
        }
        assert!(
            big_jumps * 2 > addrs.len(),
            "pointer chase is too sequential: {big_jumps}/{}",
            addrs.len()
        );
    }
}
