//! `crafty` stand-in: call-structured evaluation with hard branches.
//!
//! Chess evaluation in crafty is a tree of procedure calls (pawn
//! structure, king safety, mobility), each full of moderately
//! hard-to-predict conditionals over board state, plus switch dispatch.
//! One position's evaluation is several hundred dynamic instructions, so
//! whole-iteration loop spawns exceed the Task Spawn Unit's range — the
//! paper reports crafty responding to hammock and "other" spawns where
//! loop/procedure heuristics find nothing (§4.1, §4.3).

use crate::dsl;
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// Evaluated positions.
const POSITIONS: i64 = 550;
/// Random board-feature table (words).
const FEATURES: usize = 2_048;

/// Emits a small board-scan loop (predictable; dilutes branch density as
/// real evaluation code does).
fn emit_scan(b: &mut ProgramBuilder, iters: i64) {
    let top = b.fresh_label("scan");
    b.li(Reg::R25, 0);
    b.bind_label(top);
    b.alui(AluOp::Add, Reg::R26, Reg::R26, 3);
    b.alui(AluOp::Xor, Reg::R27, Reg::R26, 0x11);
    b.alui(AluOp::Add, Reg::R26, Reg::R27, 1);
    b.alui(AluOp::Add, Reg::R25, Reg::R25, 1);
    b.br_imm(Cond::Lt, Reg::R25, iters, top);
}

/// Builds the program.
pub fn build() -> Program {
    let mut b = ProgramBuilder::named("crafty");
    let board = b.alloc_zeroed(128);
    let features = dsl::alloc_random_words(&mut b, FEATURES, 0, 1 << 20, 0xc4af7);

    b.begin_function("main");
    b.li(Reg::R20, board as i64);
    dsl::emit_counted_loop(&mut b, Reg::R9, POSITIONS, |b| {
        // Load this position's feature word (independent across
        // positions); the eval procedures branch on its bits via r11.
        dsl::emit_load_indexed(b, Reg::R11, features, Reg::R9, (FEATURES as i64) - 1);
        dsl::emit_call_saved(b, "eval_pawns");
        dsl::emit_call_saved(b, "eval_king");
        dsl::emit_call_saved(b, "eval_mobility");
        // Score accumulation after all the control flow.
        b.alu(AluOp::Add, Reg::R6, Reg::R3, Reg::R4);
        b.alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R5);
        b.store(Reg::R6, Reg::R20, 0);
        dsl::emit_parallel_work(b, &[Reg::R7, Reg::R8], 6);
    });
    b.halt();
    b.end_function();

    // eval_pawns: three hammocks (~25%, 50%, 50%) over a board scan.
    b.begin_function("eval_pawns");
    emit_scan(&mut b, 6);
    b.alui(AluOp::And, Reg::R13, Reg::R11, 3);
    dsl::emit_hammock(&mut b, Reg::R13, 7, 3); // else arm ~25%
    emit_scan(&mut b, 6);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 2);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    dsl::emit_hammock(&mut b, Reg::R13, 4, 8); // 50/50
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 12);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    dsl::emit_hammock(&mut b, Reg::R13, 6, 6); // 50/50
    b.ret();
    b.end_function();

    // eval_king: a nested if inside an if (the paper's §6 nested-hammock
    // case), plus a 50/50 hammock.
    b.begin_function("eval_king");
    emit_scan(&mut b, 6);
    let deep_skip = b.fresh_label("deep_skip");
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 7);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    b.br_imm(Cond::Eq, Reg::R13, 0, deep_skip);
    b.alui(AluOp::Srl, Reg::R14, Reg::R11, 8);
    b.alui(AluOp::And, Reg::R14, Reg::R14, 1);
    dsl::emit_hammock(&mut b, Reg::R14, 4, 4); // inner hammock
    b.bind_label(deep_skip);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 3);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    dsl::emit_hammock(&mut b, Reg::R13, 6, 5);
    b.ret();
    b.end_function();

    // eval_mobility: switch over piece type (an "other" source: indirect
    // jump) plus a 50/50 hammock.
    b.begin_function("eval_mobility");
    let sw: Vec<_> = (0..4)
        .map(|i| b.fresh_label(&format!("piece{i}")))
        .collect();
    let sw_join = b.fresh_label("sw_join");
    emit_scan(&mut b, 6);
    b.alui(AluOp::Srl, Reg::R12, Reg::R11, 10);
    b.alui(AluOp::And, Reg::R12, Reg::R12, 3);
    dsl::emit_dispatch(&mut b, Reg::R12, &sw);
    for (i, &l) in sw.iter().enumerate() {
        b.bind_label(l);
        b.load(Reg::R5, Reg::R20, 8 * (i as i64 + 1));
        b.alui(AluOp::Add, Reg::R5, Reg::R5, i as i64 + 1);
        b.store(Reg::R5, Reg::R20, 8 * (i as i64 + 1));
        b.jmp(sw_join);
    }
    b.bind_label(sw_join);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 5);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
    dsl::emit_hammock(&mut b, Reg::R13, 3, 9);
    b.alui(AluOp::Srl, Reg::R13, Reg::R11, 14);
    b.alui(AluOp::And, Reg::R13, Reg::R13, 3);
    dsl::emit_hammock(&mut b, Reg::R13, 8, 4); // else arm ~25%
    b.ret();
    b.end_function();

    b.build().expect("crafty builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::execute_window;

    #[test]
    fn builds_and_halts() {
        let p = build();
        let r = execute_window(&p, 1_000_000).unwrap();
        assert!(r.halted);
        assert!(r.steps > 100_000, "only {} steps", r.steps);
    }

    #[test]
    fn branches_are_hard() {
        // Several hammock branches should be substantially mixed.
        let p = build();
        let r = execute_window(&p, 300_000).unwrap();
        let mut by_pc: std::collections::HashMap<_, (u64, u64)> = Default::default();
        for e in &r.trace {
            if e.inst.is_cond_branch() {
                let c = by_pc.entry(e.pc).or_default();
                if e.taken {
                    c.0 += 1
                } else {
                    c.1 += 1
                }
            }
        }
        let hard = by_pc
            .values()
            .filter(|&&(t, n)| {
                let total = t + n;
                total > 500 && (0.2..=0.8).contains(&(t as f64 / total as f64))
            })
            .count();
        assert!(hard >= 4, "only {hard} hard branches");
    }

    #[test]
    fn iterations_are_long() {
        // A position evaluation should span a few hundred dynamic
        // instructions (beyond the default max spawn distance), so
        // whole-iteration loop spawns are out of the spawn unit's range.
        let p = build();
        let r = execute_window(&p, 500_000).unwrap();
        let per_pos = r.steps as i64 / POSITIONS;
        assert!(per_pos > 150, "iteration too short: {per_pos}");
    }
}
