//! The service core: admission control, the micro-batcher, and the
//! result cache, independent of any transport.
//!
//! Connection handlers call [`Service::submit`] (or the non-blocking
//! [`Service::enqueue`]); a single batcher thread coalesces queued
//! requests into batches and executes each batch as one
//! [`sweep::run_batch_with`] dispatch on the work-stealing pool. The
//! pipeline per unique cell is
//!
//! ```text
//! validate → cache lookup → admission queue → batcher → pool → render → cache
//! ```
//!
//! # Admission control
//!
//! The queue is bounded ([`ServiceConfig::queue_capacity`]). A request
//! arriving at a full queue is shed *immediately* with a typed
//! [`ErrorKind::Overloaded`] error — it never blocks the connection
//! handler and never hangs the client. Shedding at admission (rather
//! than deep in the pool) keeps the latency of the rejection path
//! constant no matter how far behind the simulator is.
//!
//! # Determinism
//!
//! Batch composition cannot affect results: every cell runs
//! [`sweep::run_cell_with_config`] on its own validated config with a
//! per-worker scratch arena, exactly what an offline caller would run,
//! and the response line is rendered from the result before it is cached
//! — a cache hit replays the very bytes a fresh run would produce.
//! Duplicate keys inside one batch are deduplicated; every duplicate
//! waiter receives a clone of the same `Arc<str>`.

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::journal::Journal;
use crate::json;
use crate::protocol::{ErrorKind, ServeError, SimRequest, SimSource};
use polyflow_bench::sweep::{self, CellOutcome};
use polyflow_bench::{pool, PreparedWorkload};
use polyflow_sim::{Bucket, MachineConfig};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batch execution (0 = [`pool::resolve_jobs`]).
    pub jobs: usize,
    /// Admission-queue bound: requests beyond this are shed with
    /// [`ErrorKind::Overloaded`].
    pub queue_capacity: usize,
    /// Largest number of queued requests drained into one batch.
    pub batch_max: usize,
    /// How long the batcher lingers after the first queued request to
    /// coalesce followers into the same batch. Zero batches whatever is
    /// already queued without waiting.
    pub batch_window: Duration,
    /// Per-request watchdog: the `max_cycles` budget applied to requests
    /// that do not set their own.
    pub default_max_cycles: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Persistent cache tier: the journal directory (`--cache-dir`).
    /// `None` keeps the cache purely in memory (the pre-journal
    /// behavior).
    pub cache_dir: Option<PathBuf>,
    /// Journal compaction threshold in bytes (see [`Journal`]).
    pub journal_rotate_bytes: u64,
    /// Upper bound on a request's `deadline_ms` — longer asks are
    /// silently capped here (`--max-deadline`).
    pub max_deadline: Duration,
    /// Slow-client write watchdog: a response write that cannot make
    /// progress for this long forfeits the connection, so one stuck
    /// reader cannot wedge a handler (or the drain).
    pub write_timeout: Duration,
    /// Longest accepted request line in bytes; longer lines get a typed
    /// `bad_request` instead of an unbounded buffer.
    pub max_request_line: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: 0,
            queue_capacity: 64,
            batch_max: 32,
            batch_window: Duration::from_millis(2),
            default_max_cycles: 50_000_000,
            cache_capacity: 1024,
            cache_dir: None,
            journal_rotate_bytes: 8 << 20,
            max_deadline: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_request_line: 1 << 20,
        }
    }
}

/// A client's reply: the rendered response line (shared, newline-free)
/// or a typed error.
pub type Reply = Result<Arc<str>, ServeError>;

/// What [`Service::enqueue`] hands back.
#[derive(Debug)]
pub enum Ticket {
    /// Served from the cache; no queueing happened.
    Ready(Arc<str>),
    /// Admitted; the reply arrives on this receiver when the batch
    /// containing the request completes.
    Admitted(Receiver<Reply>),
}

struct Pending {
    key: CacheKey,
    req: SimRequest,
    reply: Sender<Reply>,
    /// Absolute expiry, when the request asked for one. The batcher
    /// drops expired entries before dedup so a dead request never burns
    /// pool time.
    deadline: Option<Instant>,
}

/// Snapshot of the service's observability counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Requests currently queued (admitted, not yet batched).
    pub queue_depth: u64,
    /// The admission bound.
    pub queue_capacity: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Simulation requests admitted or cache-served.
    pub submitted: u64,
    /// Requests answered successfully (cache hits included).
    pub completed: u64,
    /// Requests answered with a simulation failure.
    pub failed: u64,
    /// Requests that expired before a result could be delivered
    /// (dropped in the queue or timed out while waiting).
    pub deadline_exceeded: u64,
    /// Typed retry-worthy rejections handed out (`overloaded` +
    /// `shutting_down`) — the server-side mirror of client retries.
    pub retry_after: u64,
    /// Batches executed.
    pub batches: u64,
    /// Unique cells simulated across all batches.
    pub batched_cells: u64,
    /// Milliseconds since the service was built.
    pub uptime_ms: u64,
    /// Cache entries replayed from the journal at boot.
    pub warm_start: u64,
    /// Current on-disk size of the cache journal in bytes (0 when the
    /// persistent tier is disabled).
    pub journal_bytes: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Successful cells contributing to `account_totals`.
    pub account_cells: u64,
    /// Cycle-slot totals summed over every successful cell, by
    /// [`Bucket::ALL`] order — the served counterpart of the figure
    /// binaries' per-run cycle accounts.
    pub account_totals: [u64; Bucket::ALL.len()],
}

impl ServiceStats {
    /// Renders the stats as the single-line `stats` response body.
    pub fn to_json(&self) -> String {
        let mut account = String::new();
        account.push_str(&format!("{{\"cells\":{}", self.account_cells));
        for (b, total) in Bucket::ALL.iter().zip(&self.account_totals) {
            account.push_str(&format!(",\"{}\":{total}", b.label()));
        }
        account.push('}');
        format!(
            "{{\"ok\":true,\"stats\":{{\
             \"uptime_ms\":{},\
             \"queue\":{{\"depth\":{},\"capacity\":{},\"shed\":{}}},\
             \"requests\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\
             \"deadline_exceeded\":{},\"retry_after\":{}}},\
             \"batches\":{{\"count\":{},\"cells\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"inserts\":{},\"entries\":{},\
             \"warm_start\":{},\"journal_bytes\":{}}},\
             \"account\":{account}}}}}",
            self.uptime_ms,
            self.queue_depth,
            self.queue_capacity,
            self.shed,
            self.submitted,
            self.completed,
            self.failed,
            self.deadline_exceeded,
            self.retry_after,
            self.batches,
            self.batched_cells,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.inserts,
            self.cache.entries,
            self.warm_start,
            self.journal_bytes,
        )
    }
}

#[derive(Default)]
struct AccountAgg {
    cells: u64,
    totals: [u64; Bucket::ALL.len()],
}

/// The transport-independent simulation service.
pub struct Service {
    config: ServiceConfig,
    jobs: usize,
    cache: ResultCache,
    /// The persistent tier, when `cache_dir` is set and the journal
    /// opened cleanly. A journal that cannot open degrades the service
    /// to memory-only (logged to stderr) rather than refusing to boot:
    /// losing warmth is survivable, refusing traffic is not.
    journal: Option<Journal>,
    started: Instant,
    warm_start: u64,
    registry: Mutex<HashMap<String, Arc<PreparedWorkload>>>,
    queue: Mutex<VecDeque<Pending>>,
    notify: Condvar,
    shutdown: AtomicBool,
    shed: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadlines: AtomicU64,
    retry_after: AtomicU64,
    batches: AtomicU64,
    batched_cells: AtomicU64,
    account: Mutex<AccountAgg>,
    batcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Transport completion hook: called after every batch so a parked
    /// reactor wakes and delivers the replies (see
    /// [`crate::reactor::Reactor`]). `None` for transports that block
    /// per-request.
    notifier: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Service {
    /// Builds a service. The batcher is **not** running yet — call
    /// [`Service::start`] — so admitted requests queue up but nothing
    /// executes (tests use this to pin down admission behavior).
    pub fn new(config: ServiceConfig) -> Arc<Service> {
        let jobs = if config.jobs == 0 {
            pool::resolve_jobs()
        } else {
            config.jobs
        };
        let cache = ResultCache::new(config.cache_capacity);
        let mut warm_start = 0u64;
        let journal = match &config.cache_dir {
            None => None,
            Some(dir) => match Journal::open(dir, config.journal_rotate_bytes) {
                Ok((journal, entries, report)) => {
                    for (key, value) in entries {
                        cache.insert(key, Arc::from(value.as_str()));
                        warm_start += 1;
                    }
                    if report.torn_tails > 0 || report.incompatible > 0 {
                        eprintln!(
                            "[serve] cache journal recovered with {} torn tail(s), \
                             {} incompatible segment(s) skipped",
                            report.torn_tails, report.incompatible
                        );
                    }
                    Some(journal)
                }
                Err(e) => {
                    eprintln!(
                        "[serve] cache journal disabled: cannot open {}: {e}",
                        dir.display()
                    );
                    None
                }
            },
        };
        Arc::new(Service {
            jobs,
            cache,
            journal,
            started: Instant::now(),
            warm_start,
            config,
            registry: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadlines: AtomicU64::new(0),
            retry_after: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_cells: AtomicU64::new(0),
            account: Mutex::new(AccountAgg::default()),
            batcher: Mutex::new(None),
            notifier: Mutex::new(None),
        })
    }

    /// Spawns the batcher thread. Idempotent.
    pub fn start(self: &Arc<Service>) {
        let mut slot = self.batcher.lock().unwrap();
        if slot.is_none() {
            let svc = Arc::clone(self);
            *slot = Some(
                std::thread::Builder::new()
                    .name("serve-batcher".into())
                    .spawn(move || svc.batch_loop())
                    .expect("spawn batcher"),
            );
        }
    }

    /// Registers the transport completion hook (replacing any previous
    /// one): it runs after every executed batch and when the batcher
    /// exits, so an event-driven transport learns "replies may be
    /// waiting" without polling.
    pub fn set_notifier(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.notifier.lock().unwrap() = Some(Box::new(f));
    }

    fn notify_transport(&self) {
        if let Some(f) = &*self.notifier.lock().unwrap() {
            f();
        }
    }

    /// Counts a request whose deadline expired while its reply was in
    /// flight. `submit` counts its own timeouts; transports that wait
    /// via [`Ticket::Admitted`] report theirs here so the
    /// `deadline_exceeded` stat stays complete.
    pub fn record_deadline_exceeded(&self) {
        self.deadlines.fetch_add(1, Ordering::Relaxed);
    }

    /// The per-request default cycle budget (for request parsing).
    pub fn default_max_cycles(&self) -> u64 {
        self.config.default_max_cycles
    }

    /// The tunables this service was built with (transports read the
    /// line bound and write watchdog from here).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The request's effective absolute deadline: its `deadline_ms`
    /// capped by the server-side [`ServiceConfig::max_deadline`].
    fn deadline_of(&self, req: &SimRequest) -> Option<Instant> {
        req.deadline_ms.map(|ms| {
            let asked = Duration::from_millis(ms);
            Instant::now() + asked.min(self.config.max_deadline)
        })
    }

    /// Validates admission for one request: cache first, then the
    /// bounded queue. Never blocks on simulation work.
    pub fn enqueue(&self, req: SimRequest) -> Result<Ticket, ServeError> {
        if self.shutdown.load(Ordering::SeqCst) {
            self.retry_after.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::new(
                ErrorKind::ShuttingDown,
                "server is draining; no new work accepted",
            ));
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        // The workload component is the program's content fingerprint,
        // not its name: a bundled benchmark requested by name and the
        // same program uploaded as assembly share one cache entry.
        let key = CacheKey {
            workload: req.fingerprint(),
            policy: req.policy_label(),
            config: req.config.fingerprint(),
        };
        if let Some(hit) = self.cache.get(&key) {
            self.completed.fetch_add(1, Ordering::Relaxed);
            return Ok(Ticket::Ready(hit));
        }
        let deadline = self.deadline_of(&req);
        let (tx, rx) = channel();
        {
            let mut q = self.queue.lock().unwrap();
            if q.len() >= self.config.queue_capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                self.retry_after.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    ErrorKind::Overloaded,
                    format!("admission queue full ({} pending); retry later", q.len()),
                ));
            }
            q.push_back(Pending {
                key,
                req,
                reply: tx,
                deadline,
            });
        }
        self.notify.notify_all();
        Ok(Ticket::Admitted(rx))
    }

    /// [`enqueue`](Service::enqueue) and wait for the reply. A request
    /// carrying a deadline waits at most that long: the caller gets a
    /// typed [`ErrorKind::DeadlineExceeded`] the moment the deadline
    /// passes, even if the cell is still grinding in the pool (the
    /// result, if it ever lands, still populates the cache — only the
    /// waiter gives up).
    pub fn submit(&self, req: SimRequest) -> Reply {
        let deadline = self.deadline_of(&req);
        match self.enqueue(req)? {
            Ticket::Ready(line) => Ok(line),
            Ticket::Admitted(rx) => {
                let recv = match deadline {
                    None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    Some(d) => rx.recv_timeout(d.saturating_duration_since(Instant::now())),
                };
                match recv {
                    Ok(reply) => reply,
                    Err(RecvTimeoutError::Timeout) => {
                        self.deadlines.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::new(
                            ErrorKind::DeadlineExceeded,
                            "deadline expired before the result was ready",
                        ))
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(ServeError::new(
                        ErrorKind::Internal,
                        "service stopped before replying",
                    )),
                }
            }
        }
    }

    /// Runs (or cache-serves) one `verify` request: the lint pass over
    /// the request's program, answered synchronously on the connection
    /// handler's thread — lint is milliseconds of dataflow solving, not
    /// a simulation, so it neither queues nor batches.
    ///
    /// The rendered report is a pure function of the program bytes, so
    /// it shares the [`ResultCache`] keyed by the program fingerprint
    /// (`policy` pinned to `"verify"` keeps the namespace disjoint from
    /// simulation cells). A panic inside the lint pass — a program the
    /// builder accepts but an analysis chokes on — is caught and
    /// answered as a typed internal error, exactly like a simulation
    /// panic.
    pub fn verify_program(&self, req: crate::verify::VerifyRequest) -> Reply {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::new(
                ErrorKind::ShuttingDown,
                "server is draining; no new work accepted",
            ));
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let key = CacheKey {
            workload: req.fingerprint.clone(),
            policy: "verify".to_string(),
            config: String::new(),
        };
        if let Some(hit) = self.cache.get(&key) {
            self.completed.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let jobs = self.jobs;
        let line = catch_unwind(AssertUnwindSafe(|| {
            crate::verify::run(&req.program, &req.fingerprint, jobs)
        }))
        .map_err(|_| {
            self.failed.fetch_add(1, Ordering::Relaxed);
            ServeError::new(ErrorKind::Internal, "lint pass died on this program")
        })?;
        let line = self.store(key, Arc::from(line.as_str()));
        self.completed.fetch_add(1, Ordering::Relaxed);
        Ok(line)
    }

    /// Inserts a rendered response into the cache and, when the
    /// persistent tier is on, appends it to the journal (compacting when
    /// the journal has grown past its threshold). Journal I/O errors are
    /// counted inside [`Journal`] and never fail the request — the
    /// in-memory cache remains authoritative for this process's
    /// lifetime.
    fn store(&self, key: CacheKey, line: Arc<str>) -> Arc<str> {
        let line = self.cache.insert(key.clone(), line);
        if let Some(j) = &self.journal {
            let _ = j.append(&key, &line);
            if j.wants_compaction() {
                let _ = j.compact(&self.cache.snapshot());
            }
        }
        line
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let account = self.account.lock().unwrap();
        ServiceStats {
            queue_depth: self.queue.lock().unwrap().len() as u64,
            queue_capacity: self.config.queue_capacity as u64,
            shed: self.shed.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadlines.load(Ordering::Relaxed),
            retry_after: self.retry_after.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_cells: self.batched_cells.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            warm_start: self.warm_start,
            journal_bytes: self.journal.as_ref().map_or(0, |j| j.size_bytes()),
            cache: self.cache.stats(),
            account_cells: account.cells,
            account_totals: account.totals,
        }
    }

    /// Stops admitting simulation work. Already-queued requests still
    /// drain; the batcher exits once the queue is empty.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.notify.notify_all();
    }

    /// True once [`begin_shutdown`](Service::begin_shutdown) was called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// [`begin_shutdown`](Service::begin_shutdown), then wait for the
    /// batcher to drain the queue and exit.
    pub fn shutdown_and_join(&self) {
        self.begin_shutdown();
        if let Some(handle) = self.batcher.lock().unwrap().take() {
            let _ = handle.join();
        }
        // Flush the journal so everything computed during the drain
        // (including the batch that was in flight when SIGTERM landed)
        // survives the restart.
        if let Some(j) = &self.journal {
            j.sync();
        }
    }

    fn batch_loop(self: Arc<Service>) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Queue drained and no new work: done. One last
                        // notify so a reactor waiting on in-flight
                        // replies sees the hangup promptly.
                        self.notify_transport();
                        return;
                    }
                    q = self.notify.wait(q).unwrap();
                }
                // Linger briefly so a burst coalesces into one batch
                // (unless the batch is already full or we are draining).
                if !self.config.batch_window.is_zero() {
                    let deadline = Instant::now() + self.config.batch_window;
                    while q.len() < self.config.batch_max && !self.shutdown.load(Ordering::SeqCst) {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, timeout) = self.notify.wait_timeout(q, deadline - now).unwrap();
                        q = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
                let take = q.len().min(self.config.batch_max);
                q.drain(..take).collect::<Vec<Pending>>()
            };
            self.execute_batch(batch);
            // Replies (including expired-drop and shed paths) landed on
            // their channels; wake the transport to deliver them.
            self.notify_transport();
        }
    }

    /// Runs one drained batch: dedup by key, re-check the cache, execute
    /// the remaining unique cells as one pool dispatch, render + cache +
    /// reply.
    fn execute_batch(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);

        // Expired requests are dropped here, before dedup and before any
        // pool time is spent on them: the waiter has already (or will
        // momentarily) time out in `submit`, so simulating the cell for
        // it alone would be pure waste. (A cell that also has live
        // waiters still runs — under dedup the expired waiter rides
        // along for free.)
        let now = Instant::now();
        let batch: Vec<Pending> = batch
            .into_iter()
            .filter(|p| match p.deadline {
                Some(d) if now >= d => {
                    self.deadlines.fetch_add(1, Ordering::Relaxed);
                    let _ = p.reply.send(Err(ServeError::new(
                        ErrorKind::DeadlineExceeded,
                        "deadline expired while queued",
                    )));
                    false
                }
                _ => true,
            })
            .collect();
        if batch.is_empty() {
            return;
        }

        // Group waiters by cell, preserving first-seen order.
        let mut order: Vec<(CacheKey, SimRequest, Vec<Sender<Reply>>)> = Vec::new();
        let mut index: HashMap<CacheKey, usize> = HashMap::new();
        for p in batch {
            match index.get(&p.key) {
                Some(&i) => order[i].2.push(p.reply),
                None => {
                    index.insert(p.key.clone(), order.len());
                    order.push((p.key, p.req, vec![p.reply]));
                }
            }
        }

        // A key may have been filled between admission and batching.
        let mut work: Vec<(CacheKey, SimRequest, Vec<Sender<Reply>>)> = Vec::new();
        for (key, req, waiters) in order {
            match self.cache.get(&key) {
                Some(hit) => self.reply_ok(&waiters, hit),
                None => work.push((key, req, waiters)),
            }
        }
        if work.is_empty() {
            return;
        }
        self.batched_cells
            .fetch_add(work.len() as u64, Ordering::Relaxed);

        // Resolve workloads (preparing on first touch). Preparation
        // failures (a workload that cannot execute) come back as typed
        // internal errors, not a dead batcher.
        let mut items: Vec<(Arc<PreparedWorkload>, (sweep::Cell, MachineConfig))> = Vec::new();
        let mut runnable: Vec<(CacheKey, SimRequest, Vec<Sender<Reply>>)> = Vec::new();
        for (key, req, waiters) in work {
            match self.prepared_workload(&key.workload, &req.source) {
                Ok(w) => {
                    items.push((w, (req.cell, req.config.clone())));
                    runnable.push((key, req, waiters));
                }
                Err(e) => {
                    self.failed
                        .fetch_add(waiters.len() as u64, Ordering::Relaxed);
                    self.reply_err(&waiters, e);
                }
            }
        }
        if items.is_empty() {
            return;
        }

        let (outcomes, _report) = sweep::run_batch_with(
            "serve",
            &items,
            self.jobs,
            |w, (cell, cfg), scratch| sweep::run_cell_with_config(w, *cell, cfg, scratch),
            |(cell, _)| cell.label(),
        );

        for ((key, req, waiters), outcome) in runnable.into_iter().zip(outcomes) {
            match outcome {
                CellOutcome::Ok(result) => {
                    {
                        let mut agg = self.account.lock().unwrap();
                        agg.cells += 1;
                        for b in Bucket::ALL {
                            agg.totals[b.index()] += result.account.bucket(b);
                        }
                    }
                    let line = crate::protocol::ok_response(
                        req.workload_label(),
                        &req.policy_label(),
                        &json::compact(&result.to_json()),
                    );
                    let line = self.store(key, Arc::from(line.as_str()));
                    self.reply_ok(&waiters, line);
                }
                CellOutcome::Failed { payload, .. } => {
                    self.failed
                        .fetch_add(waiters.len() as u64, Ordering::Relaxed);
                    self.reply_err(&waiters, ServeError::new(ErrorKind::SimFailed, payload));
                }
            }
        }
    }

    fn reply_ok(&self, waiters: &[Sender<Reply>], line: Arc<str>) {
        self.completed
            .fetch_add(waiters.len() as u64, Ordering::Relaxed);
        for w in waiters {
            let _ = w.send(Ok(Arc::clone(&line))); // receiver may have hung up
        }
    }

    fn reply_err(&self, waiters: &[Sender<Reply>], e: ServeError) {
        for w in waiters {
            let _ = w.send(Err(e.clone()));
        }
    }

    /// Resolves a request's program to a prepared workload, keyed by the
    /// program fingerprint — so an uploaded copy of a bundled benchmark
    /// reuses the trace and analysis prepared for the name (and vice
    /// versa). An uploaded program that faults or never halts is the
    /// client's mistake ([`ErrorKind::SimFailed`]); a bundled one that
    /// does is ours ([`ErrorKind::Internal`]).
    fn prepared_workload(
        &self,
        fingerprint: &str,
        source: &SimSource,
    ) -> Result<Arc<PreparedWorkload>, ServeError> {
        let mut reg = self.registry.lock().unwrap();
        if let Some(w) = reg.get(fingerprint) {
            return Ok(Arc::clone(w));
        }
        let (workload, fail_kind) = match source {
            SimSource::Bundled(name) => {
                let w = polyflow_workloads::by_name(name).ok_or_else(|| {
                    ServeError::new(
                        ErrorKind::Internal,
                        format!("workload `{name}` vanished from the bundle"),
                    )
                })?;
                (w, ErrorKind::Internal)
            }
            SimSource::Uploaded(w) => ((**w).clone(), ErrorKind::SimFailed),
        };
        let prepared = catch_unwind(AssertUnwindSafe(|| PreparedWorkload::try_prepare(workload)))
            .unwrap_or_else(|_| Err("workload panicked during preparation".to_string()))
            .map_err(|e| ServeError::new(fail_kind, e))?;
        let arc = Arc::new(prepared);
        reg.insert(fingerprint.to_string(), Arc::clone(&arc));
        Ok(arc)
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("jobs", &self.jobs)
            .field("queue_capacity", &self.config.queue_capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Request};

    fn sim_request(workload: &str, policy: &str, max_cycles: u64) -> SimRequest {
        let line = format!(
            "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
             \"config\":{{\"max_cycles\":{max_cycles}}}}}"
        );
        match parse_request(&line, u64::MAX).expect("valid request") {
            Request::Simulate(r) => *r,
            _ => unreachable!(),
        }
    }

    /// The K+1-th concurrent request gets a typed `Overloaded` rejection
    /// — no hang, no panic. The batcher is deliberately not started, so
    /// the queue cannot drain under us.
    #[test]
    fn overload_sheds_with_typed_error() {
        let svc = Service::new(ServiceConfig {
            queue_capacity: 3,
            ..ServiceConfig::default()
        });
        for i in 0..3 {
            match svc.enqueue(sim_request("gzip", "postdoms", 1000 + i)) {
                Ok(Ticket::Admitted(_)) => {}
                other => panic!("request {i} should be admitted, got {:?}", err_of(other)),
            }
        }
        let e = match svc.enqueue(sim_request("gzip", "postdoms", 9999)) {
            Err(e) => e,
            Ok(_) => panic!("queue is full; the 4th request must be shed"),
        };
        assert_eq!(e.kind, ErrorKind::Overloaded);
        let s = svc.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.queue_depth, 3);
    }

    fn err_of(t: Result<Ticket, ServeError>) -> Option<ServeError> {
        t.err()
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let svc = Service::new(ServiceConfig::default());
        svc.begin_shutdown();
        let e = svc
            .enqueue(sim_request("gzip", "postdoms", 1000))
            .expect_err("draining service takes no new work");
        assert_eq!(e.kind, ErrorKind::ShuttingDown);
    }

    /// An uploaded program that never halts within its window is the
    /// client's mistake: a typed `sim_failed` reply, not a dead batcher.
    /// (The tiny `window` pragma keeps the preparation attempt cheap.)
    #[test]
    fn non_halting_upload_is_a_typed_sim_failure() {
        let asm = "; window: 10_000\nfn main {\nspin:\n    j spin\n}";
        let line = format!(
            "{{\"program\":\"{}\",\"config\":{{\"max_cycles\":1000}}}}",
            crate::json::escape(asm)
        );
        let req = match parse_request(&line, u64::MAX).expect("valid request") {
            Request::Simulate(r) => *r,
            _ => unreachable!(),
        };
        let svc = Service::new(ServiceConfig::default());
        svc.start();
        let e = svc.submit(req).expect_err("spin loop cannot prepare");
        assert_eq!(e.kind, ErrorKind::SimFailed);
        assert!(e.message.contains("did not halt"), "{e}");
        svc.shutdown_and_join();
    }

    fn sim_request_with(workload: &str, policy: &str, max_cycles: u64, extra: &str) -> SimRequest {
        let line = format!(
            "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
             \"config\":{{\"max_cycles\":{max_cycles}}}{extra}}}"
        );
        match parse_request(&line, u64::MAX).expect("valid request") {
            Request::Simulate(r) => *r,
            _ => unreachable!(),
        }
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::AtomicU32;
            static NONCE: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "polyflow-svc-{tag}-{}-{}",
                std::process::id(),
                NONCE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A queued request whose deadline passes before the batcher gets to
    /// it is answered with a typed `deadline_exceeded`, and the batcher
    /// never burns a cell on it. The batcher is started only *after* the
    /// deadline has already expired, so the drop-in-queue path (not the
    /// submit timeout) is what fires first on the batcher side.
    #[test]
    fn expired_request_is_dropped_before_the_pool() {
        let svc = Service::new(ServiceConfig::default());
        let req = sim_request_with("gzip", "postdoms", 100_000, ",\"deadline_ms\":1");
        let rx = match svc.enqueue(req).expect("admitted") {
            Ticket::Admitted(rx) => rx,
            Ticket::Ready(_) => panic!("cold cache cannot be ready"),
        };
        std::thread::sleep(Duration::from_millis(20));
        svc.start();
        let reply = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("batcher answers expired requests");
        let e = reply.expect_err("expired request gets a typed error");
        assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
        svc.shutdown_and_join();
        let s = svc.stats();
        assert_eq!(s.batched_cells, 0, "no pool time for a dead request");
        assert!(s.deadline_exceeded >= 1);
    }

    /// `submit` with a deadline gives up waiting when the deadline
    /// passes — here the batcher is simply never started, the bluntest
    /// possible stall.
    #[test]
    fn submit_times_out_at_its_deadline() {
        let svc = Service::new(ServiceConfig::default());
        let req = sim_request_with("gzip", "postdoms", 100_000, ",\"deadline_ms\":30");
        let t0 = Instant::now();
        let e = svc.submit(req).expect_err("no batcher, must time out");
        assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timed out promptly, not hung"
        );
        assert!(svc.stats().deadline_exceeded >= 1);
    }

    /// Typed retry-worthy rejections are counted: shedding and draining
    /// both bump `retry_after`.
    #[test]
    fn retry_after_counts_shed_and_draining() {
        let svc = Service::new(ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        assert!(svc.enqueue(sim_request("gzip", "postdoms", 1000)).is_ok());
        let _ = svc.enqueue(sim_request("gzip", "postdoms", 2000));
        svc.begin_shutdown();
        let _ = svc.enqueue(sim_request("gzip", "postdoms", 3000));
        assert_eq!(svc.stats().retry_after, 2);
    }

    /// Populate through one service, reopen a second on the same
    /// `cache_dir`: the second boots warm and serves the very same
    /// bytes without batching anything.
    #[test]
    fn warm_start_replays_the_journal() {
        let dir = TempDir::new("warm");
        let config = ServiceConfig {
            cache_dir: Some(dir.0.clone()),
            ..ServiceConfig::default()
        };
        let first = Service::new(config.clone());
        first.start();
        let line = first
            .submit(sim_request("gzip", "postdoms", 200_000))
            .expect("cold run succeeds");
        first.shutdown_and_join();
        drop(first);

        let second = Service::new(config);
        assert_eq!(second.stats().warm_start, 1, "one entry replayed");
        assert!(second.stats().journal_bytes > 0);
        // No batcher started: only the cache can answer.
        match second
            .enqueue(sim_request("gzip", "postdoms", 200_000))
            .expect("admitted or ready")
        {
            Ticket::Ready(warm) => assert_eq!(&*warm, &*line, "byte-identical"),
            Ticket::Admitted(_) => panic!("warm entry must be served from cache"),
        }
        assert_eq!(second.stats().batched_cells, 0);
    }

    #[test]
    fn stats_json_is_single_line_and_parses() {
        let svc = Service::new(ServiceConfig::default());
        let line = svc.stats().to_json();
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).expect("stats JSON parses");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let stats = v.get("stats").unwrap();
        assert_eq!(
            stats
                .get("queue")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_u64(),
            Some(64)
        );
        assert!(stats.get("account").unwrap().get("retire").is_some());
    }
}
