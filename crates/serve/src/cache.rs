//! The sharded LRU result cache.
//!
//! Identical requests are served without re-running the simulator: a
//! completed run's rendered [`SimResult`] JSON is stored under
//! `(workload, config fingerprint, policy)` and handed back as a cheap
//! `Arc<str>` clone — byte-identical to the freshly computed response by
//! construction, so cache hits are invisible to the determinism
//! guarantee.
//!
//! Keying: [`MachineConfig::fingerprint`] covers every semantic config
//! field, strictly refining [`MachineConfig::predictor_key`] — two
//! requests whose configs share a predictor key (and therefore share a
//! `PreparedTrace`) still cache separately whenever any field that can
//! change the result differs. The policy must be part of the key too:
//! the baseline and every spawn policy run the same workload under
//! fingerprint-distinct configs *or* the same config with different
//! spawn tables.
//!
//! The map is split into [`SHARDS`] shards, each behind its own mutex,
//! hashed by key, so concurrent connection handlers do not serialize on
//! one lock. Eviction is LRU per shard (a global LRU would need a global
//! lock); capacity is divided evenly across shards.
//!
//! [`SimResult`]: polyflow_sim::SimResult
//! [`MachineConfig::fingerprint`]: polyflow_sim::MachineConfig::fingerprint
//! [`MachineConfig::predictor_key`]: polyflow_sim::MachineConfig::predictor_key

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A result-cache key: one simulation cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Workload name.
    pub workload: String,
    /// Policy label (the protocol's `policy` field: `superscalar`,
    /// `loop`, …, `postdoms`, `rec_pred`).
    pub policy: String,
    /// [`MachineConfig::fingerprint`] of the effective configuration.
    ///
    /// [`MachineConfig::fingerprint`]: polyflow_sim::MachineConfig::fingerprint
    pub config: String,
}

/// Cache shard count (power of two; shard = key hash masked).
pub const SHARDS: usize = 8;

/// Monotone per-shard LRU clock plus the entries.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<CacheKey, (Arc<str>, u64)>,
    clock: u64,
}

/// Cache statistics snapshot (monotone counters since process start,
/// except `entries` which is the current population).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity (not overwrites).
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Current number of cached results.
    pub entries: u64,
}

/// A sharded LRU map from [`CacheKey`] to rendered result JSON.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (rounded up to a
    /// multiple of [`SHARDS`]; a zero capacity disables caching — every
    /// lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.entries.get_mut(key) {
            Some((v, used)) => {
                *used = clock;
                let v = Arc::clone(v);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used entry if it is full. Returns the stored value (callers keep
    /// serving the `Arc` they inserted).
    pub fn insert(&self, key: CacheKey, value: Arc<str>) -> Arc<str> {
        if self.per_shard_capacity == 0 {
            return value;
        }
        let mut shard = self.shard(&key).lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.per_shard_capacity {
            if let Some(lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        shard.entries.insert(key, (Arc::clone(&value), clock));
        value
    }

    /// The live entries, least-recently-used first within each shard
    /// (shards in index order). This is the compaction snapshot: writing
    /// it back to the journal in this order makes a warm start replay
    /// recency-faithfully per shard. Deterministic for a given cache
    /// state.
    pub fn snapshot(&self) -> Vec<(CacheKey, Arc<str>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            let mut entries: Vec<(&CacheKey, &(Arc<str>, u64))> = shard.entries.iter().collect();
            entries.sort_by_key(|(_, (_, used))| *used);
            out.extend(
                entries
                    .into_iter()
                    .map(|(k, (v, _))| (k.clone(), Arc::clone(v))),
            );
        }
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().entries.len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> CacheKey {
        CacheKey {
            workload: format!("w{n}"),
            policy: "postdoms".to_string(),
            config: "cfg".to_string(),
        }
    }

    /// A single-shard cache so LRU order is directly observable.
    fn single_shard(capacity_per_shard: usize) -> ResultCache {
        let mut c = ResultCache::new(0);
        c.per_shard_capacity = capacity_per_shard;
        c.shards = vec![Mutex::new(Shard::default())];
        c
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = ResultCache::new(16);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), Arc::from("r1"));
        assert_eq!(c.get(&key(1)).as_deref(), Some("r1"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn lru_eviction_order() {
        let c = single_shard(3);
        for n in [1, 2, 3] {
            c.insert(key(n), Arc::from(format!("r{n}").as_str()));
        }
        // Touch 1 so 2 becomes the LRU, then overflow.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(4), Arc::from("r4"));
        assert!(c.get(&key(2)).is_none(), "2 was least recently used");
        for n in [1, 3, 4] {
            assert!(c.get(&key(n)).is_some(), "{n} must survive");
        }
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 3);

        // Continue evicting strictly in recency order: current recency
        // after the gets above is 1, 3, 4 (oldest first).
        c.insert(key(5), Arc::from("r5"));
        assert!(c.get(&key(1)).is_none(), "1 is next out");
        c.insert(key(6), Arc::from("r6"));
        assert!(c.get(&key(3)).is_none(), "then 3");
    }

    #[test]
    fn reinsert_refreshes_not_evicts() {
        let c = single_shard(2);
        c.insert(key(1), Arc::from("a"));
        c.insert(key(2), Arc::from("b"));
        c.insert(key(1), Arc::from("a2")); // refresh, no eviction
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)).as_deref(), Some("a2"));
        assert!(c.get(&key(2)).is_some());
    }

    #[test]
    fn snapshot_orders_lru_first() {
        let c = single_shard(8);
        for n in [1, 2, 3] {
            c.insert(key(n), Arc::from(format!("r{n}").as_str()));
        }
        c.get(&key(1)); // 1 becomes most recent
        let snap = c.snapshot();
        let order: Vec<String> = snap.iter().map(|(k, _)| k.workload.clone()).collect();
        assert_eq!(order, ["w2", "w3", "w1"]);
        assert_eq!(&*snap[2].1, "r1");
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c = ResultCache::new(0);
        c.insert(key(1), Arc::from("r1"));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn distinct_key_components_do_not_collide() {
        let c = ResultCache::new(64);
        let base = CacheKey {
            workload: "twolf".into(),
            policy: "postdoms".into(),
            config: "A".into(),
        };
        let by_policy = CacheKey {
            policy: "loop".into(),
            ..base.clone()
        };
        let by_config = CacheKey {
            config: "B".into(),
            ..base.clone()
        };
        c.insert(base.clone(), Arc::from("1"));
        c.insert(by_policy.clone(), Arc::from("2"));
        c.insert(by_config.clone(), Arc::from("3"));
        assert_eq!(c.get(&base).as_deref(), Some("1"));
        assert_eq!(c.get(&by_policy).as_deref(), Some("2"));
        assert_eq!(c.get(&by_config).as_deref(), Some("3"));
    }
}
