//! The sharding router: a consistent-hash ring over N serve backends,
//! with health checks, automatic ejection/readmission, failover, and
//! graceful draining.
//!
//! ```text
//!   clients ──► router ──(hash of cache key)──► backend #k
//!                 │                              ▲
//!                 ├── health checker (ping) ─────┘
//!                 └── stats: per-backend health + ring ownership
//! ```
//!
//! # Why hash the cache key
//!
//! Each backend keeps its own result cache keyed by
//! `(program fingerprint, policy, config fingerprint)` — see
//! [`crate::cache::CacheKey`]. The router hashes **exactly that tuple**
//! (rendered canonically by [`routing_key`]) onto the ring, so a given
//! cell always lands on the shard that already has it cached, no matter
//! which client asks, in which order, or through which router process.
//! Cache affinity is a routing concern only: correctness never depends
//! on it, because every backend computes byte-identical results for the
//! same cell (the standing served ≡ offline invariant). That is what
//! makes failover safe — a request re-routed to a non-owner backend
//! gets the same bytes, just colder.
//!
//! # The ring
//!
//! [`Ring`] places [`Ring::replicas`] virtual points per backend at
//! `fnv1a("{addr}#{i}")` on the u64 circle; a key is owned by the first
//! point clockwise from `fnv1a(key)`. Ejecting a backend removes only
//! its points, so keys owned by healthy backends never move (minimal
//! remapping), and readmission restores exactly the old assignment —
//! the map is a pure function of the live backend set.
//!
//! # Health
//!
//! An active checker pings every backend on a fixed cadence; a backend
//! is ejected after [`RouterConfig::eject_after`] consecutive failures
//! and readmitted after [`RouterConfig::readmit_after`] consecutive
//! successes. Forwarding failures also count toward ejection (passive
//! detection), so a SIGKILLed backend stops receiving traffic after at
//! most a couple of failed forwards, not a full check cycle.
//!
//! # Forwarding
//!
//! Replies are relayed **verbatim** — the router never re-renders a
//! backend's bytes, so the byte-identity invariant survives the extra
//! hop (integrity trailers included). A forward that fails (connection
//! error, or a retryable `overloaded`/`shutting_down` answer) fails
//! over around the ring to the next live backend; only when every
//! backend has been tried does the client get a router-local typed
//! `overloaded` error, which retrying clients handle.

use crate::journal::fnv1a;
use crate::protocol::{self, ErrorKind, Request, ServeError};
use crate::signal;
use std::io::{self, BufRead, BufReader, ErrorKind as IoKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Accept-loop poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-connection read timeout: how often an idle handler re-checks
/// the drain flag.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Tunables for one [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses, `host:port` each.
    pub backends: Vec<String>,
    /// Virtual points per backend on the ring.
    pub replicas: usize,
    /// Health-check cadence.
    pub check_interval: Duration,
    /// Consecutive failures (checks or forwards) before ejection.
    pub eject_after: u32,
    /// Consecutive successful checks before readmission.
    pub readmit_after: u32,
    /// Per-hop socket timeout for forwards and health checks.
    pub io_timeout: Duration,
    /// Must match the backends' `--max-cycles` default: the router
    /// parses requests with it to derive the same config fingerprint
    /// the backend will cache under.
    pub default_max_cycles: u64,
    /// Longest accepted request line (mirrors serve's `--max-line`).
    pub max_request_line: usize,
}

impl RouterConfig {
    /// Default policy over `backends`.
    pub fn new(backends: Vec<String>) -> RouterConfig {
        RouterConfig {
            backends,
            replicas: 100,
            check_interval: Duration::from_millis(250),
            eject_after: 2,
            readmit_after: 2,
            io_timeout: Duration::from_secs(30),
            default_max_cycles: 50_000_000,
            max_request_line: 1 << 20,
        }
    }
}

/// A consistent-hash ring: virtual points for each backend on the u64
/// circle. Construction is a pure function of the backend list, so
/// every router process (and every restart) builds the same map.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
    /// Virtual points per backend.
    pub replicas: usize,
}

/// Disperses an FNV-1a hash across the circle (the SplitMix64
/// finalizer). FNV alone has weak avalanche on near-identical inputs —
/// `host:7199#0` vs `host:7200#0` land close together, which skews
/// ownership badly at small replica counts.
fn spread(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Ring {
    /// Places `replicas` points per backend.
    pub fn new(backends: &[String], replicas: usize) -> Ring {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(backends.len() * replicas);
        for (idx, addr) in backends.iter().enumerate() {
            for r in 0..replicas {
                points.push((spread(fnv1a(format!("{addr}#{r}").as_bytes())), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: backends.len(),
            replicas,
        }
    }

    /// The backend owning `key` among those with `alive[idx]` true:
    /// the first live point clockwise from the key's hash. `None` when
    /// nothing is alive.
    pub fn shard_of(&self, key: &str, alive: &[bool]) -> Option<usize> {
        self.walk(key, alive).next()
    }

    /// Failover order for `key`: every live backend, starting at the
    /// owner and continuing clockwise, each backend once.
    pub fn walk<'a>(&'a self, key: &str, alive: &'a [bool]) -> impl Iterator<Item = usize> + 'a {
        let h = spread(fnv1a(key.as_bytes()));
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        let mut seen = vec![false; self.backends];
        (0..n).filter_map(move |off| {
            let (_, idx) = self.points[(start + off) % n];
            if alive.get(idx).copied().unwrap_or(false) && !seen[idx] {
                seen[idx] = true;
                Some(idx)
            } else {
                None
            }
        })
    }

    /// Share of the hash space each live backend owns, in permille
    /// (sums to ~1000). Ejected backends own zero; their arcs accrue
    /// to their clockwise successors.
    pub fn ownership_permille(&self, alive: &[bool]) -> Vec<u64> {
        let mut owned = vec![0u128; self.backends];
        let live: Vec<&(u64, usize)> = self
            .points
            .iter()
            .filter(|&&(_, idx)| alive.get(idx).copied().unwrap_or(false))
            .collect();
        if live.is_empty() {
            return vec![0; self.backends];
        }
        // Each point owns the arc from its predecessor (exclusive) to
        // itself (inclusive); the first point also owns the wrap.
        for (i, &&(p, idx)) in live.iter().enumerate() {
            let prev = if i == 0 {
                live[live.len() - 1].0
            } else {
                live[i - 1].0
            };
            let arc = p.wrapping_sub(prev);
            // A single live backend owns the whole circle (arc == 0
            // only in the one-point degenerate case).
            let arc = if live.len() == 1 { u64::MAX } else { arc };
            owned[idx] += arc as u128;
        }
        owned
            .into_iter()
            .map(|o| ((o * 1000) / (u64::MAX as u128)) as u64)
            .collect()
    }
}

/// The canonical routing key for a parsed request: exactly the tuple
/// the backend caches under, rendered as
/// `"{workload fingerprint}|{policy}|{config fingerprint}"` (verify
/// requests use the `verify` policy namespace and an empty config,
/// mirroring [`crate::service::Service::verify_program`]).
pub fn routing_key(req: &Request) -> Option<String> {
    match req {
        Request::Simulate(r) => Some(format!(
            "{}|{}|{}",
            r.fingerprint(),
            r.policy_label(),
            r.config.fingerprint()
        )),
        Request::Verify(r) => Some(format!("{}|verify|", r.fingerprint)),
        _ => None,
    }
}

/// Live state the router keeps per backend.
#[derive(Debug, Default)]
struct BackendState {
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    consecutive_successes: AtomicU32,
    forwarded: AtomicU64,
    failures: AtomicU64,
}

/// Router-wide counters.
#[derive(Debug, Default)]
struct RouterCounters {
    requests: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    exhausted: AtomicU64,
    local_errors: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

/// The shared routing core: ring, health table, counters. The TCP
/// front end and the health checker both hold an `Arc` of this.
pub struct Core {
    config: RouterConfig,
    ring: Ring,
    backends: Vec<BackendState>,
    counters: RouterCounters,
    started: Instant,
}

impl Core {
    /// Builds the core; all backends start healthy (the first check
    /// cycle corrects optimism within one interval).
    pub fn new(config: RouterConfig) -> Arc<Core> {
        let ring = Ring::new(&config.backends, config.replicas);
        let backends = config
            .backends
            .iter()
            .map(|_| {
                let b = BackendState::default();
                b.healthy.store(true, Ordering::SeqCst);
                b
            })
            .collect();
        Arc::new(Core {
            ring,
            backends,
            counters: RouterCounters::default(),
            started: Instant::now(),
            config,
        })
    }

    fn alive(&self) -> Vec<bool> {
        self.backends
            .iter()
            .map(|b| b.healthy.load(Ordering::SeqCst))
            .collect()
    }

    /// Times the router ejected a backend (CI asserts this moves when
    /// a backend is killed mid-run).
    pub fn ejections(&self) -> u64 {
        self.counters.ejections.load(Ordering::Relaxed)
    }

    fn record_failure(&self, idx: usize) {
        let b = &self.backends[idx];
        b.failures.fetch_add(1, Ordering::Relaxed);
        b.consecutive_successes.store(0, Ordering::SeqCst);
        let fails = b.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if fails >= self.config.eject_after && b.healthy.swap(false, Ordering::SeqCst) {
            self.counters.ejections.fetch_add(1, Ordering::Relaxed);
            eprintln!("[router] ejected {}", self.config.backends[idx]);
        }
    }

    fn record_success(&self, idx: usize) {
        let b = &self.backends[idx];
        b.consecutive_failures.store(0, Ordering::SeqCst);
        let okays = b.consecutive_successes.fetch_add(1, Ordering::SeqCst) + 1;
        if !b.healthy.load(Ordering::SeqCst)
            && okays >= self.config.readmit_after
            && !b.healthy.swap(true, Ordering::SeqCst)
        {
            self.counters.readmissions.fetch_add(1, Ordering::Relaxed);
            eprintln!("[router] readmitted {}", self.config.backends[idx]);
        }
    }

    /// One wire exchange with backend `idx`: connect, send `line`,
    /// read one newline-terminated reply (returned without the
    /// newline, otherwise verbatim).
    fn exchange(&self, idx: usize, line: &str) -> io::Result<String> {
        let stream = TcpStream::connect(&self.config.backends[idx])?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        let mut writer = stream.try_clone()?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply)?;
        match reply.pop() {
            Some('\n') => Ok(reply),
            _ => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "reply truncated before newline",
            )),
        }
    }

    /// True when the reply is a typed error worth failing over for
    /// (the backend is full or draining; another shard can answer).
    /// The trailer, when present, is stripped before parsing — our
    /// JSON parser rejects trailing bytes by design.
    fn is_retryable_reply(reply: &str) -> bool {
        let (body, _) = protocol::check_integrity_trailer(reply);
        let Ok(v) = crate::json::parse(body) else {
            return false;
        };
        if v.get("ok").and_then(|o| o.as_bool()) != Some(false) {
            return false;
        }
        matches!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str()),
            Some("overloaded") | Some("shutting_down")
        )
    }

    /// Routes one raw request line: pick the owner shard, forward, and
    /// on failure walk the ring. Returns the reply line to send to the
    /// client, always exactly one line.
    pub fn route(&self, raw: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let parsed = protocol::parse_request(raw, self.config.default_max_cycles);
        let key = match &parsed {
            Ok(Request::Ping) => {
                return "{\"ok\":true,\"pong\":true}".to_string();
            }
            Ok(Request::Stats) => return self.stats_json(),
            // `shutdown` is handled by the connection layer (it drains
            // the router, not the backends); `route` never sees it.
            Ok(Request::Shutdown) => {
                return "{\"ok\":true,\"draining\":true}".to_string();
            }
            Ok(req) => routing_key(req).expect("simulate/verify requests always have a key"),
            Err(e) => {
                self.counters.local_errors.fetch_add(1, Ordering::Relaxed);
                return local_error(raw, e);
            }
        };

        let alive = self.alive();
        let mut attempts = 0u32;
        for idx in self.ring.walk(&key, &alive) {
            if attempts > 0 {
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
            }
            attempts += 1;
            match self.exchange(idx, raw) {
                Ok(reply) if Core::is_retryable_reply(&reply) => {
                    // The backend is up but shedding or draining; its
                    // health state is its own business — try the next
                    // shard without marking it down.
                    continue;
                }
                Ok(reply) => {
                    self.record_success(idx);
                    self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                    self.backends[idx].forwarded.fetch_add(1, Ordering::Relaxed);
                    return reply;
                }
                Err(_) => {
                    self.record_failure(idx);
                    continue;
                }
            }
        }
        self.counters.exhausted.fetch_add(1, Ordering::Relaxed);
        let e = ServeError::new(
            ErrorKind::Overloaded,
            format!("no backend could answer ({attempts} tried); retry"),
        );
        local_error(raw, &e)
    }

    /// The router's `stats` reply: router counters, per-backend
    /// health + ring ownership, each live backend's own `stats`
    /// spliced in, and cross-backend totals.
    fn stats_json(&self) -> String {
        let alive = self.alive();
        let ownership = self.ring.ownership_permille(&alive);
        let c = &self.counters;
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"ok\":true,\"router\":{{\"uptime_ms\":{},\
             \"requests\":{},\"forwarded\":{},\"failovers\":{},\
             \"exhausted\":{},\"local_errors\":{},\
             \"ejections\":{},\"readmissions\":{},\"backends\":[",
            self.started.elapsed().as_millis(),
            c.requests.load(Ordering::Relaxed),
            c.forwarded.load(Ordering::Relaxed),
            c.failovers.load(Ordering::Relaxed),
            c.exhausted.load(Ordering::Relaxed),
            c.local_errors.load(Ordering::Relaxed),
            c.ejections.load(Ordering::Relaxed),
            c.readmissions.load(Ordering::Relaxed),
        ));
        let mut total_completed = 0u64;
        let mut total_cache_hits = 0u64;
        let mut healthy_count = 0u64;
        for (idx, addr) in self.config.backends.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let b = &self.backends[idx];
            let healthy = alive[idx];
            healthy_count += healthy as u64;
            // Fetch the backend's own stats (best-effort; an ejected
            // or unreachable backend reports null).
            let inner = if healthy {
                self.exchange(idx, "{\"verb\":\"stats\"}")
                    .ok()
                    .and_then(|r| extract_stats_object(&r))
            } else {
                None
            };
            if let Some(stats) = &inner {
                if let Ok(v) = crate::json::parse(stats) {
                    let req = v.get("requests");
                    total_completed += req
                        .and_then(|r| r.get("completed"))
                        .and_then(|x| x.as_u64())
                        .unwrap_or(0);
                    total_cache_hits += v
                        .get("cache")
                        .and_then(|ch| ch.get("hits"))
                        .and_then(|x| x.as_u64())
                        .unwrap_or(0);
                }
            }
            out.push_str(&format!(
                "{{\"addr\":\"{}\",\"healthy\":{},\
                 \"ownership_permille\":{},\"forwarded\":{},\"failures\":{},\
                 \"stats\":{}}}",
                crate::json::escape(addr),
                healthy,
                ownership[idx],
                b.forwarded.load(Ordering::Relaxed),
                b.failures.load(Ordering::Relaxed),
                inner.as_deref().unwrap_or("null"),
            ));
        }
        out.push_str(&format!(
            "],\"totals\":{{\"healthy\":{healthy_count},\
             \"completed\":{total_completed},\"cache_hits\":{total_cache_hits}}}}}}}"
        ));
        out
    }

    /// One health-check pass over every backend.
    fn check_backends(&self) {
        for idx in 0..self.backends.len() {
            match self.check_one(idx) {
                true => self.record_success(idx),
                false => self.record_failure(idx),
            }
        }
    }

    fn check_one(&self, idx: usize) -> bool {
        let ping = "{\"verb\":\"ping\"}";
        match self.exchange(idx, ping) {
            Ok(reply) => {
                let (body, _) = protocol::check_integrity_trailer(&reply);
                crate::json::parse(body)
                    .ok()
                    .and_then(|v| v.get("ok").and_then(|o| o.as_bool()))
                    == Some(true)
            }
            Err(_) => false,
        }
    }
}

/// Renders a router-local typed error, honoring the request's
/// `integrity` flag best-effort from the raw text (same rule the serve
/// transport applies to unparseable requests).
fn local_error(raw: &str, e: &ServeError) -> String {
    let body = protocol::error_response(e);
    if raw.contains("\"integrity\":true") {
        protocol::with_integrity_trailer(&body)
    } else {
        body
    }
}

/// Extracts the `stats` object from a backend's
/// `{"ok":true,"stats":{...}}` reply (our own renderer's exact shape;
/// anything else reports `None`).
fn extract_stats_object(reply: &str) -> Option<String> {
    let (body, _) = protocol::check_integrity_trailer(reply);
    let inner = body
        .strip_prefix("{\"ok\":true,\"stats\":")?
        .strip_suffix('}')?;
    crate::json::parse(inner).ok()?;
    Some(inner.to_string())
}

/// A running router: the core plus its TCP front end and health
/// checker. Connection handling is thread-per-connection — the router
/// holds no per-request simulation state, and its connection counts
/// are client-sized, not fleet-sized.
pub struct Router {
    core: Arc<Core>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    accept_handle: Option<thread::JoinHandle<()>>,
    checker_handle: Option<thread::JoinHandle<()>>,
}

impl Router {
    /// Binds `addr`, starts the accept loop and the health checker.
    pub fn spawn(addr: &str, config: RouterConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Core::new(config);
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicU64::new(0));

        let checker_handle = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("router-health".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) && !signal::requested() {
                        core.check_backends();
                        // Sleep in small slices so a drain is noticed
                        // promptly even with long check intervals.
                        let deadline = Instant::now() + core.config.check_interval;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::SeqCst) || signal::requested() {
                                return;
                            }
                            thread::sleep(ACCEPT_POLL);
                        }
                    }
                })
                .expect("spawn health checker")
        };

        let accept_handle = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || loop {
                    if stop.load(Ordering::SeqCst) || signal::requested() {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let core = Arc::clone(&core);
                            let stop = Arc::clone(&stop);
                            let conn_active = Arc::clone(&active);
                            active.fetch_add(1, Ordering::SeqCst);
                            let spawned = thread::Builder::new().name("router-conn".into()).spawn(
                                move || {
                                    handle_connection(stream, &core, &stop);
                                    conn_active.fetch_sub(1, Ordering::SeqCst);
                                },
                            );
                            if spawned.is_err() {
                                active.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        Err(e) if e.kind() == IoKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        Err(e) if e.kind() == IoKind::Interrupted => {}
                        Err(_) => thread::sleep(ACCEPT_POLL),
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Router {
            core,
            addr: bound,
            stop,
            active,
            accept_handle: Some(accept_handle),
            checker_handle: Some(checker_handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing core (tests inspect ejection counters directly).
    pub fn core(&self) -> &Arc<Core> {
        &self.core
    }

    /// True once a drain was requested.
    pub fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested()
    }

    /// Graceful drain: stop accepting, let handlers finish their
    /// in-flight request, stop the checker. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        while self.active.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        if let Some(h) = self.checker_handle.take() {
            let _ = h.join();
        }
    }

    /// Blocks until a drain is requested (SIGTERM/SIGINT or the
    /// `shutdown` verb), then drains. The `router` binary parks here.
    pub fn wait_for_shutdown(&mut self) {
        while !self.draining() {
            thread::sleep(ACCEPT_POLL);
        }
        self.shutdown();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one client connection until EOF, error, or drain — the same
/// line discipline as the serve transport (blank lines keep alive,
/// oversized lines get a typed reject-and-discard).
fn handle_connection(stream: TcpStream, core: &Arc<Core>, stop: &AtomicBool) {
    let max_line = core.config.max_request_line;
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let _ = writer.set_write_timeout(Some(core.config.io_timeout));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut skipping = false;
    loop {
        let allowance = ((max_line + 1).saturating_sub(buf.len()).max(1)) as u64;
        match (&mut reader).take(allowance).read_until(b'\n', &mut buf) {
            Ok(0) => {
                if !buf.is_empty() && !skipping {
                    let _ = respond(&mut writer, core, stop, &buf);
                }
                return;
            }
            Ok(_) if buf.ends_with(b"\n") => {
                if skipping {
                    skipping = false;
                } else if respond(&mut writer, core, stop, &buf).is_err() {
                    return;
                }
                buf.clear();
            }
            Ok(_) => {
                if skipping {
                    buf.clear();
                } else if buf.len() > max_line {
                    let e = ServeError::new(
                        ErrorKind::BadRequest,
                        format!("request line exceeds {max_line} bytes"),
                    );
                    if write_line(&mut writer, &protocol::error_response(&e)).is_err() {
                        return;
                    }
                    skipping = true;
                    buf.clear();
                }
            }
            Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {
                if stop.load(Ordering::SeqCst) || signal::requested() {
                    return;
                }
            }
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; `Err(())` closes the connection.
fn respond(
    writer: &mut TcpStream,
    core: &Arc<Core>,
    stop: &AtomicBool,
    raw: &[u8],
) -> Result<(), ()> {
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s,
        Err(_) => {
            let e = ServeError::new(ErrorKind::BadRequest, "request is not valid UTF-8");
            return write_line(writer, &protocol::error_response(&e));
        }
    };
    if line.trim().is_empty() {
        return Ok(());
    }
    // `shutdown` drains the *router* (backends keep serving other
    // routers); intercepted before routing.
    if matches!(
        protocol::parse_request(line, core.config.default_max_cycles),
        Ok(Request::Shutdown)
    ) {
        let _ = write_line(writer, "{\"ok\":true,\"draining\":true}");
        stop.store(true, Ordering::SeqCst);
        return Err(());
    }
    write_line(writer, &core.route(line))
}

fn write_line(writer: &mut TcpStream, line: &str) -> Result<(), ()> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    writer.write_all(&bytes).map_err(|_| ())?;
    writer.flush().map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{}:7199", i + 1)).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        // Shaped like real routing keys: fingerprint|policy|config.
        (0..n)
            .map(|i| {
                let i = i as u64;
                format!(
                    "prog{:04x}|postdoms|cfg{:02x}",
                    i * 2654435761 % 65536,
                    i % 7
                )
            })
            .collect()
    }

    /// Key→shard share stays bounded across 2, 3, and 8 backends: no
    /// backend owns more than 2× its fair share, none less than a
    /// third of it.
    #[test]
    fn distribution_is_balanced() {
        for n in [2usize, 3, 8] {
            let backends = addrs(n);
            let ring = Ring::new(&backends, 100);
            let alive = vec![true; n];
            let mut counts = vec![0u64; n];
            let keys = keys(4000);
            for k in &keys {
                counts[ring.shard_of(k, &alive).unwrap()] += 1;
            }
            let fair = keys.len() as u64 / n as u64;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    c <= fair * 2 && c >= fair / 3,
                    "{n} backends: backend {i} holds {c} of {} keys (fair {fair})",
                    keys.len()
                );
            }
        }
    }

    /// Ejecting one backend moves only that backend's keys; everything
    /// owned by a survivor keeps its shard.
    #[test]
    fn ejection_remaps_minimally() {
        let backends = addrs(5);
        let ring = Ring::new(&backends, 100);
        let all = vec![true; 5];
        let mut without2 = all.clone();
        without2[2] = false;
        let keys = keys(3000);
        let mut moved_from_survivor = 0;
        let mut reassigned = 0;
        for k in &keys {
            let before = ring.shard_of(k, &all).unwrap();
            let after = ring.shard_of(k, &without2).unwrap();
            if before == 2 {
                reassigned += 1;
                assert_ne!(after, 2, "ejected backend must not receive keys");
            } else if before != after {
                moved_from_survivor += 1;
            }
        }
        assert_eq!(
            moved_from_survivor, 0,
            "keys owned by live backends must not move on ejection"
        );
        assert!(reassigned > 0, "the ejected backend owned something");
        // Readmission restores the exact original map.
        for k in &keys {
            assert_eq!(
                ring.shard_of(k, &all),
                Ring::new(&backends, 100).shard_of(k, &all)
            );
        }
    }

    /// The key→shard map is a pure function of the backend list: a
    /// rebuilt ring (a restarted router) assigns every key the same
    /// shard, and an independently built ring from the same list too.
    #[test]
    fn assignment_is_deterministic_across_restarts() {
        let backends = addrs(4);
        let a = Ring::new(&backends, 100);
        let b = Ring::new(&backends, 100);
        let alive = vec![true; 4];
        for k in keys(2000) {
            assert_eq!(a.shard_of(&k, &alive), b.shard_of(&k, &alive), "key {k}");
        }
    }

    /// The failover walk visits every live backend exactly once,
    /// starting at the owner.
    #[test]
    fn walk_covers_all_live_backends_once() {
        let backends = addrs(4);
        let ring = Ring::new(&backends, 50);
        let mut alive = vec![true; 4];
        alive[1] = false;
        let order: Vec<usize> = ring.walk("somekey|postdoms|cfg", &alive).collect();
        assert_eq!(order.len(), 3, "every live backend appears");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "no backend repeats");
        assert!(!order.contains(&1), "dead backend is skipped");
        assert_eq!(
            order[0],
            ring.shard_of("somekey|postdoms|cfg", &alive).unwrap(),
            "walk starts at the owner"
        );
    }

    /// Ownership shares sum to the whole circle and track liveness.
    #[test]
    fn ownership_shares_are_sane() {
        let backends = addrs(3);
        let ring = Ring::new(&backends, 100);
        let shares = ring.ownership_permille(&[true, true, true]);
        let total: u64 = shares.iter().sum();
        assert!(
            (995..=1001).contains(&total),
            "shares sum to ~1000: {shares:?}"
        );
        for (i, &s) in shares.iter().enumerate() {
            assert!(s > 100, "backend {i} owns a visible share: {shares:?}");
        }
        let one_down = ring.ownership_permille(&[true, false, true]);
        assert_eq!(one_down[1], 0, "ejected backend owns nothing");
        let total: u64 = one_down.iter().sum();
        assert!((995..=1001).contains(&total), "survivors absorb the arc");
    }

    /// Router-local errors honor the request's integrity flag.
    #[test]
    fn local_errors_carry_the_trailer_when_asked() {
        let e = ServeError::new(ErrorKind::Overloaded, "no backend");
        let plain = local_error("{\"workload\":\"gzip\"}", &e);
        assert!(!plain.contains('\t'));
        let trailered = local_error("{\"workload\":\"gzip\",\"integrity\":true}", &e);
        let (_, ok) = protocol::check_integrity_trailer(&trailered);
        assert_eq!(ok, Some(true));
    }

    #[test]
    fn stats_object_extraction_round_trips() {
        let svc = crate::service::Service::new(crate::service::ServiceConfig::default());
        let reply = svc.stats().to_json();
        let inner = extract_stats_object(&reply).expect("extracts");
        let v = crate::json::parse(&inner).expect("inner object parses");
        assert!(v.get("queue").is_some());
        assert_eq!(extract_stats_object("{\"ok\":false}"), None);
    }
}
