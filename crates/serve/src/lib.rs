//! `polyflow-serve`: a long-running, deterministic simulation service.
//!
//! The figure binaries answer one question per process; this crate turns
//! the same engine into a server: newline-delimited JSON over TCP
//! ([`protocol`]), a sharded LRU result cache keyed by
//! `(workload, config fingerprint, policy)` ([`cache`]), bounded
//! admission with typed overload shedding, and a micro-batcher that
//! coalesces concurrent requests into single work-stealing-pool
//! dispatches ([`service`]) — all with **zero** external dependencies
//! (`std::net`, a hand-rolled JSON parser in [`json`], and a direct
//! `signal(2)` declaration in [`signal`]).
//!
//! The invariant that makes caching and batching safe to layer on a
//! correctness-critical simulator: a served response is **byte-identical**
//! to an offline run of the same cell — same config, same
//! [`run_cell_with_config`] entry point, same rendering — regardless of
//! worker count, batch composition, or whether the cache answered. See
//! DESIGN.md §11 for the full argument.
//!
//! The fault-survival layer hardens the service against the failure
//! modes a long-running deployment actually sees: a crash-safe on-disk
//! cache journal for warm restarts ([`journal`]), per-request deadlines
//! propagated into the batcher ([`service`]), a retrying client with
//! decorrelated-jitter backoff ([`client`]), and a seeded
//! fault-injection TCP proxy that proves the whole stack never serves a
//! wrong answer under network chaos ([`chaos`]).
//!
//! Binaries: `serve` (the server), `loadgen` (closed-loop load
//! generator reporting throughput, latency percentiles, and cache
//! counters), and `chaos` (the fault-injection proxy).
//!
//! [`run_cell_with_config`]: polyflow_bench::sweep::run_cell_with_config

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;
pub mod service;
pub mod signal;
pub mod verify;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use chaos::{ChaosConfig, ChaosProxy, FaultCounts};
pub use client::{Client as RetryClient, ClientConfig, ClientStats, Outcome};
pub use journal::{Journal, RecoveryReport};
pub use protocol::{ErrorKind, Request, ServeError, SimRequest, SimSource};
pub use server::Server;
pub use service::{Service, ServiceConfig, ServiceStats, Ticket};
pub use verify::VerifyRequest;
