//! A retrying, backoff-disciplined protocol client.
//!
//! `loadgen`, the e2e tests, and the chaos suite all speak to the
//! server through this module so they share one recovery policy. The
//! client's job is to turn a hostile transport into a clean trichotomy
//! for its caller:
//!
//! - [`Outcome::Ok`] — a complete, parseable, `"ok":true` response line
//!   (integrity-checked when the trailer was requested);
//! - [`Outcome::ServerError`] — the server answered with a typed error
//!   that is not worth retrying (`bad_request`, `sim_failed`, …);
//! - [`Outcome::Transport`] — the request could not be completed within
//!   the retry budget (connection failures, corrupt replies, and
//!   retryable typed errors such as `overloaded` all end here once the
//!   budget runs out).
//!
//! Nothing else escapes. In particular a corrupt-but-parseable reply is
//! **never** handed to the caller as success: a reply only counts as
//! [`Outcome::Ok`] if it is newline-terminated, passes the integrity
//! trailer check (when enabled), parses as JSON, and carries
//! `"ok":true`.
//!
//! # Retry policy
//!
//! Retries use decorrelated-jitter exponential backoff
//! (`sleep = min(cap, uniform[base, 3·prev])`), seeded through
//! [`SplitMix64`] so tests are deterministic, with two independent
//! bounds: a per-request attempt cap ([`ClientConfig::max_retries`]) and
//! a per-client retry *budget* ([`ClientConfig::retry_budget`]) that
//! stops a fleet of failing requests from amplifying an outage with
//! coordinated retry storms. Every retry is counted separately from
//! successes ([`ClientStats::retries`]) — a request that succeeded on
//! attempt three reports one success and two retries, never three
//! successes.
//!
//! [`SplitMix64`]: polyflow_isa::rng::SplitMix64

use crate::json;
use crate::protocol::{self, ErrorKind};
use polyflow_isa::rng::SplitMix64;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Tunables for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server (or chaos proxy) address, `host:port`.
    pub addr: String,
    /// Attempts beyond the first allowed per request.
    pub max_retries: u32,
    /// Total retries allowed across the client's lifetime; `None` is
    /// unlimited. When the budget is exhausted, requests get exactly one
    /// attempt.
    pub retry_budget: Option<u64>,
    /// Backoff floor (first retry sleeps at least this long).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Read/write timeout on the socket. A reply that does not complete
    /// within this window is a transport failure (and a retry), never a
    /// hang.
    pub io_timeout: Duration,
    /// Ask the server for the FNV-1a integrity trailer and verify it on
    /// every reply; a mismatch is treated as a corrupt reply (retry),
    /// not a response.
    pub require_integrity: bool,
    /// Seed for the backoff jitter (deterministic in tests).
    pub seed: u64,
}

impl ClientConfig {
    /// A sensible default policy against `addr`.
    pub fn new(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            addr: addr.into(),
            max_retries: 3,
            retry_budget: None,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            require_integrity: false,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// How one request ended, after retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A complete, verified, `"ok":true` response line (newline
    /// stripped).
    Ok(String),
    /// A typed, non-retryable server error.
    ServerError {
        /// The protocol error label (`bad_request`, `sim_failed`, …).
        kind: String,
        /// The server's message.
        message: String,
    },
    /// The retry budget ran out without a usable reply.
    Transport {
        /// What the last attempt died of.
        last_error: String,
    },
}

impl Outcome {
    /// The response line, if this outcome is a success.
    pub fn ok(&self) -> Option<&str> {
        match self {
            Outcome::Ok(line) => Some(line),
            _ => None,
        }
    }
}

/// Counters a [`Client`] keeps about its own honesty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests issued through [`Client::request`].
    pub requests: u64,
    /// Requests that ended in [`Outcome::Ok`].
    pub ok: u64,
    /// Requests that ended in a typed, non-retryable server error.
    pub server_errors: u64,
    /// Requests that exhausted their retry budget.
    pub transport_errors: u64,
    /// Replies discarded as corrupt (truncated, unparseable, or failing
    /// the integrity trailer) — each also caused a retry or a transport
    /// error.
    pub corrupt: u64,
    /// Retry attempts performed (attempts beyond each request's first).
    pub retries: u64,
    /// Retryable typed errors observed (`overloaded`, `shutting_down`).
    pub retry_after: u64,
}

/// What one attempt produced, before retry policy is applied.
enum Attempt {
    Ok(String),
    /// Typed error, with its kind label and message.
    Typed(ErrorKind, String, String),
    /// Connection-level or corruption failure, with a description.
    Broken(String),
}

/// A retrying protocol client. Not `Sync`: each thread owns one (the
/// jitter RNG is per-client state).
#[derive(Debug)]
pub struct Client {
    config: ClientConfig,
    rng: SplitMix64,
    prev_backoff: Duration,
    budget_spent: u64,
    stats: ClientStats,
}

impl Client {
    /// A client with the given policy.
    pub fn new(config: ClientConfig) -> Client {
        let rng = SplitMix64::new(config.seed);
        let prev_backoff = config.backoff_base;
        Client {
            config,
            rng,
            prev_backoff,
            budget_spent: 0,
            stats: ClientStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Sends one request line (no trailing newline) and drives it to a
    /// final [`Outcome`], retrying transport failures, corrupt replies,
    /// and retryable typed errors within the configured bounds.
    ///
    /// When [`ClientConfig::require_integrity`] is set, `line` must be a
    /// `simulate` request object — the client injects `"integrity":true`
    /// into it and verifies the trailer on every reply.
    pub fn request(&mut self, line: &str) -> Outcome {
        self.stats.requests += 1;
        let line = if self.config.require_integrity {
            match inject_integrity(line) {
                Some(l) => l,
                None => {
                    // Not an object we can annotate; send as-is (the
                    // reply then must simply parse, without a trailer).
                    line.to_string()
                }
            }
        } else {
            line.to_string()
        };
        let mut last_error = String::new();
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                if !self.spend_retry() {
                    break;
                }
                std::thread::sleep(self.next_backoff());
            }
            match self.attempt(&line) {
                Attempt::Ok(reply) => {
                    self.stats.ok += 1;
                    self.prev_backoff = self.config.backoff_base;
                    return Outcome::Ok(reply);
                }
                Attempt::Typed(kind, label, message) => {
                    if matches!(kind, ErrorKind::Overloaded | ErrorKind::ShuttingDown) {
                        self.stats.retry_after += 1;
                        last_error = format!("{label}: {message}");
                        continue;
                    }
                    self.stats.server_errors += 1;
                    return Outcome::ServerError {
                        kind: label,
                        message,
                    };
                }
                Attempt::Broken(why) => {
                    last_error = why;
                    continue;
                }
            }
        }
        self.stats.transport_errors += 1;
        Outcome::Transport { last_error }
    }

    /// One wire exchange: connect, send, read one line, validate.
    fn attempt(&mut self, line: &str) -> Attempt {
        let reply = match self.exchange(line) {
            Ok(r) => r,
            Err(e) => return Attempt::Broken(format!("io: {e}")),
        };
        // Validation order matters: the trailer covers the raw line, so
        // check (and strip) it before parsing.
        let body = if self.config.require_integrity {
            match protocol::check_integrity_trailer(&reply) {
                (body, Some(true)) => body,
                (_, Some(false)) => {
                    self.stats.corrupt += 1;
                    return Attempt::Broken("integrity trailer mismatch".to_string());
                }
                (_, None) => {
                    self.stats.corrupt += 1;
                    return Attempt::Broken("integrity trailer missing".to_string());
                }
            }
        } else {
            reply.as_str()
        };
        let v = match json::parse(body) {
            Ok(v) => v,
            Err(e) => {
                self.stats.corrupt += 1;
                return Attempt::Broken(format!("unparseable reply: {e}"));
            }
        };
        match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => Attempt::Ok(body.to_string()),
            Some(false) => {
                let err = v.get("error");
                let label = err
                    .and_then(|e| e.get("kind"))
                    .and_then(|k| k.as_str())
                    .unwrap_or("internal")
                    .to_string();
                let message = err
                    .and_then(|e| e.get("message"))
                    .and_then(|m| m.as_str())
                    .unwrap_or_default()
                    .to_string();
                Attempt::Typed(kind_of(&label), label, message)
            }
            None => {
                self.stats.corrupt += 1;
                Attempt::Broken("reply has no `ok` field".to_string())
            }
        }
    }

    /// Connect, write `line`, read exactly one newline-terminated reply.
    fn exchange(&self, line: &str) -> std::io::Result<String> {
        let stream = TcpStream::connect(&self.config.addr)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        let mut writer = stream.try_clone()?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply)?;
        match reply.pop() {
            Some('\n') => Ok(reply),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "reply truncated before newline",
            )),
        }
    }

    /// Accounts one retry against the budget; false means stop retrying.
    fn spend_retry(&mut self) -> bool {
        if let Some(budget) = self.config.retry_budget {
            if self.budget_spent >= budget {
                return false;
            }
        }
        self.budget_spent += 1;
        self.stats.retries += 1;
        true
    }

    /// Decorrelated jitter: `min(cap, uniform[base, 3·prev])`.
    fn next_backoff(&mut self) -> Duration {
        let base = self.config.backoff_base.as_micros() as u64;
        let hi = (self.prev_backoff.as_micros() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let sleep = base + self.rng.below(hi - base);
        let sleep = Duration::from_micros(sleep).min(self.config.backoff_cap);
        self.prev_backoff = sleep;
        sleep
    }
}

/// Maps a wire error label back to its [`ErrorKind`] (unknown labels
/// conservatively map to `Internal`, which is non-retryable).
fn kind_of(label: &str) -> ErrorKind {
    match label {
        "bad_request" => ErrorKind::BadRequest,
        "unknown_workload" => ErrorKind::UnknownWorkload,
        "unknown_policy" => ErrorKind::UnknownPolicy,
        "overloaded" => ErrorKind::Overloaded,
        "deadline_exceeded" => ErrorKind::DeadlineExceeded,
        "sim_failed" => ErrorKind::SimFailed,
        "shutting_down" => ErrorKind::ShuttingDown,
        _ => ErrorKind::Internal,
    }
}

/// Rewrites a `simulate` request object to carry `"integrity":true`.
/// Returns `None` when `line` is not a JSON object (nothing to inject
/// into).
fn inject_integrity(line: &str) -> Option<String> {
    let trimmed = line.trim_end();
    let body = trimmed.strip_suffix('}')?;
    if !body.trim_start().starts_with('{') {
        return None;
    }
    if body.trim_end().ends_with('{') {
        Some(format!("{body}\"integrity\":true}}"))
    } else {
        Some(format!("{body},\"integrity\":true}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A tiny scripted server: each accepted connection reads one line
    /// and plays the next canned action.
    enum Action {
        Reply(&'static str),
        /// Reply without the terminating newline, then close.
        Truncate(&'static str),
        /// Close without replying.
        Hangup,
    }

    fn scripted(actions: Vec<Action>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for action in actions {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let mut line = Vec::new();
                loop {
                    let n = stream.read(&mut buf).unwrap_or(0);
                    if n == 0 {
                        break;
                    }
                    line.extend_from_slice(&buf[..n]);
                    if line.contains(&b'\n') {
                        break;
                    }
                }
                match action {
                    Action::Reply(r) => {
                        let _ = stream.write_all(r.as_bytes());
                        let _ = stream.write_all(b"\n");
                    }
                    Action::Truncate(r) => {
                        let _ = stream.write_all(r.as_bytes());
                    }
                    Action::Hangup => {}
                }
            }
        });
        (addr, handle)
    }

    fn fast(addr: String) -> ClientConfig {
        ClientConfig {
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(2),
            io_timeout: Duration::from_secs(2),
            seed: 7,
            ..ClientConfig::new(addr)
        }
    }

    #[test]
    fn retries_transport_failures_then_succeeds() {
        let (addr, h) = scripted(vec![
            Action::Hangup,
            Action::Truncate("{\"ok\":true"),
            Action::Reply("{\"ok\":true,\"workload\":\"gzip\"}"),
        ]);
        let mut c = Client::new(fast(addr));
        let out = c.request("{\"workload\":\"gzip\"}");
        assert_eq!(out.ok(), Some("{\"ok\":true,\"workload\":\"gzip\"}"));
        let s = c.stats();
        assert_eq!((s.requests, s.ok, s.retries), (1, 1, 2));
        assert_eq!(s.transport_errors, 0);
        h.join().unwrap();
    }

    #[test]
    fn typed_errors_do_not_retry() {
        let (addr, h) = scripted(vec![Action::Reply(
            "{\"ok\":false,\"error\":{\"kind\":\"bad_request\",\"message\":\"nope\"}}",
        )]);
        let mut c = Client::new(fast(addr));
        match c.request("{}") {
            Outcome::ServerError { kind, message } => {
                assert_eq!(kind, "bad_request");
                assert_eq!(message, "nope");
            }
            other => panic!("expected typed error, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!((s.server_errors, s.retries), (1, 0));
        h.join().unwrap();
    }

    #[test]
    fn overloaded_is_retried_and_counted() {
        let (addr, h) = scripted(vec![
            Action::Reply(
                "{\"ok\":false,\"error\":{\"kind\":\"overloaded\",\"message\":\"full\"}}",
            ),
            Action::Reply("{\"ok\":true}"),
        ]);
        let mut c = Client::new(fast(addr));
        assert!(matches!(c.request("{}"), Outcome::Ok(_)));
        let s = c.stats();
        assert_eq!((s.retry_after, s.retries, s.ok), (1, 1, 1));
        h.join().unwrap();
    }

    #[test]
    fn budget_exhaustion_stops_retrying() {
        let (addr, h) = scripted(vec![Action::Hangup, Action::Hangup]);
        let mut c = Client::new(ClientConfig {
            max_retries: 10,
            retry_budget: Some(1),
            ..fast(addr)
        });
        match c.request("{}") {
            Outcome::Transport { .. } => {}
            other => panic!("expected transport failure, got {other:?}"),
        }
        assert_eq!(c.stats().retries, 1, "budget capped retries below max");
        h.join().unwrap();
    }

    #[test]
    fn corrupt_reply_is_never_success() {
        // A bit-flipped but still newline-terminated reply with a bad
        // trailer must be rejected by the integrity check.
        let good = "{\"ok\":true,\"workload\":\"gzip\"}";
        let trailed = crate::protocol::with_integrity_trailer(good);
        let mut flipped = trailed.into_bytes();
        flipped[2] ^= 0x01; // corrupt the body, keep the trailer
        let corrupted: &'static str =
            Box::leak(String::from_utf8(flipped).unwrap().into_boxed_str());
        let (addr, h) = scripted(vec![Action::Reply(corrupted), Action::Hangup]);
        let mut c = Client::new(ClientConfig {
            require_integrity: true,
            max_retries: 1,
            ..fast(addr)
        });
        match c.request("{\"workload\":\"gzip\"}") {
            Outcome::Transport { last_error } => {
                assert!(last_error.contains("io:"), "{last_error}")
            }
            other => panic!("corrupt reply must not become {other:?}"),
        }
        assert!(c.stats().corrupt >= 1);
        h.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let seq = |seed| {
            let mut c = Client::new(ClientConfig {
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(50),
                seed,
                ..ClientConfig::new("unused:0")
            });
            (0..8).map(|_| c.next_backoff()).collect::<Vec<_>>()
        };
        let a = seq(42);
        assert_eq!(a, seq(42), "same seed, same schedule");
        assert_ne!(a, seq(43), "different seed, different schedule");
        for d in &a {
            assert!(*d >= Duration::from_millis(1) && *d <= Duration::from_millis(50));
        }
    }

    #[test]
    fn integrity_injection_rewrites_the_object() {
        assert_eq!(
            inject_integrity("{\"workload\":\"gzip\"}").as_deref(),
            Some("{\"workload\":\"gzip\",\"integrity\":true}")
        );
        assert_eq!(
            inject_integrity("{}").as_deref(),
            Some("{\"integrity\":true}")
        );
        assert_eq!(inject_integrity("not json"), None);
    }
}
