//! The crash-safe, append-only cache journal behind `--cache-dir`.
//!
//! Every result the service caches is also appended here, so a restart
//! (graceful or `kill -9`) warm-starts the [`ResultCache`] from disk and
//! keeps serving the very same bytes. The format is built for the one
//! failure mode a process cannot defend against — dying mid-write:
//!
//! * **Records are self-verifying.** Each record is
//!   `len ‖ fnv1a(payload) ‖ payload`; replay stops at the first record
//!   whose length or checksum does not hold. A torn tail (power loss,
//!   `kill -9` mid-append, a corrupted byte) costs at most the records
//!   at and after the damage — everything before it is a consistent
//!   prefix, and recovery **never panics**.
//! * **Segments are immutable once sealed.** Appends go to the highest-
//!   numbered `segment-NNNNNNNN.log`; every boot seals the previous
//!   segments by opening a fresh one, so recovery never rewrites bytes
//!   it later depends on.
//! * **Compaction is atomic.** When the journal grows past its
//!   threshold, the live cache snapshot is rewritten into a brand-new
//!   segment via `write → fsync → rename`, and only then are the old
//!   segments unlinked. A crash at any point leaves either the old
//!   segments or the new one — never a half state.
//!
//! Versioning: each segment opens with a magic + schema version header
//! (whole-file skip on mismatch), and every cache key embeds
//! [`MachineConfig::fingerprint`] — entries journaled by a build whose
//! semantics changed simply never match a new request's key, so a stale
//! journal can serve stale bytes only for configs whose meaning is
//! unchanged. That is exactly the in-memory cache's own guarantee.
//!
//! Durability model: appends are a single `write_all` straight to the
//! file (no userspace buffering), so an entry survives process death the
//! moment [`Journal::append`] returns. Only the records since the last
//! OS flush are at risk on *power* loss, and the checksum chain turns
//! that into a clean prefix, not corruption.
//!
//! [`ResultCache`]: crate::cache::ResultCache
//! [`MachineConfig::fingerprint`]: polyflow_sim::MachineConfig::fingerprint

use crate::cache::CacheKey;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Segment header magic (8 bytes, constant across schema versions).
const MAGIC: &[u8; 8] = b"PFJRNL\x00\x01";

/// Record/payload schema version. Bump when the record layout changes;
/// old segments are skipped whole (a cold start, never a misparse).
pub const SCHEMA_VERSION: u32 = 1;

/// Hard upper bound on one record's payload — anything larger is
/// corruption, not data (response lines are a few KiB).
const MAX_PAYLOAD: u32 = 64 << 20;

/// 64-bit FNV-1a over `bytes` — the record checksum, and the same hash
/// the integrity trailer on the wire uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Distinct cache entries recovered (later duplicates win).
    pub entries: u64,
    /// Segment files replayed.
    pub segments: u64,
    /// Segments that ended in a torn/corrupt record (recovered to their
    /// consistent prefix).
    pub torn_tails: u64,
    /// Segments skipped whole for a bad magic or schema version.
    pub incompatible: u64,
}

struct State {
    active: File,
    active_index: u64,
    active_bytes: u64,
    sealed_bytes: u64,
    next_compact_at: u64,
}

/// An open cache journal rooted at one directory.
pub struct Journal {
    dir: PathBuf,
    rotate_bytes: u64,
    state: Mutex<State>,
    appended: AtomicU64,
    io_errors: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("rotate_bytes", &self.rotate_bytes)
            .finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.log"))
}

fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("segment-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

fn encode_record(key: &CacheKey, value: &str) -> Vec<u8> {
    let parts: [&str; 4] = [&key.workload, &key.policy, &key.config, value];
    let payload_len: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut rec = Vec::with_capacity(12 + payload_len);
    rec.extend_from_slice(&(payload_len as u32).to_le_bytes());
    rec.extend_from_slice(&[0u8; 8]); // checksum patched below
    for p in parts {
        rec.extend_from_slice(&(p.len() as u32).to_le_bytes());
        rec.extend_from_slice(p.as_bytes());
    }
    let sum = fnv1a(&rec[12..]).to_le_bytes();
    rec[4..12].copy_from_slice(&sum);
    rec
}

/// Decodes one record starting at `bytes[at..]`. `None` means the tail
/// from `at` on is torn/corrupt (or simply absent) — stop replaying.
fn decode_record(bytes: &[u8], at: usize) -> Option<(CacheKey, String, usize)> {
    let header = bytes.get(at..at + 12)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return None;
    }
    let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let payload = bytes.get(at + 12..at + 12 + len as usize)?;
    if fnv1a(payload) != sum {
        return None;
    }
    let mut cursor = 0usize;
    let mut parts: Vec<String> = Vec::with_capacity(4);
    for _ in 0..4 {
        let plen =
            u32::from_le_bytes(payload.get(cursor..cursor + 4)?.try_into().unwrap()) as usize;
        cursor += 4;
        let raw = payload.get(cursor..cursor + plen)?;
        cursor += plen;
        parts.push(String::from_utf8(raw.to_vec()).ok()?);
    }
    if cursor != payload.len() {
        return None;
    }
    let value = parts.pop().expect("four parts");
    let config = parts.pop().expect("three parts");
    let policy = parts.pop().expect("two parts");
    let workload = parts.pop().expect("one part");
    Some((
        CacheKey {
            workload,
            policy,
            config,
        },
        value,
        at + 12 + len as usize,
    ))
}

/// Replays one segment file into `out`. Returns `(compatible, torn)`.
fn replay_segment(path: &Path, out: &mut Vec<(CacheKey, String)>) -> io::Result<(bool, bool)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Ok((false, false));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SCHEMA_VERSION {
        return Ok((false, false));
    }
    let mut at = 12usize;
    while at < bytes.len() {
        match decode_record(&bytes, at) {
            Some((key, value, next)) => {
                out.push((key, value));
                at = next;
            }
            None => return Ok((true, true)), // consistent prefix; stop here
        }
    }
    Ok((true, false))
}

fn new_segment(dir: &Path, index: u64) -> io::Result<File> {
    let mut f = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(segment_path(dir, index))?;
    f.write_all(MAGIC)?;
    f.write_all(&SCHEMA_VERSION.to_le_bytes())?;
    Ok(f)
}

/// Flushes directory metadata so a rename/create survives power loss
/// (best-effort; irrelevant for plain process death).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// What [`Journal::open`] recovers: the journal handle, the replayed
/// `(key, response line)` entries oldest-first, and the recovery report.
pub type Recovered = (Journal, Vec<(CacheKey, String)>, RecoveryReport);

impl Journal {
    /// Opens (creating if needed) the journal at `dir`, replays every
    /// segment in order, and seals them by opening a fresh active
    /// segment. Returns the recovered entries oldest-first with later
    /// duplicates collapsed onto the earlier slot (last value wins) —
    /// insert them into the cache in order to warm-start it.
    pub fn open(dir: &Path, rotate_bytes: u64) -> io::Result<Recovered> {
        fs::create_dir_all(dir)?;
        let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
            .filter_map(|e| {
                let path = e.ok()?.path();
                segment_index(&path).map(|i| (i, path))
            })
            .collect();
        segments.sort();

        let mut report = RecoveryReport::default();
        let mut raw: Vec<(CacheKey, String)> = Vec::new();
        let mut sealed_bytes = 0u64;
        for (_, path) in &segments {
            let (compatible, torn) = replay_segment(path, &mut raw)?;
            report.segments += 1;
            if !compatible {
                report.incompatible += 1;
            } else {
                sealed_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            }
            if torn {
                report.torn_tails += 1;
            }
        }

        // Collapse duplicates: the last append for a key wins, seated at
        // the key's first position so replay order stays stable.
        let mut index: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        let mut entries: Vec<(CacheKey, String)> = Vec::with_capacity(raw.len());
        for (key, value) in raw {
            match index.get(&key) {
                Some(&i) => entries[i].1 = value,
                None => {
                    index.insert(key.clone(), entries.len());
                    entries.push((key, value));
                }
            }
        }
        report.entries = entries.len() as u64;

        let active_index = segments.last().map(|(i, _)| i + 1).unwrap_or(0);
        let active = new_segment(dir, active_index)?;
        sync_dir(dir);
        let journal = Journal {
            dir: dir.to_path_buf(),
            rotate_bytes,
            state: Mutex::new(State {
                active,
                active_index,
                active_bytes: 12,
                sealed_bytes,
                next_compact_at: rotate_bytes.max(1),
            }),
            appended: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        };
        Ok((journal, entries, report))
    }

    /// Appends one cache entry. One `write_all` straight to the file:
    /// durable against process death the moment this returns.
    pub fn append(&self, key: &CacheKey, value: &str) -> io::Result<()> {
        let rec = encode_record(key, value);
        let mut st = self.state.lock().unwrap();
        match st.active.write_all(&rec) {
            Ok(()) => {
                st.active_bytes += rec.len() as u64;
                self.appended.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// True once the journal has outgrown its compaction threshold —
    /// call [`Journal::compact`] with the live cache snapshot.
    pub fn wants_compaction(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.sealed_bytes + st.active_bytes >= st.next_compact_at
    }

    /// Atomically rewrites the journal down to `live` (the cache's
    /// current contents): write a new segment to a temp file, fsync,
    /// rename into place, then unlink every older segment. A crash at
    /// any step leaves a journal that replays to either the old state or
    /// the new one.
    pub fn compact(&self, live: &[(CacheKey, std::sync::Arc<str>)]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let compact_index = st.active_index + 1;
        let tmp_path = self.dir.join("compact.tmp");
        let mut tmp = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        tmp.write_all(&SCHEMA_VERSION.to_le_bytes())?;
        let mut compact_bytes = 12u64;
        for (key, value) in live {
            let rec = encode_record(key, value);
            tmp.write_all(&rec)?;
            compact_bytes += rec.len() as u64;
        }
        tmp.sync_all()?;
        drop(tmp);
        fs::rename(&tmp_path, segment_path(&self.dir, compact_index))?;
        sync_dir(&self.dir);

        // The compacted segment is now the durable truth; drop the old
        // segments (including the just-sealed active) and append to a
        // fresh one after it.
        for i in 0..=st.active_index {
            let _ = fs::remove_file(segment_path(&self.dir, i));
        }
        st.active = new_segment(&self.dir, compact_index + 1)?;
        st.active_index = compact_index + 1;
        st.active_bytes = 12;
        st.sealed_bytes = compact_bytes;
        st.next_compact_at = self.rotate_bytes.max(compact_bytes * 2);
        sync_dir(&self.dir);
        Ok(())
    }

    /// Current on-disk size in bytes (all segments).
    pub fn size_bytes(&self) -> u64 {
        let st = self.state.lock().unwrap();
        st.sealed_bytes + st.active_bytes
    }

    /// Entries appended since open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Append failures since open (the service keeps serving; the
    /// journal just stops growing).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Flushes the active segment to stable storage (drain path).
    pub fn sync(&self) {
        let st = self.state.lock().unwrap();
        let _ = st.active.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static NONCE: AtomicU32 = AtomicU32::new(0);

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "polyflow-journal-{tag}-{}-{}",
                std::process::id(),
                NONCE.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn key(n: usize) -> CacheKey {
        CacheKey {
            workload: format!("w{n}"),
            policy: "postdoms".into(),
            config: format!("cfg{n}"),
        }
    }

    fn open(dir: &Path) -> (Journal, Vec<(CacheKey, String)>, RecoveryReport) {
        Journal::open(dir, 1 << 20).expect("journal opens")
    }

    #[test]
    fn round_trips_across_reopen() {
        let t = TempDir::new("roundtrip");
        {
            let (j, entries, _) = open(&t.0);
            assert!(entries.is_empty());
            for n in 0..5 {
                j.append(&key(n), &format!("value-{n}")).unwrap();
            }
        }
        let (_, entries, report) = open(&t.0);
        assert_eq!(entries.len(), 5);
        assert_eq!(report.torn_tails, 0);
        for (n, (k, v)) in entries.iter().enumerate() {
            assert_eq!(k, &key(n));
            assert_eq!(v, &format!("value-{n}"));
        }
    }

    #[test]
    fn later_append_wins_for_duplicate_keys() {
        let t = TempDir::new("dup");
        {
            let (j, _, _) = open(&t.0);
            j.append(&key(1), "old").unwrap();
            j.append(&key(2), "other").unwrap();
            j.append(&key(1), "new").unwrap();
        }
        let (_, entries, _) = open(&t.0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], (key(1), "new".to_string()));
        assert_eq!(entries[1], (key(2), "other".to_string()));
    }

    #[test]
    fn torn_tail_recovers_to_consistent_prefix() {
        let t = TempDir::new("torn");
        let path = {
            let (j, _, _) = open(&t.0);
            for n in 0..3 {
                j.append(&key(n), &format!("v{n}")).unwrap();
            }
            segment_path(&t.0, 0)
        };
        // Truncate mid-record: drop the last 5 bytes.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (_, entries, report) = open(&t.0);
        assert_eq!(entries.len(), 2, "first two records form the prefix");
        assert_eq!(report.torn_tails, 1);
        assert_eq!(entries[1].1, "v1");
    }

    #[test]
    fn corrupt_byte_stops_at_first_bad_record() {
        let t = TempDir::new("corrupt");
        let path = {
            let (j, _, _) = open(&t.0);
            for n in 0..4 {
                j.append(&key(n), &format!("v{n}")).unwrap();
            }
            segment_path(&t.0, 0)
        };
        // Flip one byte inside the second record's payload: records 0
        // survives, 1 fails its checksum, 2 and 3 are unreachable (no
        // resync — stop at first bad record, by design).
        let mut bytes = fs::read(&path).unwrap();
        let rec0 = encode_record(&key(0), "v0").len();
        bytes[12 + rec0 + 20] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, entries, report) = open(&t.0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, "v0");
        assert_eq!(report.torn_tails, 1);
    }

    #[test]
    fn garbage_appended_after_valid_records_is_ignored() {
        let t = TempDir::new("garbage");
        let path = {
            let (j, _, _) = open(&t.0);
            j.append(&key(7), "keep-me").unwrap();
            segment_path(&t.0, 0)
        };
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"@@@@ not a record @@@@").unwrap();
        drop(f);
        let (_, entries, report) = open(&t.0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, "keep-me");
        assert_eq!(report.torn_tails, 1);
    }

    #[test]
    fn incompatible_segment_is_skipped_whole() {
        let t = TempDir::new("schema");
        {
            let (j, _, _) = open(&t.0);
            j.append(&key(0), "good").unwrap();
        }
        // A segment from "the future": right magic, wrong version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&encode_record(&key(1), "from-the-future"));
        fs::write(segment_path(&t.0, 1), &bytes).unwrap();
        let (_, entries, report) = open(&t.0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1, "good");
        assert_eq!(report.incompatible, 1);
        assert_eq!(report.torn_tails, 0);
    }

    #[test]
    fn compaction_preserves_live_entries_and_shrinks() {
        let t = TempDir::new("compact");
        {
            let (j, _, _) = Journal::open(&t.0, 64).expect("open");
            // Re-append the same two keys many times: the journal grows,
            // the live set stays at 2.
            for round in 0..50 {
                for n in 0..2 {
                    j.append(&key(n), &format!("round-{round}-{n}")).unwrap();
                }
            }
            assert!(j.wants_compaction());
            let before = j.size_bytes();
            let live: Vec<(CacheKey, Arc<str>)> = (0..2)
                .map(|n| (key(n), Arc::from(format!("live-{n}").as_str())))
                .collect();
            j.compact(&live).unwrap();
            assert!(j.size_bytes() < before, "compaction shrank the journal");
            // The journal keeps accepting appends after compaction.
            j.append(&key(9), "post-compact").unwrap();
        }
        let (_, entries, report) = open(&t.0);
        assert_eq!(report.torn_tails, 0);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (key(0), "live-0".to_string()));
        assert_eq!(entries[1], (key(1), "live-1".to_string()));
        assert_eq!(entries[2], (key(9), "post-compact".to_string()));
    }

    #[test]
    fn empty_and_missing_directories_are_cold_starts() {
        let t = TempDir::new("cold");
        let (_, entries, report) = open(&t.0); // dir did not exist
        assert!(entries.is_empty());
        assert_eq!(report.segments, 0);
        let (_, entries, _) = open(&t.0); // now it does, with one sealed empty segment
        assert!(entries.is_empty());
    }
}
