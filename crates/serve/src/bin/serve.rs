//! The PolyFlow simulation server.
//!
//! Speaks newline-delimited JSON over TCP (see `polyflow_serve::protocol`
//! for the grammar and DESIGN.md §11 for the design). Runs until SIGINT,
//! SIGTERM, or a `shutdown` request, then drains in-flight work and
//! exits 0.
//!
//! ```text
//! serve --addr 127.0.0.1:7199 --jobs 4
//! printf '{"workload":"twolf","policy":"postdoms"}\n' | nc 127.0.0.1 7199
//! ```

use polyflow_serve::{signal, Server, ServiceConfig};
use std::process::exit;
use std::time::Duration;

struct Opt {
    name: &'static str,
    value: &'static str,
    help: &'static str,
}

const OPTS: &[Opt] = &[
    Opt {
        name: "--addr",
        value: "HOST:PORT",
        help: "listen address (default 127.0.0.1:7199; port 0 = ephemeral)",
    },
    Opt {
        name: "--jobs",
        value: "N",
        help: "batch-execution worker threads (default: available CPUs)",
    },
    Opt {
        name: "--queue",
        value: "N",
        help: "admission-queue bound; extra requests are shed (default 64)",
    },
    Opt {
        name: "--batch",
        value: "N",
        help: "max requests coalesced into one batch (default 32)",
    },
    Opt {
        name: "--batch-window-ms",
        value: "N",
        help: "coalescing window after the first queued request (default 2)",
    },
    Opt {
        name: "--max-cycles",
        value: "N",
        help: "default per-request cycle watchdog (default 50000000)",
    },
    Opt {
        name: "--cache-capacity",
        value: "N",
        help: "result-cache entries; 0 disables caching (default 1024)",
    },
    Opt {
        name: "--cache-dir",
        value: "PATH",
        help: "persist the cache to a crash-safe journal here; warm-starts on boot",
    },
    Opt {
        name: "--max-deadline",
        value: "MS",
        help: "cap on per-request deadline_ms (default 60000)",
    },
    Opt {
        name: "--write-timeout-ms",
        value: "N",
        help: "slow-client write watchdog; a blocked response write drops the connection (default 10000)",
    },
    Opt {
        name: "--max-line",
        value: "BYTES",
        help: "longest accepted request line; longer gets a typed bad_request (default 1048576)",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "serve — PolyFlow simulation server (newline-delimited JSON over TCP)\n\n\
         Usage: serve [flags]\n\nFlags:\n",
    );
    let width = OPTS
        .iter()
        .map(|o| o.name.len() + 1 + o.value.len())
        .max()
        .unwrap_or(0);
    for o in OPTS {
        let lhs = format!("{} {}", o.name, o.value);
        out.push_str(&format!("  {lhs:<width$}  {}\n", o.help));
    }
    out.push_str(&format!(
        "  {:<width$}  print this help and exit\n",
        "--help"
    ));
    out.push_str(
        "\nProtocol: one JSON request per line, one JSON response per line.\n\
         Verbs: ping, stats, shutdown. Simulation request:\n  \
         {\"workload\":\"twolf\",\"policy\":\"postdoms\",\"config\":{\"max_cycles\":200000}}\n",
    );
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}\n\n{}", usage());
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7199".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            print!("{}", usage());
            return;
        }
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        if !OPTS.iter().any(|o| o.name == name) {
            fail(&format!("unknown flag `{name}`"));
        }
        let value = inline
            .or_else(|| args.next())
            .unwrap_or_else(|| fail(&format!("flag `{name}` requires a value")));
        let num = || -> u64 {
            value.parse().unwrap_or_else(|_| {
                fail(&format!("flag `{name}` requires a number, got `{value}`"))
            })
        };
        match name.as_str() {
            "--addr" => addr = value.clone(),
            "--jobs" => config.jobs = num() as usize,
            "--queue" => config.queue_capacity = num() as usize,
            "--batch" => config.batch_max = num().max(1) as usize,
            "--batch-window-ms" => config.batch_window = Duration::from_millis(num()),
            "--max-cycles" => config.default_max_cycles = num().max(1),
            "--cache-capacity" => config.cache_capacity = num() as usize,
            "--cache-dir" => config.cache_dir = Some(value.clone().into()),
            "--max-deadline" => config.max_deadline = Duration::from_millis(num().max(1)),
            "--write-timeout-ms" => config.write_timeout = Duration::from_millis(num().max(1)),
            "--max-line" => config.max_request_line = num().max(64) as usize,
            _ => unreachable!("flag table covers all names"),
        }
    }
    if config.queue_capacity == 0 {
        fail("--queue must be at least 1");
    }

    signal::install();
    let mut server = match Server::spawn(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    // Machine-parseable first line on stdout: scripts asking for an
    // ephemeral port (`--addr host:0`) read the actually-bound address
    // here instead of scraping stderr (which still carries the human
    // line below, unchanged for existing tooling).
    println!("SERVE_ADDR={}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("[serve] listening on {}", server.addr());
    server.wait_for_shutdown();
    let stats = server.service().stats();
    eprintln!(
        "[serve] drained: {} completed, {} failed, {} shed; cache {} hits / {} misses",
        stats.completed, stats.failed, stats.shed, stats.cache.hits, stats.cache.misses
    );
    if stats.journal_bytes > 0 || stats.warm_start > 0 {
        eprintln!(
            "[serve] journal: {} bytes on disk, {} entries warm-started this boot",
            stats.journal_bytes, stats.warm_start
        );
    }
}
