//! Closed-loop load generator for the PolyFlow simulation server.
//!
//! Spawns `--clients` connections that each fire requests back-to-back
//! until `--duration-ms` elapses, mixing repeated hot keys (cache hits
//! after warm-up) with never-before-seen cold keys at `--hit-ratio`.
//! Reports throughput, latency percentiles, and the server's cache/queue
//! counters as one JSON line on stdout (the same `name`/`jobs`/`cells`/
//! `wall_seconds`/`cells_per_second` fields as `BENCH_sweep.json`, so the
//! same tooling reads both), plus a human summary on stderr.
//!
//! `--verify-fig09` switches to verification: every (workload × Figure 9
//! policy) cell is requested over the wire and compared **byte for byte**
//! against an offline run of the same cell in this process. Any mismatch
//! exits 1. Run it against servers at different `--jobs` and with
//! different `--clients` counts to vary batch composition.
//!
//! Cold keys are real simulations: each one perturbs only the
//! `max_cycles` watchdog (a config field that cannot change a completing
//! run's result but does change the cache key), so a cold request is a
//! full simulator run while a hot request is a cache lookup — the
//! hot/cold throughput gap is the value of the cache.

use polyflow_bench::stopwatch::percentile;
use polyflow_bench::sweep::{figure9_cells, run_cell_with_config};
use polyflow_isa::rng::SplitMix64;
use polyflow_serve::client::{Client, ClientConfig, Outcome};
use polyflow_serve::json;
use polyflow_serve::protocol::{ok_response, parse_request, Request};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opt {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

const OPTS: &[Opt] = &[
    Opt {
        name: "--addr",
        value: Some("HOST:PORT"),
        help: "server address (default 127.0.0.1:7199)",
    },
    Opt {
        name: "--targets",
        value: Some("H:P,H:P,..."),
        help: "fan clients out across several servers round-robin; adds per-backend latency and error splits to the report",
    },
    Opt {
        name: "--clients",
        value: Some("N"),
        help: "concurrent closed-loop connections (default 4)",
    },
    Opt {
        name: "--open",
        value: Some("N"),
        help: "connection-capacity probe: open N concurrent idle connections (ping each) and report the sustained count",
    },
    Opt {
        name: "--duration-ms",
        value: Some("N"),
        help: "load duration (default 2000)",
    },
    Opt {
        name: "--hit-ratio",
        value: Some("PCT"),
        help: "percent of requests aimed at the repeated hot keys (default 90)",
    },
    Opt {
        name: "--seed",
        value: Some("N"),
        help: "SplitMix64 seed; same seed + same server state = same request stream (default 42)",
    },
    Opt {
        name: "--max-cycles",
        value: Some("N"),
        help: "cycle budget sent with every request (default 1000000000)",
    },
    Opt {
        name: "--jobs",
        value: Some("N"),
        help: "offline worker threads for --verify-fig09 (default: available CPUs)",
    },
    Opt {
        name: "--retries",
        value: Some("N"),
        help: "retries per request on transport failures / retryable errors (default 0)",
    },
    Opt {
        name: "--retry-budget",
        value: Some("N"),
        help: "total retries allowed across the whole run per client thread (default: unlimited)",
    },
    Opt {
        name: "--deadline-ms",
        value: Some("N"),
        help: "per-request deadline sent to the server (default: none)",
    },
    Opt {
        name: "--integrity",
        value: None,
        help: "request and verify the FNV-1a integrity trailer on every reply",
    },
    Opt {
        name: "--verify-fig09",
        value: None,
        help: "verify every Figure 9 cell byte-for-byte against an offline run",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "loadgen — closed-loop load generator and determinism verifier for `serve`\n\n\
         Usage: loadgen [flags]\n\nFlags:\n",
    );
    let width = OPTS
        .iter()
        .map(|o| o.name.len() + o.value.map_or(0, |v| v.len() + 1))
        .max()
        .unwrap_or(0);
    for o in OPTS {
        let lhs = match o.value {
            Some(v) => format!("{} {v}", o.name),
            None => o.name.to_string(),
        };
        out.push_str(&format!("  {lhs:<width$}  {}\n", o.help));
    }
    out.push_str(&format!(
        "  {:<width$}  print this help and exit\n",
        "--help"
    ));
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("loadgen: {msg}\n\n{}", usage());
    exit(2);
}

struct Config {
    addr: String,
    targets: Vec<String>,
    clients: usize,
    open: Option<u64>,
    duration: Duration,
    hit_ratio: u64,
    seed: u64,
    max_cycles: u64,
    jobs: usize,
    retries: u32,
    retry_budget: Option<u64>,
    deadline_ms: Option<u64>,
    integrity: bool,
    verify: bool,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: "127.0.0.1:7199".to_string(),
        targets: Vec::new(),
        clients: 4,
        open: None,
        duration: Duration::from_millis(2000),
        hit_ratio: 90,
        seed: 42,
        max_cycles: 1_000_000_000,
        jobs: 0,
        retries: 0,
        retry_budget: None,
        deadline_ms: None,
        integrity: false,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            print!("{}", usage());
            exit(0);
        }
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        let Some(opt) = OPTS.iter().find(|o| o.name == name) else {
            fail(&format!("unknown flag `{name}`"));
        };
        if opt.value.is_none() {
            if inline.is_some() {
                fail(&format!("flag `{name}` takes no value"));
            }
            match name.as_str() {
                "--integrity" => cfg.integrity = true,
                "--verify-fig09" => cfg.verify = true,
                _ => unreachable!("flag table covers all booleans"),
            }
            continue;
        }
        let value = inline
            .or_else(|| args.next())
            .unwrap_or_else(|| fail(&format!("flag `{name}` requires a value")));
        let num = || -> u64 {
            value.parse().unwrap_or_else(|_| {
                fail(&format!("flag `{name}` requires a number, got `{value}`"))
            })
        };
        match name.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--targets" => {
                cfg.targets = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--clients" => cfg.clients = num().max(1) as usize,
            "--open" => cfg.open = Some(num().max(1)),
            "--duration-ms" => cfg.duration = Duration::from_millis(num()),
            "--hit-ratio" => cfg.hit_ratio = num().min(100),
            "--seed" => cfg.seed = num(),
            "--max-cycles" => cfg.max_cycles = num().max(1),
            "--jobs" => cfg.jobs = num() as usize,
            "--retries" => cfg.retries = num() as u32,
            "--retry-budget" => cfg.retry_budget = Some(num()),
            "--deadline-ms" => cfg.deadline_ms = Some(num().max(1)),
            _ => unreachable!("flag table covers all names"),
        }
    }
    cfg
}

/// One request/response exchange on an established connection.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    writer
        .write_all(framed.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    match reader.read_line(&mut reply) {
        Ok(0) => Err("server hung up".to_string()),
        Ok(_) => Ok(reply.trim_end_matches('\n').to_string()),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot connect to {addr}: {e}");
        exit(1);
    });
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// The repeated hot-key roster: a small representative workload subset
/// (the ablation binary's) crossed with the headline policy and the
/// baseline.
const HOT_WORKLOADS: &[&str] = &["mcf", "vortex", "twolf", "crafty"];
const HOT_POLICIES: &[&str] = &["postdoms", "baseline"];

fn hot_line(n: usize, max_cycles: u64, extra: &str) -> String {
    let w = HOT_WORKLOADS[(n / HOT_POLICIES.len()) % HOT_WORKLOADS.len()];
    let p = HOT_POLICIES[n % HOT_POLICIES.len()];
    format!(
        "{{\"workload\":\"{w}\",\"policy\":\"{p}\",\"config\":{{\"max_cycles\":{max_cycles}}}{extra}}}"
    )
}

fn cold_line(counter: u64, max_cycles: u64, extra: &str, rng: &mut SplitMix64) -> String {
    let w = HOT_WORKLOADS[rng.index(HOT_WORKLOADS.len())];
    // A unique max_cycles value: a fresh cache key, the same result.
    let budget = max_cycles + 1 + counter;
    format!(
        "{{\"workload\":\"{w}\",\"policy\":\"postdoms\",\"config\":{{\"max_cycles\":{budget}}}{extra}}}"
    )
}

/// The servers this run drives: `--targets` when given, `--addr` alone
/// otherwise. Client threads are dealt across them round-robin.
fn resolve_targets(cfg: &Config) -> Vec<String> {
    if cfg.targets.is_empty() {
        vec![cfg.addr.clone()]
    } else {
        cfg.targets.clone()
    }
}

/// The retry client policy for one loadgen thread.
fn client_config(cfg: &Config, addr: &str, salt: u64) -> ClientConfig {
    ClientConfig {
        max_retries: cfg.retries,
        retry_budget: cfg.retry_budget,
        io_timeout: Duration::from_secs(5),
        require_integrity: cfg.integrity,
        seed: cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..ClientConfig::new(addr.to_string())
    }
}

/// Request fields beyond workload/policy/config, shared by every line.
fn extra_fields(cfg: &Config) -> String {
    match cfg.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    }
}

/// What one loadgen thread brings home.
struct ThreadTally {
    latencies: Vec<Duration>,
    ok: u64,
    typed: u64,
    transport: u64,
    corrupt: u64,
    retries: u64,
    /// Replies under its own consistency check failed: two accepted
    /// `ok` replies for the same request line disagreed.
    wrong: u64,
    /// line → first accepted reply, for the cross-thread check.
    accepted: HashMap<String, String>,
    first_error: Option<String>,
    /// Index into the target list this thread was dealt.
    target: usize,
}

/// Per-backend aggregate, reported when `--targets` names several.
struct BackendTally {
    addr: String,
    latencies: Vec<Duration>,
    ok: u64,
    typed: u64,
    transport: u64,
}

fn run_load(cfg: &Config) -> ! {
    let hot_keys = HOT_WORKLOADS.len() * HOT_POLICIES.len();
    let extra = extra_fields(cfg);
    let targets = resolve_targets(cfg);

    // Warm every backend's cache so a high hit ratio measures the
    // cache, not the first-touch simulations. Best-effort: under chaos
    // a warm-up line may exhaust its retries, which only lowers the
    // measured hit rate.
    for target in &targets {
        let mut warm = Client::new(client_config(cfg, target, u64::MAX));
        let warmed = (0..hot_keys)
            .filter(|&n| {
                warm.request(&hot_line(n, cfg.max_cycles, &extra))
                    .ok()
                    .is_some()
            })
            .count();
        if warmed < hot_keys {
            eprintln!(
                "[loadgen] warm-up incomplete on {target}: {warmed}/{hot_keys} hot keys cached"
            );
        }
    }

    let cold_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut handles = Vec::new();
    for client_index in 0..cfg.clients {
        let target = client_index % targets.len();
        let config = client_config(cfg, &targets[target], client_index as u64);
        let hit_ratio = cfg.hit_ratio;
        let max_cycles = cfg.max_cycles;
        let seed = cfg.seed;
        let extra = extra.clone();
        let cold_counter = Arc::clone(&cold_counter);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(seed ^ (client_index as u64).wrapping_mul(0x9e37));
            let mut client = Client::new(config);
            let mut tally = ThreadTally {
                latencies: Vec::new(),
                ok: 0,
                typed: 0,
                transport: 0,
                corrupt: 0,
                retries: 0,
                wrong: 0,
                accepted: HashMap::new(),
                first_error: None,
                target,
            };
            while Instant::now() < deadline {
                let line = if rng.below(100) < hit_ratio {
                    hot_line(rng.index(hot_keys), max_cycles, &extra)
                } else {
                    let n = cold_counter.fetch_add(1, Ordering::Relaxed);
                    cold_line(n, max_cycles, &extra, &mut rng)
                };
                let t0 = Instant::now();
                match client.request(&line) {
                    Outcome::Ok(reply) => {
                        tally.ok += 1;
                        tally.latencies.push(t0.elapsed());
                        match tally.accepted.get(&line) {
                            Some(prev) if prev != &reply => tally.wrong += 1,
                            Some(_) => {}
                            None => {
                                tally.accepted.insert(line, reply);
                            }
                        }
                    }
                    Outcome::ServerError { kind, message } => {
                        tally.typed += 1;
                        tally
                            .first_error
                            .get_or_insert(format!("{kind}: {message}"));
                    }
                    Outcome::Transport { last_error } => {
                        tally.transport += 1;
                        tally.first_error.get_or_insert(last_error);
                    }
                }
            }
            let s = client.stats();
            tally.corrupt = s.corrupt;
            tally.retries = s.retries;
            tally
        }));
    }

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut ok, mut typed, mut transport, mut corrupt, mut retries, mut wrong) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut first_error: Option<String> = None;
    // The cross-thread consistency check: every thread that accepted a
    // reply for the same request line must have accepted the same bytes.
    // With `--targets` this spans backends, so it is also the
    // cross-shard byte-identity check.
    let mut accepted: HashMap<String, String> = HashMap::new();
    let mut backends: Vec<BackendTally> = targets
        .iter()
        .map(|a| BackendTally {
            addr: a.clone(),
            latencies: Vec::new(),
            ok: 0,
            typed: 0,
            transport: 0,
        })
        .collect();
    for h in handles {
        let t = h.join().expect("client thread");
        let b = &mut backends[t.target];
        b.ok += t.ok;
        b.typed += t.typed;
        b.transport += t.transport;
        b.latencies.extend(t.latencies.iter().copied());
        latencies.extend(t.latencies);
        ok += t.ok;
        typed += t.typed;
        transport += t.transport;
        corrupt += t.corrupt;
        retries += t.retries;
        wrong += t.wrong;
        if first_error.is_none() {
            first_error = t.first_error;
        }
        for (line, reply) in t.accepted {
            match accepted.get(&line) {
                Some(prev) if prev != &reply => wrong += 1,
                Some(_) => {}
                None => {
                    accepted.insert(line, reply);
                }
            }
        }
    }
    let wall = started.elapsed();

    // The server's own counters — via a plain (trailer-less) client, as
    // the `stats` verb does not carry the integrity trailer. With one
    // target they land in the top-level `cache`/`queue` fields as
    // always; with several, each backend entry carries its own and the
    // top-level fields are null (an aggregate would be misleading).
    let multi = targets.len() > 1;
    let (cache, queue) = if multi {
        ("null".to_string(), "null".to_string())
    } else {
        let stats_line = match fetch_stats(cfg, &targets[0]) {
            Ok(line) => line,
            Err(e) => {
                eprintln!("loadgen: stats fetch failed: {e}");
                exit(1);
            }
        };
        let stats = json::parse(&stats_line).unwrap_or_else(|e| {
            eprintln!("loadgen: stats response unparsable: {e}");
            exit(1);
        });
        (
            render_stats_field(&stats, "cache"),
            render_stats_field(&stats, "queue"),
        )
    };

    // Per-backend splice for the JSON line, plus stderr detail lines.
    let mut backend_json = String::new();
    let mut backend_human = Vec::new();
    if multi {
        backend_json.push_str(",\"backends\":[");
        for (i, b) in backends.iter_mut().enumerate() {
            if i > 0 {
                backend_json.push(',');
            }
            let bp50 = percentile(&mut b.latencies, 50.0).as_secs_f64() * 1e3;
            let bp90 = percentile(&mut b.latencies, 90.0).as_secs_f64() * 1e3;
            let bp99 = percentile(&mut b.latencies, 99.0).as_secs_f64() * 1e3;
            let bcache = fetch_stats(cfg, &b.addr)
                .ok()
                .and_then(|line| json::parse(&line).ok())
                .map(|stats| render_stats_field(&stats, "cache"))
                .unwrap_or_else(|| "null".to_string());
            backend_json.push_str(&format!(
                "{{\"addr\":\"{}\",\"ok\":{},\
                 \"errors\":{{\"typed\":{},\"transport\":{}}},\
                 \"latency_ms\":{{\"p50\":{bp50:.3},\"p90\":{bp90:.3},\"p99\":{bp99:.3}}},\
                 \"cache\":{bcache}}}",
                b.addr, b.ok, b.typed, b.transport,
            ));
            backend_human.push(format!(
                "[loadgen]   {}: {} ok / {} typed + {} transport \
                 (p50 {bp50:.2}ms p90 {bp90:.2}ms p99 {bp99:.2}ms)",
                b.addr, b.ok, b.typed, b.transport,
            ));
        }
        backend_json.push(']');
    }

    let p50 = percentile(&mut latencies, 50.0);
    let p90 = percentile(&mut latencies, 90.0);
    let p99 = percentile(&mut latencies, 99.0);
    let errors = typed + transport;
    let total = ok + errors;
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);

    println!(
        "{{\"name\":\"loadgen\",\"jobs\":{},\"cells\":{},\"wall_seconds\":{:.6},\
         \"cells_per_second\":{:.3},\"ok\":{},\
         \"errors\":{{\"total\":{errors},\"typed\":{typed},\"transport\":{transport},\
         \"corrupt\":{corrupt}}},\
         \"retries\":{retries},\"wrong\":{wrong},\"hit_ratio_pct\":{},\
         \"latency_ms\":{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}},\
         \"cache\":{cache},\"queue\":{queue}{backend_json}}}",
        cfg.clients,
        total,
        wall.as_secs_f64(),
        throughput,
        ok,
        cfg.hit_ratio,
        p50.as_secs_f64() * 1e3,
        p90.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );
    eprintln!(
        "[loadgen] {ok} ok / {typed} typed + {transport} transport errors \
         ({retries} retries, {corrupt} corrupt replies rejected, {wrong} wrong answers) \
         in {:.2}s with {} clients ({throughput:.1} req/s; p50 {:.2}ms p99 {:.2}ms)",
        wall.as_secs_f64(),
        cfg.clients,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );
    for line in &backend_human {
        eprintln!("{line}");
    }
    if let Some(e) = first_error {
        eprintln!("[loadgen] first error: {e}");
    }
    exit(if ok > 0 && wrong == 0 { 0 } else { 1 });
}

/// One `stats` exchange against `addr` through the retry client.
fn fetch_stats(cfg: &Config, addr: &str) -> Result<String, String> {
    let mut client = Client::new(ClientConfig {
        require_integrity: false,
        max_retries: cfg.retries.max(4),
        ..client_config(cfg, addr, u64::MAX - 1)
    });
    match client.request("stats") {
        Outcome::Ok(line) => Ok(line),
        other => Err(format!("{other:?}")),
    }
}

/// Renders `stats.<field>` from a parsed stats reply, or `null`.
fn render_stats_field(stats: &json::Json, field: &str) -> String {
    stats
        .get("stats")
        .and_then(|s| s.get(field))
        .map(polyflow_serve::json::Json::render)
        .unwrap_or_else(|| "null".to_string())
}

/// Requests every (workload × Figure 9 cell) over the wire — spread
/// round-robin across `--clients` connections so batches mix workloads
/// and policies — then replays each cell offline through the *same*
/// entry point the server uses and diffs the bytes.
fn run_verify(cfg: &Config) -> ! {
    let workloads = polyflow_workloads::names();
    let cells = figure9_cells();
    let mut lines: Vec<String> = Vec::new();
    for w in workloads {
        for cell in &cells {
            lines.push(format!(
                "{{\"workload\":\"{w}\",\"policy\":\"{}\",\
                 \"config\":{{\"max_cycles\":{}}}}}",
                cell.label(),
                cfg.max_cycles
            ));
        }
    }

    // Served bytes, `--clients` ways round-robin (and across
    // `--targets` backends, when several are named).
    let targets = resolve_targets(cfg);
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..cfg.clients {
        let addr = targets[client % targets.len()].clone();
        let mine: Vec<(usize, String)> = lines
            .iter()
            .enumerate()
            .skip(client)
            .step_by(cfg.clients)
            .map(|(i, l)| (i, l.clone()))
            .collect();
        handles.push(std::thread::spawn(move || {
            let (mut w, mut r) = connect(&addr);
            mine.into_iter()
                .map(|(i, line)| {
                    let reply = exchange(&mut w, &mut r, &line)
                        .unwrap_or_else(|e| format!("<transport error: {e}>"));
                    (i, reply)
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut served: Vec<Option<String>> = vec![None; lines.len()];
    for h in handles {
        for (i, reply) in h.join().expect("verify client") {
            served[i] = Some(reply);
        }
    }
    let served_wall = started.elapsed();

    // Offline replay: same request line → same parsed config → same
    // simulator entry point → same rendering.
    eprintln!(
        "[loadgen] verifying {} cells offline ({} workloads × {} cells)…",
        lines.len(),
        workloads.len(),
        cells.len()
    );
    let offline_jobs = if cfg.jobs == 0 {
        polyflow_bench::pool::resolve_jobs()
    } else {
        cfg.jobs
    };
    let prepared = polyflow_bench::prepare_all_jobs(&[], offline_jobs);
    let expected: Vec<String> =
        polyflow_bench::pool::parallel_map(lines.clone(), offline_jobs, |_, line| {
            let Ok(Request::Simulate(req)) = parse_request(&line, u64::MAX) else {
                panic!("loadgen generated an invalid request: {line}");
            };
            let w = prepared
                .iter()
                .find(|p| p.name == req.workload_label())
                .expect("workload was prepared");
            let mut scratch = polyflow_sim::SimScratch::default();
            match run_cell_with_config(w, req.cell, &req.config, &mut scratch) {
                Ok(result) => ok_response(
                    req.workload_label(),
                    &req.policy_label(),
                    &json::compact(&result.to_json()),
                ),
                Err(e) => format!("<offline sim error: {e}>"),
            }
        });

    let mut mismatches = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let got = served[i].as_deref().unwrap_or("<no response>");
        if got != expected[i] {
            mismatches += 1;
            eprintln!("[loadgen] MISMATCH for {line}");
            eprintln!("  served : {}", &got[..got.len().min(160)]);
            eprintln!("  offline: {}", &expected[i][..expected[i].len().min(160)]);
        }
    }
    println!(
        "{{\"name\":\"loadgen-verify\",\"jobs\":{},\"cells\":{},\"wall_seconds\":{:.6},\
         \"cells_per_second\":{:.3},\"mismatches\":{mismatches}}}",
        cfg.clients,
        lines.len(),
        served_wall.as_secs_f64(),
        lines.len() as f64 / served_wall.as_secs_f64().max(1e-9),
    );
    if mismatches == 0 {
        eprintln!(
            "[loadgen] verified: {} served cells byte-identical to offline runs",
            lines.len()
        );
        exit(0);
    }
    eprintln!("[loadgen] {mismatches} mismatched cell(s)");
    exit(1);
}

/// Connection-capacity probe: opens up to `target` concurrent
/// connections against one server, pinging each as it opens, then
/// re-pings every held connection to prove the server still answers on
/// all of them. A connect failure, a hangup, or an unanswered ping ends
/// the climb. Run it against two server builds and compare the plateau
/// — this is the apples-to-apples concurrency measurement.
fn run_open(cfg: &Config, target: u64) -> ! {
    let addr_str = resolve_targets(cfg).remove(0);
    let addr = addr_str
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| fail(&format!("cannot resolve `{addr_str}`")));
    let started = Instant::now();
    let mut held: Vec<TcpStream> = Vec::with_capacity(target.min(1 << 20) as usize);
    let mut failure: Option<String> = None;
    while (held.len() as u64) < target {
        match probe_connect(&addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
        if held.len().is_multiple_of(2000) {
            eprintln!("[loadgen] {} connections open…", held.len());
        }
    }
    let opened = held.len();
    // Every held connection must still answer — an accepted-then-
    // dropped connection does not count as sustained.
    let mut alive = 0usize;
    for s in &mut held {
        if ping_once(s).is_ok() {
            alive += 1;
        }
    }
    let wall = started.elapsed();
    println!(
        "{{\"name\":\"loadgen-open\",\"jobs\":1,\"cells\":{target},\
         \"wall_seconds\":{:.6},\"cells_per_second\":{:.3},\
         \"target\":{target},\"opened\":{opened},\"alive\":{alive}}}",
        wall.as_secs_f64(),
        alive as f64 / wall.as_secs_f64().max(1e-9),
    );
    eprintln!(
        "[loadgen] open probe against {addr_str}: {opened}/{target} opened, \
         {alive} still answering after {:.2}s",
        wall.as_secs_f64()
    );
    if let Some(e) = failure {
        eprintln!("[loadgen] climb ended by: {e}");
    }
    exit(if alive as u64 == target { 0 } else { 1 });
}

/// One probe connection: connect with a bounded timeout and require a
/// pong before it counts.
fn probe_connect(addr: &std::net::SocketAddr) -> Result<TcpStream, String> {
    let mut s = TcpStream::connect_timeout(addr, Duration::from_secs(2))
        .map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok();
    s.set_write_timeout(Some(Duration::from_secs(5))).ok();
    ping_once(&mut s)?;
    Ok(s)
}

/// A single ping/pong on an established connection, without the fd
/// overhead of a cloned reader (the probe holds thousands open).
fn ping_once(s: &mut TcpStream) -> Result<(), String> {
    use std::io::Read;
    s.write_all(b"ping\n").map_err(|e| format!("write: {e}"))?;
    let mut got = Vec::with_capacity(64);
    let mut buf = [0u8; 256];
    loop {
        let n = s.read(&mut buf).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server hung up".to_string());
        }
        got.extend_from_slice(&buf[..n]);
        if got.contains(&b'\n') {
            break;
        }
        if got.len() > 4096 {
            return Err("oversized ping reply".to_string());
        }
    }
    let line = String::from_utf8_lossy(&got);
    if line.contains("\"pong\"") {
        Ok(())
    } else {
        Err(format!("unexpected ping reply: {}", line.trim()))
    }
}

fn main() {
    let cfg = parse_args();
    if let Some(n) = cfg.open {
        run_open(&cfg, n);
    }
    if cfg.verify {
        run_verify(&cfg);
    }
    run_load(&cfg);
}
