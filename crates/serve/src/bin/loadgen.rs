//! Closed-loop load generator for the PolyFlow simulation server.
//!
//! Spawns `--clients` connections that each fire requests back-to-back
//! until `--duration-ms` elapses, mixing repeated hot keys (cache hits
//! after warm-up) with never-before-seen cold keys at `--hit-ratio`.
//! Reports throughput, latency percentiles, and the server's cache/queue
//! counters as one JSON line on stdout (the same `name`/`jobs`/`cells`/
//! `wall_seconds`/`cells_per_second` fields as `BENCH_sweep.json`, so the
//! same tooling reads both), plus a human summary on stderr.
//!
//! `--verify-fig09` switches to verification: every (workload × Figure 9
//! policy) cell is requested over the wire and compared **byte for byte**
//! against an offline run of the same cell in this process. Any mismatch
//! exits 1. Run it against servers at different `--jobs` and with
//! different `--clients` counts to vary batch composition.
//!
//! Cold keys are real simulations: each one perturbs only the
//! `max_cycles` watchdog (a config field that cannot change a completing
//! run's result but does change the cache key), so a cold request is a
//! full simulator run while a hot request is a cache lookup — the
//! hot/cold throughput gap is the value of the cache.

use polyflow_bench::stopwatch::percentile;
use polyflow_bench::sweep::{figure9_cells, run_cell_with_config};
use polyflow_isa::rng::SplitMix64;
use polyflow_serve::client::{Client, ClientConfig, Outcome};
use polyflow_serve::json;
use polyflow_serve::protocol::{ok_response, parse_request, Request};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opt {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

const OPTS: &[Opt] = &[
    Opt {
        name: "--addr",
        value: Some("HOST:PORT"),
        help: "server address (default 127.0.0.1:7199)",
    },
    Opt {
        name: "--clients",
        value: Some("N"),
        help: "concurrent closed-loop connections (default 4)",
    },
    Opt {
        name: "--duration-ms",
        value: Some("N"),
        help: "load duration (default 2000)",
    },
    Opt {
        name: "--hit-ratio",
        value: Some("PCT"),
        help: "percent of requests aimed at the repeated hot keys (default 90)",
    },
    Opt {
        name: "--seed",
        value: Some("N"),
        help: "SplitMix64 seed; same seed + same server state = same request stream (default 42)",
    },
    Opt {
        name: "--max-cycles",
        value: Some("N"),
        help: "cycle budget sent with every request (default 1000000000)",
    },
    Opt {
        name: "--jobs",
        value: Some("N"),
        help: "offline worker threads for --verify-fig09 (default: available CPUs)",
    },
    Opt {
        name: "--retries",
        value: Some("N"),
        help: "retries per request on transport failures / retryable errors (default 0)",
    },
    Opt {
        name: "--retry-budget",
        value: Some("N"),
        help: "total retries allowed across the whole run per client thread (default: unlimited)",
    },
    Opt {
        name: "--deadline-ms",
        value: Some("N"),
        help: "per-request deadline sent to the server (default: none)",
    },
    Opt {
        name: "--integrity",
        value: None,
        help: "request and verify the FNV-1a integrity trailer on every reply",
    },
    Opt {
        name: "--verify-fig09",
        value: None,
        help: "verify every Figure 9 cell byte-for-byte against an offline run",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "loadgen — closed-loop load generator and determinism verifier for `serve`\n\n\
         Usage: loadgen [flags]\n\nFlags:\n",
    );
    let width = OPTS
        .iter()
        .map(|o| o.name.len() + o.value.map_or(0, |v| v.len() + 1))
        .max()
        .unwrap_or(0);
    for o in OPTS {
        let lhs = match o.value {
            Some(v) => format!("{} {v}", o.name),
            None => o.name.to_string(),
        };
        out.push_str(&format!("  {lhs:<width$}  {}\n", o.help));
    }
    out.push_str(&format!(
        "  {:<width$}  print this help and exit\n",
        "--help"
    ));
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("loadgen: {msg}\n\n{}", usage());
    exit(2);
}

struct Config {
    addr: String,
    clients: usize,
    duration: Duration,
    hit_ratio: u64,
    seed: u64,
    max_cycles: u64,
    jobs: usize,
    retries: u32,
    retry_budget: Option<u64>,
    deadline_ms: Option<u64>,
    integrity: bool,
    verify: bool,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: "127.0.0.1:7199".to_string(),
        clients: 4,
        duration: Duration::from_millis(2000),
        hit_ratio: 90,
        seed: 42,
        max_cycles: 1_000_000_000,
        jobs: 0,
        retries: 0,
        retry_budget: None,
        deadline_ms: None,
        integrity: false,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            print!("{}", usage());
            exit(0);
        }
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        let Some(opt) = OPTS.iter().find(|o| o.name == name) else {
            fail(&format!("unknown flag `{name}`"));
        };
        if opt.value.is_none() {
            if inline.is_some() {
                fail(&format!("flag `{name}` takes no value"));
            }
            match name.as_str() {
                "--integrity" => cfg.integrity = true,
                "--verify-fig09" => cfg.verify = true,
                _ => unreachable!("flag table covers all booleans"),
            }
            continue;
        }
        let value = inline
            .or_else(|| args.next())
            .unwrap_or_else(|| fail(&format!("flag `{name}` requires a value")));
        let num = || -> u64 {
            value.parse().unwrap_or_else(|_| {
                fail(&format!("flag `{name}` requires a number, got `{value}`"))
            })
        };
        match name.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--clients" => cfg.clients = num().max(1) as usize,
            "--duration-ms" => cfg.duration = Duration::from_millis(num()),
            "--hit-ratio" => cfg.hit_ratio = num().min(100),
            "--seed" => cfg.seed = num(),
            "--max-cycles" => cfg.max_cycles = num().max(1),
            "--jobs" => cfg.jobs = num() as usize,
            "--retries" => cfg.retries = num() as u32,
            "--retry-budget" => cfg.retry_budget = Some(num()),
            "--deadline-ms" => cfg.deadline_ms = Some(num().max(1)),
            _ => unreachable!("flag table covers all names"),
        }
    }
    cfg
}

/// One request/response exchange on an established connection.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    writer
        .write_all(framed.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    match reader.read_line(&mut reply) {
        Ok(0) => Err("server hung up".to_string()),
        Ok(_) => Ok(reply.trim_end_matches('\n').to_string()),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot connect to {addr}: {e}");
        exit(1);
    });
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// The repeated hot-key roster: a small representative workload subset
/// (the ablation binary's) crossed with the headline policy and the
/// baseline.
const HOT_WORKLOADS: &[&str] = &["mcf", "vortex", "twolf", "crafty"];
const HOT_POLICIES: &[&str] = &["postdoms", "baseline"];

fn hot_line(n: usize, max_cycles: u64, extra: &str) -> String {
    let w = HOT_WORKLOADS[(n / HOT_POLICIES.len()) % HOT_WORKLOADS.len()];
    let p = HOT_POLICIES[n % HOT_POLICIES.len()];
    format!(
        "{{\"workload\":\"{w}\",\"policy\":\"{p}\",\"config\":{{\"max_cycles\":{max_cycles}}}{extra}}}"
    )
}

fn cold_line(counter: u64, max_cycles: u64, extra: &str, rng: &mut SplitMix64) -> String {
    let w = HOT_WORKLOADS[rng.index(HOT_WORKLOADS.len())];
    // A unique max_cycles value: a fresh cache key, the same result.
    let budget = max_cycles + 1 + counter;
    format!(
        "{{\"workload\":\"{w}\",\"policy\":\"postdoms\",\"config\":{{\"max_cycles\":{budget}}}{extra}}}"
    )
}

/// The retry client policy for one loadgen thread.
fn client_config(cfg: &Config, salt: u64) -> ClientConfig {
    ClientConfig {
        max_retries: cfg.retries,
        retry_budget: cfg.retry_budget,
        io_timeout: Duration::from_secs(5),
        require_integrity: cfg.integrity,
        seed: cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..ClientConfig::new(cfg.addr.clone())
    }
}

/// Request fields beyond workload/policy/config, shared by every line.
fn extra_fields(cfg: &Config) -> String {
    match cfg.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    }
}

/// What one loadgen thread brings home.
struct ThreadTally {
    latencies: Vec<Duration>,
    ok: u64,
    typed: u64,
    transport: u64,
    corrupt: u64,
    retries: u64,
    /// Replies under its own consistency check failed: two accepted
    /// `ok` replies for the same request line disagreed.
    wrong: u64,
    /// line → first accepted reply, for the cross-thread check.
    accepted: HashMap<String, String>,
    first_error: Option<String>,
}

fn run_load(cfg: &Config) -> ! {
    let hot_keys = HOT_WORKLOADS.len() * HOT_POLICIES.len();
    let extra = extra_fields(cfg);

    // Warm the cache so a high hit ratio measures the cache, not the
    // first-touch simulations. Best-effort: under chaos a warm-up line
    // may exhaust its retries, which only lowers the measured hit rate.
    let mut warm = Client::new(client_config(cfg, u64::MAX));
    let warmed = (0..hot_keys)
        .filter(|&n| {
            warm.request(&hot_line(n, cfg.max_cycles, &extra))
                .ok()
                .is_some()
        })
        .count();
    if warmed < hot_keys {
        eprintln!("[loadgen] warm-up incomplete: {warmed}/{hot_keys} hot keys cached");
    }

    let cold_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut handles = Vec::new();
    for client_index in 0..cfg.clients {
        let config = client_config(cfg, client_index as u64);
        let hit_ratio = cfg.hit_ratio;
        let max_cycles = cfg.max_cycles;
        let seed = cfg.seed;
        let extra = extra.clone();
        let cold_counter = Arc::clone(&cold_counter);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(seed ^ (client_index as u64).wrapping_mul(0x9e37));
            let mut client = Client::new(config);
            let mut tally = ThreadTally {
                latencies: Vec::new(),
                ok: 0,
                typed: 0,
                transport: 0,
                corrupt: 0,
                retries: 0,
                wrong: 0,
                accepted: HashMap::new(),
                first_error: None,
            };
            while Instant::now() < deadline {
                let line = if rng.below(100) < hit_ratio {
                    hot_line(rng.index(hot_keys), max_cycles, &extra)
                } else {
                    let n = cold_counter.fetch_add(1, Ordering::Relaxed);
                    cold_line(n, max_cycles, &extra, &mut rng)
                };
                let t0 = Instant::now();
                match client.request(&line) {
                    Outcome::Ok(reply) => {
                        tally.ok += 1;
                        tally.latencies.push(t0.elapsed());
                        match tally.accepted.get(&line) {
                            Some(prev) if prev != &reply => tally.wrong += 1,
                            Some(_) => {}
                            None => {
                                tally.accepted.insert(line, reply);
                            }
                        }
                    }
                    Outcome::ServerError { kind, message } => {
                        tally.typed += 1;
                        tally
                            .first_error
                            .get_or_insert(format!("{kind}: {message}"));
                    }
                    Outcome::Transport { last_error } => {
                        tally.transport += 1;
                        tally.first_error.get_or_insert(last_error);
                    }
                }
            }
            let s = client.stats();
            tally.corrupt = s.corrupt;
            tally.retries = s.retries;
            tally
        }));
    }

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut ok, mut typed, mut transport, mut corrupt, mut retries, mut wrong) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut first_error: Option<String> = None;
    // The cross-thread consistency check: every thread that accepted a
    // reply for the same request line must have accepted the same bytes.
    let mut accepted: HashMap<String, String> = HashMap::new();
    for h in handles {
        let t = h.join().expect("client thread");
        latencies.extend(t.latencies);
        ok += t.ok;
        typed += t.typed;
        transport += t.transport;
        corrupt += t.corrupt;
        retries += t.retries;
        wrong += t.wrong;
        if first_error.is_none() {
            first_error = t.first_error;
        }
        for (line, reply) in t.accepted {
            match accepted.get(&line) {
                Some(prev) if prev != &reply => wrong += 1,
                Some(_) => {}
                None => {
                    accepted.insert(line, reply);
                }
            }
        }
    }
    let wall = started.elapsed();

    // The server's own counters — via a plain (trailer-less) client, as
    // the `stats` verb does not carry the integrity trailer.
    let mut stats_client = Client::new(ClientConfig {
        require_integrity: false,
        max_retries: cfg.retries.max(4),
        ..client_config(cfg, u64::MAX - 1)
    });
    let stats_line = match stats_client.request("stats") {
        Outcome::Ok(line) => line,
        other => {
            eprintln!("loadgen: stats fetch failed: {other:?}");
            exit(1);
        }
    };
    let stats = json::parse(&stats_line).unwrap_or_else(|e| {
        eprintln!("loadgen: stats response unparsable: {e}");
        exit(1);
    });
    let cache = stats
        .get("stats")
        .and_then(|s| s.get("cache"))
        .map(polyflow_serve::json::Json::render)
        .unwrap_or_else(|| "null".to_string());
    let queue = stats
        .get("stats")
        .and_then(|s| s.get("queue"))
        .map(polyflow_serve::json::Json::render)
        .unwrap_or_else(|| "null".to_string());

    let p50 = percentile(&mut latencies, 50.0);
    let p90 = percentile(&mut latencies, 90.0);
    let p99 = percentile(&mut latencies, 99.0);
    let errors = typed + transport;
    let total = ok + errors;
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);

    println!(
        "{{\"name\":\"loadgen\",\"jobs\":{},\"cells\":{},\"wall_seconds\":{:.6},\
         \"cells_per_second\":{:.3},\"ok\":{},\
         \"errors\":{{\"total\":{errors},\"typed\":{typed},\"transport\":{transport},\
         \"corrupt\":{corrupt}}},\
         \"retries\":{retries},\"wrong\":{wrong},\"hit_ratio_pct\":{},\
         \"latency_ms\":{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}},\
         \"cache\":{cache},\"queue\":{queue}}}",
        cfg.clients,
        total,
        wall.as_secs_f64(),
        throughput,
        ok,
        cfg.hit_ratio,
        p50.as_secs_f64() * 1e3,
        p90.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );
    eprintln!(
        "[loadgen] {ok} ok / {typed} typed + {transport} transport errors \
         ({retries} retries, {corrupt} corrupt replies rejected, {wrong} wrong answers) \
         in {:.2}s with {} clients ({throughput:.1} req/s; p50 {:.2}ms p99 {:.2}ms)",
        wall.as_secs_f64(),
        cfg.clients,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
    );
    if let Some(e) = first_error {
        eprintln!("[loadgen] first error: {e}");
    }
    exit(if ok > 0 && wrong == 0 { 0 } else { 1 });
}

/// Requests every (workload × Figure 9 cell) over the wire — spread
/// round-robin across `--clients` connections so batches mix workloads
/// and policies — then replays each cell offline through the *same*
/// entry point the server uses and diffs the bytes.
fn run_verify(cfg: &Config) -> ! {
    let workloads = polyflow_workloads::names();
    let cells = figure9_cells();
    let mut lines: Vec<String> = Vec::new();
    for w in workloads {
        for cell in &cells {
            lines.push(format!(
                "{{\"workload\":\"{w}\",\"policy\":\"{}\",\
                 \"config\":{{\"max_cycles\":{}}}}}",
                cell.label(),
                cfg.max_cycles
            ));
        }
    }

    // Served bytes, `--clients` ways round-robin.
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..cfg.clients {
        let addr = cfg.addr.clone();
        let mine: Vec<(usize, String)> = lines
            .iter()
            .enumerate()
            .skip(client)
            .step_by(cfg.clients)
            .map(|(i, l)| (i, l.clone()))
            .collect();
        handles.push(std::thread::spawn(move || {
            let (mut w, mut r) = connect(&addr);
            mine.into_iter()
                .map(|(i, line)| {
                    let reply = exchange(&mut w, &mut r, &line)
                        .unwrap_or_else(|e| format!("<transport error: {e}>"));
                    (i, reply)
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut served: Vec<Option<String>> = vec![None; lines.len()];
    for h in handles {
        for (i, reply) in h.join().expect("verify client") {
            served[i] = Some(reply);
        }
    }
    let served_wall = started.elapsed();

    // Offline replay: same request line → same parsed config → same
    // simulator entry point → same rendering.
    eprintln!(
        "[loadgen] verifying {} cells offline ({} workloads × {} cells)…",
        lines.len(),
        workloads.len(),
        cells.len()
    );
    let offline_jobs = if cfg.jobs == 0 {
        polyflow_bench::pool::resolve_jobs()
    } else {
        cfg.jobs
    };
    let prepared = polyflow_bench::prepare_all_jobs(&[], offline_jobs);
    let expected: Vec<String> =
        polyflow_bench::pool::parallel_map(lines.clone(), offline_jobs, |_, line| {
            let Ok(Request::Simulate(req)) = parse_request(&line, u64::MAX) else {
                panic!("loadgen generated an invalid request: {line}");
            };
            let w = prepared
                .iter()
                .find(|p| p.name == req.workload_label())
                .expect("workload was prepared");
            let mut scratch = polyflow_sim::SimScratch::default();
            match run_cell_with_config(w, req.cell, &req.config, &mut scratch) {
                Ok(result) => ok_response(
                    req.workload_label(),
                    &req.policy_label(),
                    &json::compact(&result.to_json()),
                ),
                Err(e) => format!("<offline sim error: {e}>"),
            }
        });

    let mut mismatches = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let got = served[i].as_deref().unwrap_or("<no response>");
        if got != expected[i] {
            mismatches += 1;
            eprintln!("[loadgen] MISMATCH for {line}");
            eprintln!("  served : {}", &got[..got.len().min(160)]);
            eprintln!("  offline: {}", &expected[i][..expected[i].len().min(160)]);
        }
    }
    println!(
        "{{\"name\":\"loadgen-verify\",\"jobs\":{},\"cells\":{},\"wall_seconds\":{:.6},\
         \"cells_per_second\":{:.3},\"mismatches\":{mismatches}}}",
        cfg.clients,
        lines.len(),
        served_wall.as_secs_f64(),
        lines.len() as f64 / served_wall.as_secs_f64().max(1e-9),
    );
    if mismatches == 0 {
        eprintln!(
            "[loadgen] verified: {} served cells byte-identical to offline runs",
            lines.len()
        );
        exit(0);
    }
    eprintln!("[loadgen] {mismatches} mismatched cell(s)");
    exit(1);
}

fn main() {
    let cfg = parse_args();
    if cfg.verify {
        run_verify(&cfg);
    }
    run_load(&cfg);
}
