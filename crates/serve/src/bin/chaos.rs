//! The PolyFlow chaos proxy.
//!
//! A seeded fault-injection TCP proxy (see `polyflow_serve::chaos`)
//! interposed between clients and a running `serve`:
//!
//! ```text
//! serve --addr 127.0.0.1:7199 &
//! chaos --listen 127.0.0.1:7190 --upstream 127.0.0.1:7199 \
//!       --seed 42 --reset-pct 8 --truncate-pct 8 --bitflip-pct 8 \
//!       --delay-pct 10 --blackhole-pct 4
//! loadgen --addr 127.0.0.1:7190 --retries 16 --integrity ...
//! ```
//!
//! Runs until SIGINT/SIGTERM, then prints per-operator fault counts to
//! stderr and exits 0.

use polyflow_serve::chaos::{ChaosConfig, ChaosProxy};
use polyflow_serve::signal;
use std::process::exit;
use std::time::Duration;

struct Opt {
    name: &'static str,
    value: &'static str,
    help: &'static str,
}

const OPTS: &[Opt] = &[
    Opt {
        name: "--listen",
        value: "HOST:PORT",
        help: "address clients connect to (default 127.0.0.1:7190; port 0 = ephemeral)",
    },
    Opt {
        name: "--upstream",
        value: "HOST:PORT",
        help: "the real server (default 127.0.0.1:7199)",
    },
    Opt {
        name: "--seed",
        value: "N",
        help: "fault-schedule seed (default 42)",
    },
    Opt {
        name: "--delay-pct",
        value: "N",
        help: "percent of exchanges delayed (default 0)",
    },
    Opt {
        name: "--reset-pct",
        value: "N",
        help: "percent of exchanges reset mid-response (default 0)",
    },
    Opt {
        name: "--truncate-pct",
        value: "N",
        help: "percent of exchanges with a byte-truncated response (default 0)",
    },
    Opt {
        name: "--bitflip-pct",
        value: "N",
        help: "percent of exchanges with one payload bit flipped (default 0)",
    },
    Opt {
        name: "--blackhole-pct",
        value: "N",
        help: "percent of exchanges accepted but never answered (default 0)",
    },
    Opt {
        name: "--delay-ms",
        value: "N",
        help: "hold time for delayed/black-holed exchanges (default 20)",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "chaos — seeded fault-injection TCP proxy for the PolyFlow server\n\n\
         Usage: chaos [flags]\n\nFlags:\n",
    );
    let width = OPTS
        .iter()
        .map(|o| o.name.len() + 1 + o.value.len())
        .max()
        .unwrap_or(0);
    for o in OPTS {
        let lhs = format!("{} {}", o.name, o.value);
        out.push_str(&format!("  {lhs:<width$}  {}\n", o.help));
    }
    out.push_str(&format!(
        "  {:<width$}  print this help and exit\n",
        "--help"
    ));
    out.push_str(
        "\nOperators: delay, conn-reset mid-line, byte-truncated response,\n\
         payload bit-flip (caught by the client's integrity trailer), and\n\
         black-holed accepts. The remainder of the distribution passes\n\
         exchanges through untouched. Percentages must sum to at most 100.\n",
    );
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("chaos: {msg}\n\n{}", usage());
    exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7190".to_string();
    let mut config = ChaosConfig::clean("127.0.0.1:7199", 42);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            print!("{}", usage());
            return;
        }
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        if !OPTS.iter().any(|o| o.name == name) {
            fail(&format!("unknown flag `{name}`"));
        }
        let value = inline
            .or_else(|| args.next())
            .unwrap_or_else(|| fail(&format!("flag `{name}` requires a value")));
        let num = || -> u64 {
            value.parse().unwrap_or_else(|_| {
                fail(&format!("flag `{name}` requires a number, got `{value}`"))
            })
        };
        match name.as_str() {
            "--listen" => listen = value.clone(),
            "--upstream" => config.upstream = value.clone(),
            "--seed" => config.seed = num(),
            "--delay-pct" => config.delay_pct = num() as u32,
            "--reset-pct" => config.reset_pct = num() as u32,
            "--truncate-pct" => config.truncate_pct = num() as u32,
            "--bitflip-pct" => config.bitflip_pct = num() as u32,
            "--blackhole-pct" => config.blackhole_pct = num() as u32,
            "--delay-ms" => config.delay = Duration::from_millis(num()),
            _ => unreachable!("flag table covers all names"),
        }
    }
    let total = config.delay_pct
        + config.reset_pct
        + config.truncate_pct
        + config.bitflip_pct
        + config.blackhole_pct;
    if total > 100 {
        fail(&format!("fault percentages sum to {total} (> 100)"));
    }

    signal::install();
    let upstream = config.upstream.clone();
    let mut proxy = match ChaosProxy::spawn(&listen, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos: cannot bind {listen}: {e}");
            exit(1);
        }
    };
    eprintln!(
        "[chaos] listening on {} -> upstream {upstream}",
        proxy.addr()
    );
    while !signal::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let counts = proxy.counts();
    proxy.shutdown();
    let (clean, delay, reset, truncate, bitflip, blackhole) = counts.snapshot();
    eprintln!(
        "[chaos] exchanges: {clean} clean, {delay} delayed, {reset} reset, \
         {truncate} truncated, {bitflip} bit-flipped, {blackhole} black-holed"
    );
}
