//! The PolyFlow sharding router.
//!
//! Spreads simulation requests across N `serve` backends on a
//! consistent-hash ring keyed by the request's cache key, with health
//! checks, automatic ejection/readmission, and failover (see
//! `polyflow_serve::router` and DESIGN.md §16). Runs until SIGINT,
//! SIGTERM, or a `shutdown` request, then drains in-flight connections
//! and exits 0.
//!
//! ```text
//! router --addr 127.0.0.1:7190 --backends 127.0.0.1:7199,127.0.0.1:7200
//! printf '{"workload":"twolf","policy":"postdoms"}\n' | nc 127.0.0.1 7190
//! ```

use polyflow_serve::router::{Router, RouterConfig};
use polyflow_serve::signal;
use std::process::exit;
use std::time::Duration;

struct Opt {
    name: &'static str,
    value: &'static str,
    help: &'static str,
}

const OPTS: &[Opt] = &[
    Opt {
        name: "--addr",
        value: "HOST:PORT",
        help: "listen address (default 127.0.0.1:7190; port 0 = ephemeral)",
    },
    Opt {
        name: "--backends",
        value: "H:P,H:P,...",
        help: "comma-separated serve backend addresses (required)",
    },
    Opt {
        name: "--replicas",
        value: "N",
        help: "virtual ring points per backend (default 100)",
    },
    Opt {
        name: "--check-interval-ms",
        value: "N",
        help: "health-check cadence (default 250)",
    },
    Opt {
        name: "--eject-after",
        value: "N",
        help: "consecutive failures before ejecting a backend (default 2)",
    },
    Opt {
        name: "--readmit-after",
        value: "N",
        help: "consecutive healthy checks before readmission (default 2)",
    },
    Opt {
        name: "--io-timeout-ms",
        value: "N",
        help: "per-hop socket timeout for forwards and checks (default 30000)",
    },
    Opt {
        name: "--max-cycles",
        value: "N",
        help: "default cycle budget; MUST match the backends' --max-cycles \
               so routing keys align with their cache keys (default 50000000)",
    },
    Opt {
        name: "--max-line",
        value: "BYTES",
        help: "longest accepted request line (default 1048576)",
    },
];

fn usage() -> String {
    let mut out = String::from(
        "router — consistent-hash sharding router for PolyFlow serve backends\n\n\
         Usage: router --backends H:P,H:P [flags]\n\nFlags:\n",
    );
    let width = OPTS
        .iter()
        .map(|o| o.name.len() + 1 + o.value.len())
        .max()
        .unwrap_or(0);
    for o in OPTS {
        let lhs = format!("{} {}", o.name, o.value);
        out.push_str(&format!("  {lhs:<width$}  {}\n", o.help));
    }
    out.push_str(&format!(
        "  {:<width$}  print this help and exit\n",
        "--help"
    ));
    out.push_str(
        "\nA request's reply is forwarded verbatim from the backend that owns its\n\
         cache key; `stats` aggregates per-backend health, ring ownership, and\n\
         counters; `shutdown` (or SIGTERM) drains the router, not the backends.\n",
    );
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("router: {msg}\n\n{}", usage());
    exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7190".to_string();
    let mut backends: Vec<String> = Vec::new();
    let mut config = RouterConfig::new(Vec::new());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--help" || a == "-h" {
            print!("{}", usage());
            return;
        }
        let (name, inline) = match a.split_once('=') {
            Some((n, v)) => (n.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        if !OPTS.iter().any(|o| o.name == name) {
            fail(&format!("unknown flag `{name}`"));
        }
        let value = inline
            .or_else(|| args.next())
            .unwrap_or_else(|| fail(&format!("flag `{name}` requires a value")));
        let num = || -> u64 {
            value.parse().unwrap_or_else(|_| {
                fail(&format!("flag `{name}` requires a number, got `{value}`"))
            })
        };
        match name.as_str() {
            "--addr" => addr = value.clone(),
            "--backends" => {
                backends = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--replicas" => config.replicas = num().max(1) as usize,
            "--check-interval-ms" => config.check_interval = Duration::from_millis(num().max(1)),
            "--eject-after" => config.eject_after = num().max(1) as u32,
            "--readmit-after" => config.readmit_after = num().max(1) as u32,
            "--io-timeout-ms" => config.io_timeout = Duration::from_millis(num().max(1)),
            "--max-cycles" => config.default_max_cycles = num().max(1),
            "--max-line" => config.max_request_line = num().max(64) as usize,
            _ => unreachable!("flag table covers all names"),
        }
    }
    if backends.is_empty() {
        fail("--backends is required (at least one serve address)");
    }
    config.backends = backends;

    signal::install();
    let mut router = match Router::spawn(&addr, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("router: cannot start on {addr}: {e}");
            exit(1);
        }
    };
    // Machine-parseable first line on stdout: scripts asking for an
    // ephemeral port (`--addr host:0`) read the actually-bound address
    // here instead of scraping stderr.
    println!("ROUTER_ADDR={}", router.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("[router] listening on {}", router.addr());
    router.wait_for_shutdown();
    eprintln!("[router] drained: {} ejections", router.core().ejections());
}
