//! The `verify` verb: the lint pass as a served request.
//!
//! A `{"verb":"verify", …}` request runs the same static checks the
//! `lint` binary runs — `polyflow_core::verify` over a
//! [`ProgramAnalysis`] whose dataflow solves ride the SCC-parallel
//! solver (DESIGN.md §12) — against either a bundled workload
//! (`"workload":"twolf"`) or a program uploaded as assembly text
//! (`"program":"…"`).
//!
//! The rendered report is a pure function of the program bytes: the
//! response is cached in the shared [`ResultCache`] keyed by the
//! program's *fingerprint* (FNV-1a over its canonical assembly), so a
//! re-uploaded program and the workload it was dumped from share one
//! cache entry and replay identical bytes.
//!
//! [`ProgramAnalysis`]: polyflow_core::ProgramAnalysis
//! [`ResultCache`]: crate::cache::ResultCache

use crate::json;
use polyflow_core::{verify, ProgramAnalysis, VerifyOptions};
use polyflow_isa::{to_asm, Program};
use polyflow_sim::MachineConfig;

/// A validated verify request: the program to lint plus its fingerprint
/// (computed at parse time so admission can consult the cache without
/// re-serializing the program).
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// The program to lint.
    pub program: Program,
    /// [`fingerprint`] of `program`.
    pub fingerprint: String,
}

impl VerifyRequest {
    /// Wraps `program`, fingerprinting it.
    pub fn new(program: Program) -> VerifyRequest {
        let fingerprint = fingerprint(&program);
        VerifyRequest {
            program,
            fingerprint,
        }
    }
}

/// Content fingerprint of a program: 64-bit FNV-1a over its canonical
/// assembly rendering, as fixed-width hex. The assembly round-trips the
/// full instruction stream and function table, so two programs share a
/// fingerprint iff they serialize identically.
pub fn fingerprint(program: &Program) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in to_asm(program).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

/// Runs the lint pass on `program` with `jobs` solver workers and
/// renders the single-line JSON report body.
///
/// The body is deterministic: diagnostics come out of
/// [`polyflow_core::verify`] in function order, hint overflows in spawn
/// order, and the solver is bit-identical at every worker count — so the
/// rendered bytes never depend on `jobs`, and caching the line is safe.
pub fn run(program: &Program, fingerprint: &str, jobs: usize) -> String {
    let analysis = ProgramAnalysis::analyze_with_jobs(program, jobs);
    let opts = VerifyOptions {
        hint_register_slots: MachineConfig::hpca07().hint_register_slots,
        ..VerifyOptions::default()
    };
    let report = verify(program, &analysis, &opts);

    let mut diags = String::from("[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            diags.push(',');
        }
        diags.push_str(&format!(
            "{{\"check\":\"{}\",\"function\":\"{}\",\"pc\":\"{}\",\"message\":\"{}\"}}",
            d.check,
            json::escape(&d.function),
            d.pc,
            json::escape(&d.message),
        ));
    }
    diags.push(']');

    let mut overflows = String::from("[");
    for (i, h) in report.hint_overflows().enumerate() {
        if i > 0 {
            overflows.push(',');
        }
        let regs: Vec<String> = h.live_in.iter().map(|r| r.to_string()).collect();
        overflows.push_str(&format!(
            "{{\"spawn\":\"{}\",\"live_in\":\"{}\",\"slots\":{}}}",
            h.spawn,
            json::escape(&regs.join(",")),
            h.slots,
        ));
    }
    overflows.push(']');

    format!(
        "{{\"ok\":true,\"verify\":{{\"fingerprint\":\"{fingerprint}\",\
         \"clean\":{},\"spawn_points\":{},\"diagnostics\":{diags},\
         \"hint_overflows\":{overflows}}}}}",
        report.is_clean(),
        analysis.candidates().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twolf() -> Program {
        polyflow_workloads::by_name("twolf").unwrap().program
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let p = twolf();
        let f = fingerprint(&p);
        assert_eq!(f.len(), 16, "fixed-width hex");
        assert_eq!(f, fingerprint(&p), "same bytes, same fingerprint");
        // Round-tripping through assembly preserves the fingerprint…
        let reparsed = polyflow_isa::parse_program(&to_asm(&p)).unwrap();
        assert_eq!(f, fingerprint(&reparsed));
        // …and a different program gets a different one.
        let other = polyflow_workloads::by_name("gzip").unwrap().program;
        assert_ne!(f, fingerprint(&other));
    }

    #[test]
    fn report_is_valid_single_line_json_and_job_independent() {
        let p = twolf();
        let f = fingerprint(&p);
        let line = run(&p, &f, 1);
        assert!(!line.contains('\n'));
        assert_eq!(line, run(&p, &f, 2), "jobs cannot change the bytes");
        assert_eq!(line, run(&p, &f, 4));

        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let body = v.get("verify").unwrap();
        assert_eq!(body.get("fingerprint").unwrap().as_str(), Some(f.as_str()));
        assert_eq!(
            body.get("clean").unwrap().as_bool(),
            Some(true),
            "the bundled workloads lint clean"
        );
        assert!(body.get("spawn_points").unwrap().as_u64().unwrap() > 0);
        // twolf overflows the 4-slot hint entries at several spawns.
        let overflows = body.get("hint_overflows").unwrap();
        let rendered = overflows.render();
        assert!(rendered.contains("\"slots\":"), "{rendered}");
    }

    #[test]
    fn dirty_program_reports_diagnostics() {
        // A block no path reaches: `junk` sits after an unconditional
        // jump and nothing targets it.
        let src = "\
fn main {
  li r1, 1
  j done
junk:
  addi r2, r2, 1
done:
  halt
}";
        let p = polyflow_isa::parse_program(src).unwrap();
        let f = fingerprint(&p);
        let line = run(&p, &f, 1);
        let v = json::parse(&line).unwrap();
        let body = v.get("verify").unwrap();
        assert_eq!(body.get("clean").unwrap().as_bool(), Some(false));
        assert!(line.contains("unreachable-block"), "{line}");
    }
}
