//! The TCP transport: accept loop, per-connection handlers, graceful
//! drain.
//!
//! Each connection speaks the newline-delimited protocol of
//! [`crate::protocol`]. Connections are handled by one thread each,
//! reading with a short timeout so every handler notices a drain
//! promptly; requests on one connection are processed in order. Malformed
//! input gets a typed error response — a protocol mistake never costs the
//! client its connection, and never kills the server.
//!
//! Shutdown (a signal, or the `shutdown` verb) proceeds in order: stop
//! accepting, let handlers finish their in-flight request and close, then
//! drain the admission queue and join the batcher. Clients that were
//! admitted before the drain began still receive their replies.

use crate::protocol::{self, Request};
use crate::service::{Service, ServiceConfig};
use crate::signal;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Accept-loop poll interval (nonblocking accept + sleep keeps the loop
/// responsive to the stop flag without a dependency on `mio`).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-connection read timeout: how often an idle handler re-checks the
/// drain flag.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// A running server: the service plus its TCP front end.
pub struct Server {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`), starts the service batcher and
    /// the accept loop, and returns. Use [`Server::addr`] to learn the
    /// bound port when asking for an ephemeral one.
    pub fn spawn(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Service::new(config);
        service.start();
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicU64::new(0));

        let accept_handle = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || loop {
                    if stop.load(Ordering::SeqCst) || signal::requested() {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let service = Arc::clone(&service);
                            let stop = Arc::clone(&stop);
                            let conn_active = Arc::clone(&active);
                            active.fetch_add(1, Ordering::SeqCst);
                            let spawned =
                                thread::Builder::new()
                                    .name("serve-conn".into())
                                    .spawn(move || {
                                        handle_connection(stream, &service, &stop);
                                        conn_active.fetch_sub(1, Ordering::SeqCst);
                                    });
                            if spawned.is_err() {
                                active.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => thread::sleep(ACCEPT_POLL),
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Server {
            service,
            addr: bound,
            stop,
            active,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (tests inspect its stats directly).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// True once a drain was requested (signal, `shutdown` verb, or
    /// [`Server::shutdown`]).
    pub fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested() || self.service.is_shutting_down()
    }

    /// Graceful drain: stop accepting, let connection handlers finish
    /// their in-flight work and hang up, drain the admission queue, join
    /// the batcher. Idempotent; called by `Drop` as a backstop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.begin_shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        while self.active.load(Ordering::SeqCst) > 0 {
            thread::sleep(ACCEPT_POLL);
        }
        self.service.shutdown_and_join();
    }

    /// Blocks until a drain is requested, polling the signal flag. The
    /// `serve` binary parks its main thread here.
    pub fn wait_for_shutdown(&mut self) {
        while !self.draining() {
            thread::sleep(ACCEPT_POLL);
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection until EOF, error, or drain.
///
/// Two protections bound what a single peer can cost us: request lines
/// are read through a [`std::io::Take`] capped at
/// [`ServiceConfig::max_request_line`] (+1 for the newline) so a client
/// that never sends a newline cannot grow the buffer without bound —
/// the oversized line gets a typed `bad_request` and is discarded up to
/// its eventual newline, keeping the connection usable; and the writer
/// carries [`ServiceConfig::write_timeout`] so a peer that stops
/// reading forfeits the connection instead of wedging the handler (and
/// with it, the drain).
fn handle_connection(stream: TcpStream, service: &Arc<Service>, stop: &AtomicBool) {
    let max_line = service.config().max_request_line;
    let peer_writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    if peer_writer
        .set_write_timeout(Some(service.config().write_timeout))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut writer = peer_writer;
    let mut buf: Vec<u8> = Vec::new();
    // True while discarding the tail of an already-rejected oversized
    // line (everything up to its newline).
    let mut skipping = false;
    loop {
        let allowance = ((max_line + 1).saturating_sub(buf.len()).max(1)) as u64;
        match (&mut reader).take(allowance).read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF; answer a final unterminated line if there is one.
                if !buf.is_empty() && !skipping {
                    let _ = respond(&mut writer, service, stop, &buf);
                }
                return;
            }
            Ok(_) if buf.ends_with(b"\n") => {
                if skipping {
                    skipping = false; // oversized line fully discarded
                } else if respond(&mut writer, service, stop, &buf).is_err() {
                    return;
                }
                buf.clear();
            }
            Ok(_) => {
                // Progress but no newline yet.
                if skipping {
                    buf.clear();
                } else if buf.len() > max_line {
                    let e = protocol::ServeError::new(
                        protocol::ErrorKind::BadRequest,
                        format!("request line exceeds {max_line} bytes"),
                    );
                    if write_line(&mut writer, &protocol::error_response(&e)).is_err() {
                        return;
                    }
                    skipping = true;
                    buf.clear();
                }
                // Otherwise: a partial line mid-read; keep accumulating.
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle (a partial line, if any, stays in `buf`). Hang up
                // idle connections once a drain begins.
                if stop.load(Ordering::SeqCst) || signal::requested() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; `Err(())` means the connection should close
/// (the `shutdown` verb, or the peer vanished).
fn respond(
    writer: &mut TcpStream,
    service: &Arc<Service>,
    stop: &AtomicBool,
    raw: &[u8],
) -> Result<(), ()> {
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s,
        Err(_) => {
            return write_line(
                writer,
                &protocol::error_response(&protocol::ServeError::new(
                    protocol::ErrorKind::BadRequest,
                    "request is not valid UTF-8",
                )),
            );
        }
    };
    if line.trim().is_empty() {
        return Ok(()); // blank keep-alive line
    }
    let reply = match protocol::parse_request(line, service.default_max_cycles()) {
        Ok(Request::Ping) => "{\"ok\":true,\"pong\":true}".to_string(),
        Ok(Request::Stats) => service.stats().to_json(),
        Ok(Request::Shutdown) => {
            // Acknowledge, then trip this server's stop flag (not the
            // process-global signal flag — in-process test servers must
            // not drain each other); the accept loop and every handler
            // notice within one poll.
            let _ = write_line(writer, "{\"ok\":true,\"draining\":true}");
            stop.store(true, Ordering::SeqCst);
            service.begin_shutdown();
            return Err(());
        }
        Ok(Request::Simulate(req)) => {
            // The trailer is appended at write time, over the reply the
            // client will parse — typed errors included, so a bit-flipped
            // error cannot masquerade as a genuine one either. Cached
            // bytes are never altered: the same entry serves trailered
            // and untrailered requests alike.
            let integrity = req.integrity;
            let body = match service.submit(*req) {
                Ok(body) => body.to_string(),
                Err(e) => protocol::error_response(&e),
            };
            if integrity {
                protocol::with_integrity_trailer(&body)
            } else {
                body
            }
        }
        Ok(Request::Verify(req)) => match service.verify_program(*req) {
            Ok(body) => body.to_string(),
            Err(e) => protocol::error_response(&e),
        },
        Err(e) => {
            // The parse failed before the `integrity` flag could be
            // decoded, so honor it best-effort from the raw line (this
            // is the exact token a trailer-checking client injects) —
            // otherwise its typed parse error would look like a
            // stripped-trailer corruption and be retried into a
            // transport failure.
            let body = protocol::error_response(&e);
            if line.contains("\"integrity\":true") {
                protocol::with_integrity_trailer(&body)
            } else {
                body
            }
        }
    };
    write_line(writer, &reply)
}

fn write_line(writer: &mut TcpStream, line: &str) -> Result<(), ()> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    writer.write_all(&bytes).map_err(|_| ())?;
    writer.flush().map_err(|_| ())
}
