//! The TCP front end: a thin wrapper that binds, starts the service,
//! and hands the socket to the readiness-based [`Reactor`].
//!
//! Each connection speaks the newline-delimited protocol of
//! [`crate::protocol`]. All connections are driven by one reactor
//! thread (see [`crate::reactor`] for the state machine); simulation
//! work still executes on the pool via the service's micro-batcher, so
//! the reactor never blocks on a cell. Malformed input gets a typed
//! error response — a protocol mistake never costs the client its
//! connection, and never kills the server.
//!
//! Shutdown (a signal, the `shutdown` verb, or [`Server::shutdown`])
//! proceeds in order: stop accepting, let connections with queued or
//! in-flight work deliver it and hang up on the idle rest, then drain
//! the admission queue and join the batcher. Clients that were admitted
//! before the drain began still receive their replies.

use crate::reactor::{Reactor, TransportSnapshot, TransportStats, Waker};
use crate::service::{Service, ServiceConfig};
use crate::signal;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How often [`Server::wait_for_shutdown`] re-checks the drain flag.
const SHUTDOWN_POLL: Duration = Duration::from_millis(10);

/// A running server: the service plus its TCP front end.
pub struct Server {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
    waker: Waker,
    reactor_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`), starts the service batcher
    /// and the reactor thread, and returns. Use [`Server::addr`] to
    /// learn the bound port when asking for an ephemeral one.
    pub fn spawn(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let service = Service::new(config);
        service.start();
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(TransportStats::default());

        let reactor = Reactor::new(
            listener,
            Arc::clone(&service),
            Arc::clone(&stats),
            Arc::clone(&stop),
        )?;
        let waker = reactor.waker();
        let reactor_handle = thread::Builder::new()
            .name("serve-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor");

        Ok(Server {
            service,
            addr: bound,
            stop,
            stats,
            waker,
            reactor_handle: Some(reactor_handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (tests inspect its stats directly).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Snapshot of the reactor's transport counters.
    pub fn transport(&self) -> TransportSnapshot {
        self.stats.snapshot()
    }

    /// True once a drain was requested (signal, `shutdown` verb, or
    /// [`Server::shutdown`]).
    pub fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested() || self.service.is_shutting_down()
    }

    /// Graceful drain: stop accepting, let connections finish their
    /// queued and in-flight work and hang up, drain the admission
    /// queue, join the batcher. Idempotent; called by `Drop` as a
    /// backstop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.begin_shutdown();
        self.waker.wake();
        if let Some(h) = self.reactor_handle.take() {
            let _ = h.join();
        }
        self.service.shutdown_and_join();
    }

    /// Blocks until a drain is requested, polling the signal flag. The
    /// `serve` binary parks its main thread here.
    pub fn wait_for_shutdown(&mut self) {
        while !self.draining() {
            thread::sleep(SHUTDOWN_POLL);
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
