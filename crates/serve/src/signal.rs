//! Minimal SIGINT/SIGTERM hook, dependency-free.
//!
//! The workspace takes no external crates, so instead of `libc`/`signal-hook`
//! this declares the C `signal(2)` entry point directly and installs a
//! handler that flips one atomic flag. The server's accept loop polls
//! [`requested`] and begins a graceful drain when it trips: stop
//! accepting, finish in-flight requests, exit 0.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM to the [`requested`] flag. On non-Unix
/// targets this is a no-op (the flag simply never trips).
#[cfg(unix)]
pub fn install() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
        signal(SIGTERM, handler as usize);
    }
}

/// No-op fallback for non-Unix targets.
#[cfg(not(unix))]
pub fn install() {}

/// True once a termination signal arrived (or [`request`] was called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Trips the flag programmatically (the `shutdown` protocol verb and
/// tests share the signal path).
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}
