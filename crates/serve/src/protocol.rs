//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! # Grammar
//!
//! Each request is one line. Either a bare verb:
//!
//! ```text
//! ping | stats | shutdown
//! ```
//!
//! or a JSON object (the same verbs are reachable as `{"verb":"stats"}`
//! for clients that only speak JSON):
//!
//! ```text
//! {"workload": "twolf", "policy": "postdoms", "config": {"max_cycles": 200000}}
//! ```
//!
//! * `workload` — a bundled benchmark, one of
//!   [`polyflow_workloads::names`]; **or** `program` — assembly text
//!   (the [`polyflow_isa::parse_program`] grammar) uploaded for
//!   simulation, exactly one of the two.
//! * `policy` — optional (default `postdoms`); any Figure 9 policy name,
//!   `superscalar`/`baseline`/`none` for the no-spawn baseline, or
//!   `rec_pred` for the dynamic reconvergence predictor (§4.4).
//! * `config` — optional overrides on the policy's base configuration
//!   (Figure 8 for spawn policies, the equivalent-resource superscalar
//!   for the baseline). See [`CONFIG_KEYS`].
//!
//! Uploaded programs share the result cache with bundled workloads
//! through the same content fingerprint the `verify` verb uses
//! ([`crate::verify::fingerprint`]): uploading a bundled benchmark's
//! canonical assembly lands on the very cache entry its name does.
//!
//! Every response is one line. Success:
//!
//! ```text
//! {"ok":true,"workload":"twolf","policy":"postdoms","result":{…SimResult + cycle account…}}
//! ```
//!
//! Failure (typed, never a panic, never a dropped connection):
//!
//! ```text
//! {"ok":false,"error":{"kind":"overloaded","message":"…"}}
//! ```
//!
//! The `result` member is byte-for-byte [`SimResult::to_json`] run
//! through [`json::compact`] — exactly what an offline
//! `try_simulate_with` of the same cell renders, which is what the
//! served-vs-offline determinism check diffs.
//!
//! [`SimResult::to_json`]: polyflow_sim::SimResult::to_json

use crate::json::{self, Json};
use polyflow_bench::parse_policy;
use polyflow_bench::sweep::Cell;
use polyflow_core::Policy;
use polyflow_sim::{DependenceMode, MachineConfig};
use std::fmt;

/// Typed protocol failure kinds (the `error.kind` wire values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a well-formed request.
    BadRequest,
    /// `workload` named no bundled benchmark.
    UnknownWorkload,
    /// `policy` named no known spawn policy.
    UnknownPolicy,
    /// Admission control shed the request: the queue was full.
    Overloaded,
    /// The request's `deadline_ms` elapsed before its result was ready
    /// (dropped in the queue, or timed out waiting on the batch).
    DeadlineExceeded,
    /// The simulator returned a typed [`SimError`]
    /// (watchdog trip, malformed trace, …).
    ///
    /// [`SimError`]: polyflow_sim::SimError
    SimFailed,
    /// The server is draining and accepts no new simulation work.
    ShuttingDown,
    /// The request died inside the service (a caught panic).
    Internal,
}

impl ErrorKind {
    /// The wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownWorkload => "unknown_workload",
            ErrorKind::UnknownPolicy => "unknown_policy",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::SimFailed => "sim_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed protocol error: kind plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The failure class.
    pub kind: ErrorKind,
    /// Detail for the client.
    pub message: String,
}

impl ServeError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or cache-serve) one simulation cell.
    Simulate(Box<SimRequest>),
    /// Run (or cache-serve) the lint pass over a workload or an
    /// uploaded program (see [`crate::verify`]).
    Verify(Box<crate::verify::VerifyRequest>),
    /// Report queue/cache/account observability counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Where a simulation request's program comes from.
#[derive(Debug, Clone)]
pub enum SimSource {
    /// A bundled benchmark (validated against
    /// [`polyflow_workloads::names`]).
    Bundled(&'static str),
    /// A program uploaded as assembly text, already parsed into a
    /// runtime workload (boxed — a parsed program is large next to the
    /// rest of the request).
    Uploaded(Box<polyflow_workloads::Workload>),
}

/// A validated simulation request.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The program to simulate.
    pub source: SimSource,
    /// What to run on it.
    pub cell: Cell,
    /// The effective machine configuration (base + request overrides).
    pub config: MachineConfig,
    /// The client's `deadline_ms` (capped server-side by
    /// `--max-deadline` at admission). Deliberately **not** part of the
    /// cache key: a deadline changes when a request gives up, never what
    /// its answer is.
    pub deadline_ms: Option<u64>,
    /// True when the client asked for the integrity trailer: the
    /// response line is followed by `\t` + 16 hex digits of FNV-1a over
    /// the line, so transport-level corruption (a flipped bit in a proxy
    /// or cable) is detectable. Not part of the cache key or the cached
    /// bytes — the trailer is computed at write time.
    pub integrity: bool,
}

impl SimRequest {
    /// Canonical policy label (`baseline`, `loop`, …, `rec_pred`): the
    /// cache-key component and the `policy` echoed in responses. Aliases
    /// (`superscalar`, `none`) normalize here, so they share cache
    /// entries.
    pub fn policy_label(&self) -> String {
        self.cell.label()
    }

    /// The `workload` label echoed in responses: the bundled name, or an
    /// upload's `.program` name (`program` when it has none).
    pub fn workload_label(&self) -> &str {
        match &self.source {
            SimSource::Bundled(name) => name,
            SimSource::Uploaded(w) => &w.name,
        }
    }

    /// The program's content fingerprint ([`crate::verify::fingerprint`])
    /// — the workload component of the result-cache key, shared between
    /// bundled-by-name and uploaded-by-content requests for the same
    /// program.
    pub fn fingerprint(&self) -> String {
        match &self.source {
            SimSource::Bundled(name) => bundled_fingerprint(name),
            SimSource::Uploaded(w) => crate::verify::fingerprint(&w.program),
        }
    }
}

/// Fingerprints of the bundled workloads, computed once on first touch
/// (each one is a program build plus a canonical rendering — too much
/// work to repeat on every request).
fn bundled_fingerprint(name: &str) -> String {
    use std::sync::OnceLock;
    static MAP: OnceLock<std::collections::HashMap<&'static str, String>> = OnceLock::new();
    MAP.get_or_init(|| {
        polyflow_workloads::names()
            .iter()
            .map(|n| {
                let w = polyflow_workloads::by_name(n).expect("bundled name");
                (*n, crate::verify::fingerprint(&w.program))
            })
            .collect()
    })[name]
        .clone()
}

/// The `config` override keys a request may carry, with the field each
/// one sets. Everything else about the machine is fixed by the paper's
/// Figure 8 (or its superscalar equivalent) — predictor geometry is
/// deliberately not overridable so every cached cell shares the
/// process-wide prepared traces.
pub const CONFIG_KEYS: &[&str] = &[
    "max_cycles",
    "max_tasks",
    "fetch_tasks_per_cycle",
    "max_spawn_distance",
    "min_spawn_distance",
    "divert_release_delay",
    "spawn_overhead_cycles",
    "squash_penalty",
    "hint_register_slots",
    "livelock_window",
    "store_sets",
    "reg_hints",
    "profitability_feedback",
];

/// Upper bound on requested task contexts (the paper's machine has 8;
/// this only guards against absurd allocations, not design exploration).
const MAX_TASKS_LIMIT: usize = 64;

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::new(ErrorKind::BadRequest, msg)
}

/// Parses and validates one request line. `default_max_cycles` is the
/// server's per-request watchdog, applied when the request does not set
/// its own tighter budget.
pub fn parse_request(line: &str, default_max_cycles: u64) -> Result<Request, ServeError> {
    let line = line.trim();
    match line {
        "ping" => return Ok(Request::Ping),
        "stats" => return Ok(Request::Stats),
        "shutdown" => return Ok(Request::Shutdown),
        _ => {}
    }
    if !line.starts_with('{') {
        return Err(bad(format!(
            "expected a JSON object or one of ping/stats/shutdown, got `{}`",
            truncate(line, 40)
        )));
    }
    let v = json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    if let Some(verb) = v.get("verb") {
        return match verb.as_str() {
            Some("ping") => bare_verb(&v, "ping").map(|()| Request::Ping),
            Some("stats") => bare_verb(&v, "stats").map(|()| Request::Stats),
            Some("shutdown") => bare_verb(&v, "shutdown").map(|()| Request::Shutdown),
            Some("simulate") => parse_simulate(&v, default_max_cycles),
            Some("verify") => parse_verify(&v),
            _ => Err(bad(
                "unknown verb (ping, stats, shutdown, simulate, verify)",
            )),
        };
    }
    parse_simulate(&v, default_max_cycles)
}

/// A bare verb in JSON form carries no other fields — the object form
/// must be exactly as strict as the bare line, so a misspelled or
/// misplaced field is a typed rejection, not silently dropped intent.
fn bare_verb(v: &Json, verb: &str) -> Result<(), ServeError> {
    let obj = v.as_obj().ok_or_else(|| bad("request must be an object"))?;
    for key in obj.keys() {
        if key != "verb" {
            return Err(bad(format!("`{verb}` takes no field `{key}`")));
        }
    }
    Ok(())
}

fn parse_simulate(v: &Json, default_max_cycles: u64) -> Result<Request, ServeError> {
    let obj = v.as_obj().ok_or_else(|| bad("request must be an object"))?;
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "verb" | "workload" | "program" | "policy" | "config" | "deadline_ms" | "integrity"
        ) {
            return Err(bad(format!(
                "unknown request field `{key}` \
                 (workload, program, policy, config, deadline_ms, integrity)"
            )));
        }
    }
    let source = match (v.get("workload"), v.get("program")) {
        (Some(_), Some(_)) => {
            return Err(bad("simulate takes `workload` or `program`, not both"));
        }
        (None, None) => {
            return Err(bad(
                "missing required string field `workload` (or a `program` upload)",
            ));
        }
        (Some(w), None) => {
            let name = w
                .as_str()
                .ok_or_else(|| bad("`workload` must be a string"))?;
            let name = polyflow_workloads::names()
                .iter()
                .find(|n| **n == name)
                .copied()
                .ok_or_else(|| {
                    ServeError::new(
                        ErrorKind::UnknownWorkload,
                        format!(
                            "unknown workload `{name}` (one of: {})",
                            polyflow_workloads::names().join(", ")
                        ),
                    )
                })?;
            SimSource::Bundled(name)
        }
        (None, Some(p)) => {
            let asm = p
                .as_str()
                .ok_or_else(|| bad("`program` must be a string"))?;
            let workload = polyflow_workloads::from_asm_str(asm, "program")
                .map_err(|e| bad(format!("program does not assemble: {e}")))?;
            SimSource::Uploaded(Box::new(workload))
        }
    };

    let policy_name = match v.get("policy") {
        None => "postdoms",
        Some(p) => p.as_str().ok_or_else(|| bad("`policy` must be a string"))?,
    };
    let cell = parse_cell(policy_name)?;

    let mut config = match cell {
        Cell::Baseline => MachineConfig::superscalar(),
        _ => MachineConfig::hpca07(),
    };
    config.max_cycles = default_max_cycles;
    if let Some(overrides) = v.get("config") {
        apply_overrides(&mut config, overrides)?;
    }

    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => {
            let ms = d
                .as_u64()
                .ok_or_else(|| bad("`deadline_ms` must be a non-negative integer"))?;
            if ms == 0 {
                return Err(bad("`deadline_ms` must be positive"));
            }
            Some(ms)
        }
    };
    let integrity = match v.get("integrity") {
        None => false,
        Some(b) => b
            .as_bool()
            .ok_or_else(|| bad("`integrity` must be a boolean"))?,
    };
    Ok(Request::Simulate(Box::new(SimRequest {
        source,
        cell,
        config,
        deadline_ms,
        integrity,
    })))
}

/// Parses a `{"verb":"verify", …}` request: exactly one of `workload`
/// (a bundled benchmark name) or `program` (assembly text, the
/// [`polyflow_isa::parse_program`] grammar). Assembly that does not
/// parse is the client's mistake — a typed `bad_request` carrying the
/// assembler's line/column diagnostic, never a dropped connection.
fn parse_verify(v: &Json) -> Result<Request, ServeError> {
    let obj = v.as_obj().ok_or_else(|| bad("request must be an object"))?;
    for key in obj.keys() {
        if !matches!(key.as_str(), "verb" | "workload" | "program") {
            return Err(bad(format!(
                "unknown verify field `{key}` (workload, program)"
            )));
        }
    }
    let workload = v.get("workload");
    let source = v.get("program");
    let program = match (workload, source) {
        (Some(_), Some(_)) => {
            return Err(bad("verify takes `workload` or `program`, not both"));
        }
        (None, None) => {
            return Err(bad("verify needs a `workload` name or a `program` upload"));
        }
        (Some(w), None) => {
            let name = w
                .as_str()
                .ok_or_else(|| bad("`workload` must be a string"))?;
            polyflow_workloads::by_name(name)
                .ok_or_else(|| {
                    ServeError::new(
                        ErrorKind::UnknownWorkload,
                        format!(
                            "unknown workload `{name}` (one of: {})",
                            polyflow_workloads::names().join(", ")
                        ),
                    )
                })?
                .program
        }
        (None, Some(p)) => {
            let asm = p
                .as_str()
                .ok_or_else(|| bad("`program` must be a string"))?;
            polyflow_isa::parse_program(asm)
                .map_err(|e| bad(format!("program does not assemble: {e}")))?
        }
    };
    Ok(Request::Verify(Box::new(
        crate::verify::VerifyRequest::new(program),
    )))
}

/// Maps a protocol policy name to a grid cell. `rec_pred` (Figure 12's
/// dynamic predictor) is a serve extension over
/// [`polyflow_bench::parse_policy`].
pub fn parse_cell(name: &str) -> Result<Cell, ServeError> {
    if name == "rec_pred" {
        return Ok(Cell::Reconv);
    }
    match parse_policy(name) {
        Some(Policy::None) => Ok(Cell::Baseline),
        Some(p) => Ok(Cell::Static(p)),
        None => Err(ServeError::new(
            ErrorKind::UnknownPolicy,
            format!(
                "unknown policy `{name}` (one of: {}, rec_pred)",
                polyflow_bench::POLICY_NAMES.join(", ")
            ),
        )),
    }
}

fn apply_overrides(config: &mut MachineConfig, overrides: &Json) -> Result<(), ServeError> {
    let obj = overrides
        .as_obj()
        .ok_or_else(|| bad("`config` must be an object"))?;
    for (key, value) in obj {
        let num = || {
            value.as_u64().ok_or_else(|| {
                bad(format!(
                    "config field `{key}` must be a non-negative integer"
                ))
            })
        };
        let flag = || {
            value
                .as_bool()
                .ok_or_else(|| bad(format!("config field `{key}` must be a boolean")))
        };
        let positive = |n: u64| -> Result<u64, ServeError> {
            if n == 0 {
                Err(bad(format!("config field `{key}` must be positive")))
            } else {
                Ok(n)
            }
        };
        match key.as_str() {
            "max_cycles" => config.max_cycles = positive(num()?)?,
            "max_tasks" => {
                let n = positive(num()?)? as usize;
                if n > MAX_TASKS_LIMIT {
                    return Err(bad(format!("max_tasks capped at {MAX_TASKS_LIMIT}")));
                }
                config.max_tasks = n;
            }
            "fetch_tasks_per_cycle" => {
                config.fetch_tasks_per_cycle = positive(num()?)? as usize;
            }
            "max_spawn_distance" => config.max_spawn_distance = num()? as u32,
            "min_spawn_distance" => config.min_spawn_distance = num()? as u32,
            "divert_release_delay" => config.divert_release_delay = num()?,
            "spawn_overhead_cycles" => config.spawn_overhead_cycles = num()?,
            "squash_penalty" => config.squash_penalty = num()?,
            "hint_register_slots" => config.hint_register_slots = positive(num()?)? as usize,
            "livelock_window" => config.livelock_window = positive(num()?)?,
            "store_sets" => {
                config.memory_dependence = if flag()? {
                    DependenceMode::StoreSet
                } else {
                    DependenceMode::OracleSync
                };
            }
            "reg_hints" => {
                config.register_dependence = if flag()? {
                    DependenceMode::StoreSet
                } else {
                    DependenceMode::OracleSync
                };
            }
            "profitability_feedback" => config.profitability_feedback = flag()?,
            _ => {
                return Err(bad(format!(
                    "unknown config field `{key}` (known: {})",
                    CONFIG_KEYS.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// Renders the success response line for a simulation. `result` must
/// already be compact single-line JSON ([`json::compact`] of
/// [`SimResult::to_json`]).
///
/// [`SimResult::to_json`]: polyflow_sim::SimResult::to_json
pub fn ok_response(workload: &str, policy_label: &str, result: &str) -> String {
    format!(
        "{{\"ok\":true,\"workload\":\"{}\",\"policy\":\"{}\",\"result\":{result}}}",
        json::escape(workload),
        json::escape(policy_label),
    )
}

/// Appends the integrity trailer to a response line: `\t` + 16 hex
/// digits of FNV-1a over the line's bytes. Sent only to requests that
/// set `"integrity":true`, so the cached/offline bytes never change.
pub fn with_integrity_trailer(line: &str) -> String {
    format!("{line}\t{:016x}", crate::journal::fnv1a(line.as_bytes()))
}

/// Splits a received line into `(body, trailer_state)`:
/// `None` = no trailer present, `Some(true)` = trailer verified,
/// `Some(false)` = trailer present but wrong (the line was corrupted in
/// flight — discard and retry, never trust the body).
pub fn check_integrity_trailer(line: &str) -> (&str, Option<bool>) {
    match line.rsplit_once('\t') {
        Some((body, trailer)) if trailer.len() == 16 => {
            let expect = format!("{:016x}", crate::journal::fnv1a(body.as_bytes()));
            (body, Some(trailer == expect))
        }
        _ => (line, None),
    }
}

/// Renders the error response line for `e`.
pub fn error_response(e: &ServeError) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
        e.kind.label(),
        json::escape(&e.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = u64::MAX;

    #[test]
    fn verbs_parse_both_ways() {
        assert!(matches!(parse_request("ping", BUDGET), Ok(Request::Ping)));
        assert!(matches!(
            parse_request(" stats \n", BUDGET),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request("{\"verb\":\"shutdown\"}", BUDGET),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn simulate_defaults_and_aliases() {
        let Request::Simulate(r) = parse_request("{\"workload\":\"twolf\"}", BUDGET).unwrap()
        else {
            panic!("not a simulate")
        };
        assert_eq!(r.workload_label(), "twolf");
        assert_eq!(r.policy_label(), "postdoms");
        assert_eq!(r.config.max_tasks, MachineConfig::hpca07().max_tasks);

        for alias in ["superscalar", "baseline", "none"] {
            let line = format!("{{\"workload\":\"gzip\",\"policy\":\"{alias}\"}}");
            let Request::Simulate(r) = parse_request(&line, BUDGET).unwrap() else {
                panic!("not a simulate")
            };
            assert_eq!(r.policy_label(), "baseline", "{alias} normalizes");
            assert_eq!(r.config.max_tasks, 1, "baseline is the superscalar");
        }

        let Request::Simulate(r) =
            parse_request("{\"workload\":\"mcf\",\"policy\":\"rec_pred\"}", BUDGET).unwrap()
        else {
            panic!("not a simulate")
        };
        assert!(matches!(r.cell, Cell::Reconv));
    }

    #[test]
    fn simulate_accepts_an_uploaded_program() {
        let twolf = polyflow_workloads::by_name("twolf").unwrap().program;
        let asm = polyflow_isa::to_asm(&twolf);
        let line = format!(
            "{{\"program\":\"{}\",\"policy\":\"loop\"}}",
            crate::json::escape(&asm)
        );
        let Request::Simulate(up) = parse_request(&line, BUDGET).unwrap() else {
            panic!("not a simulate")
        };
        assert_eq!(up.workload_label(), "twolf", "label from `.program`");
        assert_eq!(up.policy_label(), "loop");

        // The canonical upload shares its cache identity with the
        // bundled name — one entry either way.
        let Request::Simulate(named) = parse_request("{\"workload\":\"twolf\"}", BUDGET).unwrap()
        else {
            panic!("not a simulate")
        };
        assert_eq!(up.fingerprint(), named.fingerprint());

        // An upload without a `.program` directive falls back to the
        // generic label and a distinct fingerprint.
        let line = "{\"verb\":\"simulate\",\"program\":\"fn main {\\n halt\\n}\"}";
        let Request::Simulate(r) = parse_request(line, BUDGET).unwrap() else {
            panic!("not a simulate")
        };
        assert_eq!(r.workload_label(), "program");
        assert_ne!(r.fingerprint(), named.fingerprint());
    }

    #[test]
    fn bare_verbs_reject_unknown_fields() {
        // The JSON form of ping/stats/shutdown is exactly as strict as
        // the bare line: any extra field is a typed rejection.
        let cases = [
            "{\"verb\":\"ping\",\"workload\":\"twolf\"}",
            "{\"verb\":\"stats\",\"detail\":true}",
            "{\"verb\":\"shutdown\",\"force\":1}",
            "{\"verb\":\"ping\",\"verb2\":\"ping\"}",
        ];
        for line in cases {
            let e = parse_request(line, BUDGET).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "`{line}` → {e}");
            assert!(e.message.contains("takes no field"), "`{line}` → {e}");
        }
    }

    #[test]
    fn config_overrides_apply() {
        let line = "{\"workload\":\"twolf\",\"policy\":\"postdoms\",\"config\":{\
                     \"max_cycles\":12345,\"max_tasks\":4,\"store_sets\":true,\
                     \"profitability_feedback\":false}}";
        let Request::Simulate(r) = parse_request(line, BUDGET).unwrap() else {
            panic!("not a simulate")
        };
        assert_eq!(r.config.max_cycles, 12_345);
        assert_eq!(r.config.max_tasks, 4);
        assert_eq!(r.config.memory_dependence, DependenceMode::StoreSet);
        assert!(!r.config.profitability_feedback);
    }

    #[test]
    fn default_budget_applies_when_unset() {
        let Request::Simulate(r) = parse_request("{\"workload\":\"twolf\"}", 777).unwrap() else {
            panic!("not a simulate")
        };
        assert_eq!(r.config.max_cycles, 777);
    }

    #[test]
    fn typed_rejections() {
        let cases: &[(&str, ErrorKind)] = &[
            ("not json at all", ErrorKind::BadRequest),
            ("{\"policy\":\"loop\"}", ErrorKind::BadRequest),
            ("{\"workload\":\"eon\"}", ErrorKind::UnknownWorkload),
            (
                "{\"workload\":\"twolf\",\"policy\":\"fastest\"}",
                ErrorKind::UnknownPolicy,
            ),
            (
                "{\"workload\":\"twolf\",\"frobnicate\":1}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"workload\":\"twolf\",\"config\":{\"gshare_index_bits\":20}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"workload\":\"twolf\",\"config\":{\"max_tasks\":0}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"workload\":\"twolf\",\"config\":{\"max_tasks\":1000}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"workload\":\"twolf\",\"config\":{\"max_cycles\":true}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"workload\":\"twolf\",\"program\":\"fn main { halt }\"}",
                ErrorKind::BadRequest,
            ),
            ("{\"program\":42}", ErrorKind::BadRequest),
            (
                "{\"program\":\"fn main { frobnicate r1 }\"}",
                ErrorKind::BadRequest,
            ),
        ];
        for (line, kind) in cases {
            let e = parse_request(line, BUDGET).unwrap_err();
            assert_eq!(e.kind, *kind, "`{line}` → {e}");
        }
    }

    #[test]
    fn verify_parses_workload_and_upload() {
        let Request::Verify(r) =
            parse_request("{\"verb\":\"verify\",\"workload\":\"twolf\"}", BUDGET).unwrap()
        else {
            panic!("not a verify")
        };
        let twolf = polyflow_workloads::by_name("twolf").unwrap().program;
        assert_eq!(r.fingerprint, crate::verify::fingerprint(&twolf));

        // Uploading the same program (as its canonical assembly) lands on
        // the same fingerprint — one cache entry either way.
        let asm = polyflow_isa::to_asm(&twolf);
        let line = format!(
            "{{\"verb\":\"verify\",\"program\":\"{}\"}}",
            crate::json::escape(&asm)
        );
        let Request::Verify(up) = parse_request(&line, BUDGET).unwrap() else {
            panic!("not a verify")
        };
        assert_eq!(up.fingerprint, r.fingerprint);
    }

    #[test]
    fn verify_typed_rejections() {
        let cases: &[(&str, ErrorKind)] = &[
            ("{\"verb\":\"verify\"}", ErrorKind::BadRequest),
            (
                "{\"verb\":\"verify\",\"workload\":\"twolf\",\"program\":\"fn main { halt }\"}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"verb\":\"verify\",\"workload\":\"eon\"}",
                ErrorKind::UnknownWorkload,
            ),
            (
                "{\"verb\":\"verify\",\"program\":\"fn main { frobnicate r1 }\"}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"verb\":\"verify\",\"program\":42}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"verb\":\"verify\",\"workload\":\"twolf\",\"policy\":\"loop\"}",
                ErrorKind::BadRequest,
            ),
        ];
        for (line, kind) in cases {
            let e = parse_request(line, BUDGET).unwrap_err();
            assert_eq!(e.kind, *kind, "`{line}` → {e}");
        }
        // The assembler's position lands in the message.
        let e = parse_request(
            "{\"verb\":\"verify\",\"program\":\"fn main { frobnicate r1 }\"}",
            BUDGET,
        )
        .unwrap_err();
        assert!(e.message.contains("does not assemble"), "{}", e.message);
    }

    #[test]
    fn deadline_and_integrity_fields_parse_and_reject() {
        let line = "{\"workload\":\"twolf\",\"deadline_ms\":250,\"integrity\":true}";
        let Request::Simulate(r) = parse_request(line, BUDGET).unwrap() else {
            panic!("not a simulate")
        };
        assert_eq!(r.deadline_ms, Some(250));
        assert!(r.integrity);

        let Request::Simulate(r) = parse_request("{\"workload\":\"twolf\"}", BUDGET).unwrap()
        else {
            panic!("not a simulate")
        };
        assert_eq!(r.deadline_ms, None);
        assert!(!r.integrity);

        for bad_line in [
            "{\"workload\":\"twolf\",\"deadline_ms\":0}",
            "{\"workload\":\"twolf\",\"deadline_ms\":\"soon\"}",
            "{\"workload\":\"twolf\",\"integrity\":1}",
        ] {
            let e = parse_request(bad_line, BUDGET).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "`{bad_line}` → {e}");
        }
    }

    #[test]
    fn integrity_trailer_round_trips_and_catches_corruption() {
        let line = "{\"ok\":true,\"pong\":true}";
        let framed = with_integrity_trailer(line);
        let (body, state) = check_integrity_trailer(&framed);
        assert_eq!(body, line);
        assert_eq!(state, Some(true));

        // Flip one bit anywhere in the framed line: the check fails.
        for i in 0..framed.len() {
            let mut bytes = framed.clone().into_bytes();
            bytes[i] ^= 0x01;
            if let Ok(corrupt) = String::from_utf8(bytes) {
                let (_, state) = check_integrity_trailer(&corrupt);
                assert_ne!(state, Some(true), "bit flip at {i} must not verify");
            }
        }

        // No trailer: body passes through, state is None.
        assert_eq!(check_integrity_trailer(line), (line, None));
    }

    #[test]
    fn responses_are_single_line_json() {
        let ok = ok_response("twolf", "postdoms", "{\"cycles\":1}");
        assert_eq!(
            ok,
            "{\"ok\":true,\"workload\":\"twolf\",\"policy\":\"postdoms\",\
             \"result\":{\"cycles\":1}}"
        );
        let err = error_response(&ServeError::new(ErrorKind::Overloaded, "queue full\nline2"));
        assert!(!err.contains('\n'));
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("overloaded")
        );
        assert_eq!(
            v.get("error").unwrap().get("message").unwrap().as_str(),
            Some("queue full\nline2")
        );
    }
}
