//! A seeded fault-injection TCP proxy.
//!
//! Sits between a client and the server and corrupts the conversation
//! with a distribution-controlled, [`SplitMix64`]-seeded schedule of
//! fault operators — the network-layer sibling of the simulator's
//! trace-corruption operators from the fault-injection harness. The
//! operators cover the failure modes a deployed service actually sees:
//!
//! | operator | what the client observes |
//! |---|---|
//! | [`Fault::Clean`] | the exchange passes through untouched |
//! | [`Fault::Delay`] | the response arrives late (deadline pressure) |
//! | [`Fault::Reset`] | connection reset mid-response |
//! | [`Fault::Truncate`] | a byte-truncated response, then EOF |
//! | [`Fault::BitFlip`] | a corrupted payload that still *looks* like a response — must be caught by the integrity trailer or the parse, never accepted |
//! | [`Fault::BlackHole`] | the connection accepts but never answers (timeout pressure) |
//!
//! Faults are decided **per exchange** (per request/response pair), not
//! per connection: a long-lived connection keeps rolling the dice on
//! every request, so operators keep firing no matter how clients pool
//! connections. The schedule depends only on the seed and the order of
//! exchanges within a connection — each connection handler derives its
//! own RNG from the proxy seed and a connection counter, so concurrent
//! connections do not perturb each other's schedules.
//!
//! The proxy is std-only and transparent to the protocol: it never
//! parses JSON, only newline framing (it must know where a response
//! ends to truncate or flip it).
//!
//! [`SplitMix64`]: polyflow_isa::rng::SplitMix64

use polyflow_isa::rng::SplitMix64;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One fault operator, drawn per exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass the exchange through untouched.
    Clean,
    /// Hold the response for the configured delay, then deliver it.
    Delay,
    /// Forward a prefix of the response, then reset the connection.
    Reset,
    /// Forward a prefix of the response (no newline), then close.
    Truncate,
    /// Flip one payload bit (never creating a newline), then deliver.
    BitFlip,
    /// Never answer; discard the request and hold the socket open.
    BlackHole,
}

/// Fault mix in percent; the remainder is [`Fault::Clean`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Upstream (real server) address.
    pub upstream: String,
    /// RNG seed for the fault schedule.
    pub seed: u64,
    /// Percent of exchanges delayed.
    pub delay_pct: u32,
    /// Percent of exchanges reset mid-response.
    pub reset_pct: u32,
    /// Percent of exchanges truncated.
    pub truncate_pct: u32,
    /// Percent of exchanges bit-flipped.
    pub bitflip_pct: u32,
    /// Percent of exchanges black-holed.
    pub blackhole_pct: u32,
    /// How long a delayed exchange is held (and how long a black-holed
    /// connection is parked before being dropped).
    pub delay: Duration,
}

impl ChaosConfig {
    /// A proxy for `upstream` with every operator disabled.
    pub fn clean(upstream: impl Into<String>, seed: u64) -> ChaosConfig {
        ChaosConfig {
            upstream: upstream.into(),
            seed,
            delay_pct: 0,
            reset_pct: 0,
            truncate_pct: 0,
            bitflip_pct: 0,
            blackhole_pct: 0,
            delay: Duration::from_millis(20),
        }
    }

    fn validate(&self) {
        let total = self.delay_pct
            + self.reset_pct
            + self.truncate_pct
            + self.bitflip_pct
            + self.blackhole_pct;
        assert!(total <= 100, "fault percentages exceed 100 ({total})");
    }

    /// Draws the fault for the next exchange.
    fn draw(&self, rng: &mut SplitMix64) -> Fault {
        let roll = rng.below(100) as u32;
        let mut edge = self.delay_pct;
        if roll < edge {
            return Fault::Delay;
        }
        edge += self.reset_pct;
        if roll < edge {
            return Fault::Reset;
        }
        edge += self.truncate_pct;
        if roll < edge {
            return Fault::Truncate;
        }
        edge += self.bitflip_pct;
        if roll < edge {
            return Fault::BitFlip;
        }
        edge += self.blackhole_pct;
        if roll < edge {
            return Fault::BlackHole;
        }
        Fault::Clean
    }
}

/// How many exchanges each operator has corrupted.
#[derive(Debug, Default)]
pub struct FaultCounts {
    /// Untouched exchanges.
    pub clean: AtomicU64,
    /// Delayed exchanges.
    pub delay: AtomicU64,
    /// Mid-response resets.
    pub reset: AtomicU64,
    /// Truncated responses.
    pub truncate: AtomicU64,
    /// Bit-flipped responses.
    pub bitflip: AtomicU64,
    /// Black-holed exchanges.
    pub blackhole: AtomicU64,
}

impl FaultCounts {
    fn bump(&self, fault: Fault) {
        let c = match fault {
            Fault::Clean => &self.clean,
            Fault::Delay => &self.delay,
            Fault::Reset => &self.reset,
            Fault::Truncate => &self.truncate,
            Fault::BitFlip => &self.bitflip,
            Fault::BlackHole => &self.blackhole,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// `(clean, delay, reset, truncate, bitflip, blackhole)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.clean.load(Ordering::Relaxed),
            self.delay.load(Ordering::Relaxed),
            self.reset.load(Ordering::Relaxed),
            self.truncate.load(Ordering::Relaxed),
            self.bitflip.load(Ordering::Relaxed),
            self.blackhole.load(Ordering::Relaxed),
        )
    }

    /// True once every *enabled* operator has fired at least once.
    pub fn all_enabled_fired(&self, config: &ChaosConfig) -> bool {
        let (_, delay, reset, truncate, bitflip, blackhole) = self.snapshot();
        (config.delay_pct == 0 || delay > 0)
            && (config.reset_pct == 0 || reset > 0)
            && (config.truncate_pct == 0 || truncate > 0)
            && (config.bitflip_pct == 0 || bitflip > 0)
            && (config.blackhole_pct == 0 || blackhole > 0)
    }
}

/// The running proxy: a listener thread plus per-connection handlers.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    counts: Arc<FaultCounts>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen_addr` (use port 0 for an ephemeral port) and starts
    /// proxying to `config.upstream`.
    pub fn spawn(listen_addr: &str, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        config.validate();
        let listener = TcpListener::bind(listen_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let counts = Arc::new(FaultCounts::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let counts = Arc::clone(&counts);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(listener, config, counts, stop))
                .expect("spawn chaos accept loop")
        };
        Ok(ChaosProxy {
            addr,
            counts,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared fault counters.
    pub fn counts(&self) -> Arc<FaultCounts> {
        Arc::clone(&self.counts)
    }

    /// Stops accepting and joins the accept thread. In-flight handler
    /// threads see the stop flag at their next read timeout and exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    config: ChaosConfig,
    counts: Arc<FaultCounts>,
    stop: Arc<AtomicBool>,
) {
    let mut conn_index = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                // Each connection gets an RNG derived from (seed, index)
                // so its fault schedule is independent of accept-order
                // races between other connections.
                let mut rng =
                    SplitMix64::new(config.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Burn one draw to decorrelate low indices.
                let _ = rng.next_u64();
                conn_index += 1;
                let config = config.clone();
                let counts = Arc::clone(&counts);
                let stop = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("chaos-conn".into())
                    .spawn(move || handle_connection(client, config, rng, counts, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Proxies one client connection, one request/response exchange at a
/// time, applying a freshly drawn fault to each exchange.
fn handle_connection(
    client: TcpStream,
    config: ChaosConfig,
    mut rng: SplitMix64,
    counts: Arc<FaultCounts>,
    stop: Arc<AtomicBool>,
) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = client.set_nodelay(true);
    let mut client_writer = match client.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut client_reader = BufReader::new(client);

    // One upstream connection per client connection, opened lazily so a
    // black-holed exchange never even touches the server.
    let mut upstream: Option<(BufReader<TcpStream>, TcpStream)> = None;

    loop {
        // Read one request line from the client.
        let mut request = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match client_reader.read_until(b'\n', &mut request) {
                Ok(0) => return, // client went away
                Ok(_) if request.ends_with(b"\n") => break,
                Ok(_) => continue, // partial line before timeout
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => return,
            }
        }

        let fault = config.draw(&mut rng);
        counts.bump(fault);

        if fault == Fault::BlackHole {
            // Swallow the request; never answer. Park briefly so the
            // client's read times out on its own schedule, then drop the
            // connection without a byte.
            std::thread::sleep(config.delay);
            return;
        }

        // Forward the request and collect the full response line.
        let response = match forward(&mut upstream, &config, &request, &stop) {
            Some(r) => r,
            None => return, // upstream unreachable: looks like a reset
        };

        let deliver: Option<Vec<u8>> = match fault {
            Fault::Clean => Some(response),
            Fault::Delay => {
                std::thread::sleep(config.delay);
                Some(response)
            }
            Fault::Reset | Fault::Truncate => {
                // Send a strict prefix with the newline gone, then kill
                // the connection — Reset aborts hard (RST via SO_LINGER
                // 0 where available; a plain close after partial write
                // is observationally a truncated reply, which is the
                // invariant we test either way).
                let cut = 1 + rng.index(response.len().saturating_sub(1).max(1));
                let _ = client_writer.write_all(&response[..cut.min(response.len() - 1)]);
                let _ = client_writer.flush();
                return;
            }
            Fault::BitFlip => {
                let mut bytes = response;
                // Flip one bit somewhere in the payload, avoiding the
                // terminating newline and never *creating* a newline
                // (that would re-frame the stream instead of corrupting
                // the payload).
                if bytes.len() > 1 {
                    loop {
                        let i = rng.index(bytes.len() - 1);
                        let bit = 1u8 << rng.index(8);
                        let flipped = bytes[i] ^ bit;
                        if flipped != b'\n' {
                            bytes[i] = flipped;
                            break;
                        }
                    }
                }
                Some(bytes)
            }
            Fault::BlackHole => unreachable!("handled above"),
        };

        if let Some(bytes) = deliver {
            if client_writer.write_all(&bytes).is_err() || client_writer.flush().is_err() {
                return;
            }
        }
    }
}

/// Sends `request` upstream (connecting on first use) and reads one
/// newline-terminated response. `None` means the upstream conversation
/// failed — the caller drops the client connection, which the client
/// sees as a transport error.
fn forward(
    upstream: &mut Option<(BufReader<TcpStream>, TcpStream)>,
    config: &ChaosConfig,
    request: &[u8],
    stop: &AtomicBool,
) -> Option<Vec<u8>> {
    if upstream.is_none() {
        let stream = TcpStream::connect(&config.upstream).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_millis(250)))
            .ok()?;
        let writer = stream.try_clone().ok()?;
        *upstream = Some((BufReader::new(stream), writer));
    }
    let (reader, writer) = upstream.as_mut()?;
    writer.write_all(request).ok()?;
    writer.flush().ok()?;
    let mut response = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match reader.read_until(b'\n', &mut response) {
            Ok(0) => return None,
            Ok(_) if response.ends_with(b"\n") => return Some(response),
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream that echoes each request line back with a prefix.
    fn echo_upstream() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            if stop2.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let stop3 = Arc::clone(&stop2);
                    std::thread::spawn(move || {
                        stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .unwrap();
                        let mut writer = stream.try_clone().unwrap();
                        let mut reader = BufReader::new(stream);
                        loop {
                            if stop3.load(Ordering::SeqCst) {
                                return;
                            }
                            let mut line = String::new();
                            match reader.read_line(&mut line) {
                                Ok(0) => return,
                                Ok(_) if line.ends_with('\n') => {
                                    let reply = format!("echo:{}", line.trim_end());
                                    if writeln!(writer, "{reply}").is_err() {
                                        return;
                                    }
                                }
                                Ok(_) => continue,
                                Err(e)
                                    if e.kind() == std::io::ErrorKind::WouldBlock
                                        || e.kind() == std::io::ErrorKind::TimedOut =>
                                {
                                    continue
                                }
                                Err(_) => return,
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        });
        (addr, stop, handle)
    }

    fn exchange(addr: std::net::SocketAddr, line: &str) -> std::io::Result<String> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(1)))?;
        let mut writer = stream.try_clone()?;
        writeln!(writer, "{line}")?;
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply)?;
        if reply.ends_with('\n') {
            reply.pop();
            Ok(reply)
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated",
            ))
        }
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let (upstream, stop, h) = echo_upstream();
        let mut proxy = ChaosProxy::spawn("127.0.0.1:0", ChaosConfig::clean(upstream, 1)).unwrap();
        for i in 0..5 {
            let msg = format!("hello-{i}");
            assert_eq!(exchange(proxy.addr(), &msg).unwrap(), format!("echo:{msg}"));
        }
        assert_eq!(proxy.counts().snapshot().0, 5, "five clean exchanges");
        proxy.shutdown();
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let config = ChaosConfig {
            delay_pct: 10,
            reset_pct: 15,
            truncate_pct: 15,
            bitflip_pct: 10,
            blackhole_pct: 5,
            ..ChaosConfig::clean("unused:0", 0xC0FFEE)
        };
        let draw_seq = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..64).map(|_| config.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw_seq(7), draw_seq(7));
        assert_ne!(draw_seq(7), draw_seq(8));
        // The mix is honest: every operator appears in a long run.
        let mut rng = SplitMix64::new(0xC0FFEE);
        let seq: Vec<Fault> = (0..2000).map(|_| config.draw(&mut rng)).collect();
        for f in [
            Fault::Clean,
            Fault::Delay,
            Fault::Reset,
            Fault::Truncate,
            Fault::BitFlip,
            Fault::BlackHole,
        ] {
            assert!(seq.contains(&f), "{f:?} never drawn in 2000 exchanges");
        }
    }

    #[test]
    fn all_operators_observable_through_the_wire() {
        let (upstream, stop, h) = echo_upstream();
        let config = ChaosConfig {
            delay_pct: 10,
            reset_pct: 12,
            truncate_pct: 12,
            bitflip_pct: 12,
            blackhole_pct: 6,
            delay: Duration::from_millis(5),
            ..ChaosConfig::clean(upstream, 0xFACE)
        };
        let check = config.clone();
        let mut proxy = ChaosProxy::spawn("127.0.0.1:0", config).unwrap();
        let mut corrupted = 0u64;
        let mut failed = 0u64;
        let mut ok = 0u64;
        for i in 0..160 {
            let msg = format!("m{i}");
            match exchange(proxy.addr(), &msg) {
                Ok(reply) if reply == format!("echo:{msg}") => ok += 1,
                Ok(_) => corrupted += 1, // bit-flipped but framed
                Err(_) => failed += 1,   // reset/truncate/blackhole
            }
        }
        let counts = proxy.counts();
        assert!(
            counts.all_enabled_fired(&check),
            "some operator never fired: {:?}",
            counts.snapshot()
        );
        assert!(ok > 0 && failed > 0 && corrupted > 0);
        // No silent wrong answers that *parse back to the wrong echo*:
        // every corrupted reply differs from the expected bytes, which
        // is exactly what the integrity trailer catches at the protocol
        // layer.
        proxy.shutdown();
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
    }
}
