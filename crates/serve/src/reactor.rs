//! The readiness-based connection core: one thread, `poll(2)`, and a
//! per-connection state machine.
//!
//! The original transport spawned one thread per connection, which made
//! connection count the service's scaling ceiling: N open connections
//! cost N stacks plus N wakeups per read-timeout tick, and the process
//! thread limit becomes the shed point long before the simulator does.
//! This module replaces that with a single reactor thread driving every
//! connection through nonblocking sockets:
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!              │                 reactor loop               │
//!              │  poll(listener, waker, conns…)             │
//!              │    ├─ accept  → new Conn (nonblocking)     │
//!              │    ├─ readable→ read → split lines → inbox │
//!              │    ├─ inbox   → parse → execute            │
//!              │    │     verbs: answered inline            │
//!              │    │     simulate: Service::enqueue        │
//!              │    │       cache hit → zero-copy reply     │
//!              │    │       admitted  → pending (rx)        │
//!              │    ├─ pending → try_recv → queue reply     │
//!              │    └─ writable→ flush out (partial-write   │
//!              │                 aware, stall watchdog)     │
//!              └────────────────────────────────────────────┘
//! ```
//!
//! # The per-connection state machine
//!
//! Each [`Conn`] moves bytes through four stages. **Read**: nonblocking
//! reads accumulate into a line buffer, bounded by the configured
//! `max_request_line` with the same typed-reject-then-discard behavior
//! the threaded transport had (an oversized line costs one
//! `bad_request`, never the connection). **Execute**: complete lines
//! run through [`crate::protocol::parse_request`]; verbs answer inline,
//! simulations go through [`Service::enqueue`] so the reactor never
//! blocks on the pool. **Pending**: at most one in-flight simulation
//! per connection — pipelined lines wait in the connection's inbox so
//! replies stay in request order, exactly like the threaded handler.
//! **Write**: a queue of output chunks flushed as far as the socket
//! allows; a cached response is written straight from the shared
//! `Arc<str>` bytes, no copy.
//!
//! # Why the loop can sleep
//!
//! `poll(2)` wakes the loop for socket readiness, but batch completions
//! happen on the batcher thread. The service's completion notifier
//! (see [`Service::set_notifier`]) writes one byte into a self-pipe (a
//! `UnixStream` pair) registered with `poll`, so a finished batch wakes
//! the reactor immediately — the loop needs no short tick to deliver
//! replies, and an idle server parks in the kernel.
//!
//! # Bounds
//!
//! A connection may hold at most [`PIPELINE_MAX`] parsed-but-unexecuted
//! lines and [`OUT_HIGH_WATER`] bytes of unflushed output; beyond
//! either, the reactor stops reading from (or executing for) that
//! connection, which backpressures through TCP. A peer that stops
//! reading forfeits the connection after the configured `write_timeout`
//! without write progress — one stuck reader cannot wedge the drain.

use crate::protocol::{self, Request};
use crate::service::{Reply, Service, Ticket};
use crate::signal;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most parsed lines a connection may hold waiting for execution; past
/// this the reactor stops reading the socket (TCP backpressure).
const PIPELINE_MAX: usize = 32;

/// Most unflushed output bytes per connection before the reactor stops
/// executing new requests for it.
const OUT_HIGH_WATER: usize = 4 << 20;

/// Poll timeout when nothing else bounds the sleep: the cadence at
/// which the loop re-checks the drain flag.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Counters the reactor keeps about itself, surfaced as the `transport`
/// object of the `stats` verb.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Currently open connections (gauge).
    pub open_connections: AtomicU64,
    /// Connections accepted since boot.
    pub accepted: AtomicU64,
    /// Times the poll loop woke (readiness, waker, or tick).
    pub reactor_wakeups: AtomicU64,
    /// Nonblocking reads that found the socket dry (`EWOULDBLOCK`).
    pub read_stalls: AtomicU64,
}

/// Point-in-time copy of [`TransportStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Currently open connections.
    pub open_connections: u64,
    /// Connections accepted since boot.
    pub accepted: u64,
    /// Poll-loop wakeups.
    pub reactor_wakeups: u64,
    /// Reads that returned would-block.
    pub read_stalls: u64,
}

impl TransportStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            open_connections: self.open_connections.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
        }
    }
}

/// Splices the reactor's counters into a rendered `stats` response as
/// the `transport` member of the `stats` object (the service renders
/// `{"ok":true,"stats":{...}}`; this rewrites the tail).
pub fn stats_with_transport(service_stats_json: &str, t: TransportSnapshot) -> String {
    let body = service_stats_json
        .strip_suffix("}}")
        .unwrap_or(service_stats_json);
    let mut out = String::with_capacity(body.len() + 96);
    out.push_str(body);
    out.push_str(&format!(
        ",\"transport\":{{\"open_connections\":{},\"accepted\":{},\
         \"reactor_wakeups\":{},\"read_stalls\":{}}}",
        t.open_connections, t.accepted, t.reactor_wakeups, t.read_stalls
    ));
    out.push_str("}}");
    out
}

/// One chunk of queued output. Cached responses are written straight
/// from the shared `Arc<str>` (zero-copy); everything else is owned.
enum Chunk {
    Shared(Arc<str>),
    Owned(Vec<u8>),
    Newline,
}

impl Chunk {
    fn bytes(&self) -> &[u8] {
        match self {
            Chunk::Shared(s) => s.as_bytes(),
            Chunk::Owned(v) => v,
            Chunk::Newline => b"\n",
        }
    }
}

/// A simulation whose reply the reactor is waiting on.
struct PendingReply {
    rx: Receiver<Reply>,
    integrity: bool,
    deadline: Option<Instant>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Partial request line under accumulation.
    buf: Vec<u8>,
    /// Discarding the tail of an already-rejected oversized line.
    skipping: bool,
    /// Complete lines parsed off the socket, waiting for execution
    /// (kept in arrival order — replies must match request order).
    inbox: VecDeque<Vec<u8>>,
    /// Queued output chunks; `out_pos` indexes into the front chunk.
    out: VecDeque<Chunk>,
    out_pos: usize,
    out_bytes: usize,
    /// The in-flight simulation, if any (at most one per connection).
    pending: Option<PendingReply>,
    /// When the current write stall began (output queued, socket full).
    write_stall_since: Option<Instant>,
    /// Peer half-closed its read side (EOF seen).
    read_closed: bool,
    /// Close once the output queue drains (`shutdown` verb ack).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            skipping: false,
            inbox: VecDeque::new(),
            out: VecDeque::new(),
            out_pos: 0,
            out_bytes: 0,
            pending: None,
            write_stall_since: None,
            read_closed: false,
            close_after_flush: false,
        }
    }

    fn wants_read(&self) -> bool {
        !self.read_closed
            && !self.close_after_flush
            && self.inbox.len() < PIPELINE_MAX
            && self.out_bytes < OUT_HIGH_WATER
    }

    fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// True while the connection still owes someone bytes: queued
    /// lines, an in-flight simulation, or unflushed output. A drain
    /// waits for busy connections and hangs up on the rest (a partial
    /// line in `buf` does not count — the threaded transport dropped
    /// those on drain too).
    fn busy(&self) -> bool {
        !self.inbox.is_empty() || !self.out.is_empty() || self.pending.is_some()
    }

    /// True when the connection has delivered everything it owes.
    fn finished(&self) -> bool {
        (self.close_after_flush && self.out.is_empty())
            || (self.read_closed && !self.busy() && self.buf.is_empty())
    }

    fn push_owned(&mut self, line: String) {
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        self.out_bytes += bytes.len();
        self.out.push_back(Chunk::Owned(bytes));
    }

    /// Queues a shared response line without copying its body.
    fn push_shared(&mut self, line: Arc<str>) {
        self.out_bytes += line.len() + 1;
        self.out.push_back(Chunk::Shared(line));
        self.out.push_back(Chunk::Newline);
    }
}

/// The handle the reactor leaves behind for wakeups: writing one byte
/// interrupts a parked `poll`. Cheap to clone; safe to call from any
/// thread (the service's batcher calls it on batch completion, the
/// server wrapper calls it to begin a drain).
#[cfg(unix)]
#[derive(Clone)]
pub struct Waker(Arc<std::os::unix::net::UnixStream>);

#[cfg(unix)]
impl Waker {
    /// Wakes the reactor. Best-effort: a full pipe already guarantees a
    /// pending wakeup, so the would-block case needs no handling.
    pub fn wake(&self) {
        let _ = (&*self.0).write(&[1]);
    }
}

/// No-op waker for the portable fallback loop (which ticks on a short
/// sleep instead of parking in `poll`).
#[cfg(not(unix))]
#[derive(Clone)]
pub struct Waker;

#[cfg(not(unix))]
impl Waker {
    /// No-op: the fallback loop wakes itself.
    pub fn wake(&self) {}
}

/// The reactor: owns the listener, the waker pipe, and every
/// connection.
pub struct Reactor {
    listener: TcpListener,
    service: Arc<Service>,
    stats: Arc<TransportStats>,
    stop: Arc<AtomicBool>,
    conns: Vec<Conn>,
    waker: Waker,
    #[cfg(unix)]
    waker_rx: std::os::unix::net::UnixStream,
}

impl Reactor {
    /// Builds a reactor on an already-bound listener and registers the
    /// service completion notifier so batch results wake the loop.
    #[cfg(unix)]
    pub fn new(
        listener: TcpListener,
        service: Arc<Service>,
        stats: Arc<TransportStats>,
        stop: Arc<AtomicBool>,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let (waker_tx, waker_rx) = std::os::unix::net::UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        let waker = Waker(Arc::new(waker_tx));
        let hook = waker.clone();
        service.set_notifier(move || hook.wake());
        Ok(Reactor {
            listener,
            service,
            stats,
            stop,
            conns: Vec::new(),
            waker,
            waker_rx,
        })
    }

    /// Portable fallback constructor: same loop, driven by a short
    /// sleep instead of `poll(2)`.
    #[cfg(not(unix))]
    pub fn new(
        listener: TcpListener,
        service: Arc<Service>,
        stats: Arc<TransportStats>,
        stop: Arc<AtomicBool>,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        Ok(Reactor {
            listener,
            service,
            stats,
            stop,
            conns: Vec::new(),
            waker: Waker,
        })
    }

    /// A handle that wakes the loop from another thread.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::requested()
    }

    /// Runs the loop until a drain completes: stop accepting, let every
    /// connection with queued or in-flight work deliver it, hang up on
    /// the idle rest, then return. The caller joins the batcher.
    pub fn run(mut self) {
        loop {
            let draining = self.draining();
            if draining {
                let before = self.conns.len();
                self.conns.retain(Conn::busy);
                let dropped = (before - self.conns.len()) as u64;
                self.stats
                    .open_connections
                    .fetch_sub(dropped, Ordering::Relaxed);
                if self.conns.is_empty() {
                    return;
                }
            }

            let ready = self.wait_for_readiness(draining);
            self.stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);

            if !draining {
                self.accept_new();
            }

            // Drive every connection through its stages. Order matters
            // only within a connection, so index order is fine.
            let mut closed: Vec<usize> = Vec::new();
            for i in 0..self.conns.len() {
                // Connections accepted this very pass have no readiness
                // entry yet; probe them optimistically (a dry read is
                // one cheap would-block).
                let readable = ready.get(i).is_none_or(|r| r.0);
                if self.step_conn(i, readable).is_err() || self.conns[i].finished() {
                    closed.push(i);
                }
            }
            for &i in closed.iter().rev() {
                self.conns.swap_remove(i);
                self.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Parks in `poll(2)` until a socket is ready, the waker fires, or
    /// the tick elapses. Registers the listener (accepts), the waker
    /// pipe (batch completions), and every connection. Returns one
    /// `(readable,)` flag per connection, index-aligned with `conns`.
    #[cfg(unix)]
    fn wait_for_readiness(&mut self, draining: bool) -> Vec<(bool,)> {
        use std::os::unix::io::AsRawFd;

        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(self.conns.len() + 2);
        if !draining {
            fds.push(sys::PollFd::new(self.listener.as_raw_fd(), sys::POLLIN));
        }
        fds.push(sys::PollFd::new(self.waker_rx.as_raw_fd(), sys::POLLIN));
        let base = fds.len();
        for c in &self.conns {
            let mut events = 0i16;
            if c.wants_read() {
                events |= sys::POLLIN;
            }
            if c.wants_write() {
                events |= sys::POLLOUT;
            }
            // Register even with no interest: errors and hangups
            // surface in `revents` regardless of `events`.
            fds.push(sys::PollFd::new(c.stream.as_raw_fd(), events));
        }

        // Sleep no longer than the nearest deadline among in-flight
        // requests; a write-stalled connection keeps a short tick so
        // its watchdog fires on time.
        let now = Instant::now();
        let mut timeout = IDLE_TICK;
        for c in &self.conns {
            if let Some(d) = c.pending.as_ref().and_then(|p| p.deadline) {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
            if c.write_stall_since.is_some() {
                timeout = timeout.min(Duration::from_millis(10));
            }
        }
        sys::poll(&mut fds, timeout);

        // Drain the waker pipe (it is level-triggered: leftover bytes
        // would spin the loop).
        let mut sink = [0u8; 64];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}

        fds[base..].iter().map(|fd| (fd.readable(),)).collect()
    }

    /// Portable fallback: a short sleep, then optimistic progress on
    /// every connection (a dry read just reports would-block).
    #[cfg(not(unix))]
    fn wait_for_readiness(&mut self, _draining: bool) -> Vec<(bool,)> {
        std::thread::sleep(Duration::from_millis(2));
        vec![(true,); self.conns.len()]
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.conns.push(Conn::new(stream));
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// One pass over a connection's state machine; `Err(())` closes it.
    fn step_conn(&mut self, i: usize, readable: bool) -> Result<(), ()> {
        if readable {
            self.read_conn(i)?;
        }
        self.deliver_pending(i);
        self.execute_inbox(i);
        // Always attempt the flush when output is queued (not just on
        // POLLOUT): fresh output this pass flushes immediately, and the
        // write-stall watchdog re-arms even when the socket never
        // becomes writable again.
        if self.conns[i].wants_write() {
            self.flush_conn(i)?;
        }
        Ok(())
    }

    /// Nonblocking read: accumulate bytes, split complete lines into
    /// the inbox, enforce the line-length bound.
    fn read_conn(&mut self, i: usize) -> Result<(), ()> {
        let max_line = self.service.config().max_request_line;
        let mut scratch = [0u8; 16 * 1024];
        while self.conns[i].wants_read() {
            match self.conns[i].stream.read(&mut scratch) {
                Ok(0) => {
                    let conn = &mut self.conns[i];
                    conn.read_closed = true;
                    // Answer a final unterminated line, as the threaded
                    // transport did.
                    if !conn.buf.is_empty() && !conn.skipping {
                        let line = std::mem::take(&mut conn.buf);
                        conn.inbox.push_back(line);
                    }
                    conn.buf.clear();
                    return Ok(());
                }
                Ok(n) => self.ingest(i, &scratch[..n], max_line),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.stats.read_stalls.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }

    /// Splits freshly read bytes into lines, applying the
    /// oversized-line protocol: one typed `bad_request`, then discard
    /// through the eventual newline, connection intact.
    fn ingest(&mut self, i: usize, mut bytes: &[u8], max_line: usize) {
        while !bytes.is_empty() {
            let conn = &mut self.conns[i];
            match bytes.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if conn.skipping {
                        conn.skipping = false; // oversized tail discarded
                    } else {
                        let mut line = std::mem::take(&mut conn.buf);
                        line.extend_from_slice(&bytes[..nl]);
                        if line.len() > max_line {
                            self.reject_oversized(i, max_line, false);
                        } else {
                            self.conns[i].inbox.push_back(line);
                        }
                    }
                    bytes = &bytes[nl + 1..];
                }
                None => {
                    if conn.skipping {
                        return; // keep discarding
                    }
                    conn.buf.extend_from_slice(bytes);
                    if conn.buf.len() > max_line {
                        self.reject_oversized(i, max_line, true);
                    }
                    return;
                }
            }
        }
    }

    fn reject_oversized(&mut self, i: usize, max_line: usize, keep_skipping: bool) {
        let e = protocol::ServeError::new(
            protocol::ErrorKind::BadRequest,
            format!("request line exceeds {max_line} bytes"),
        );
        let conn = &mut self.conns[i];
        conn.buf.clear();
        conn.skipping = keep_skipping;
        conn.push_owned(protocol::error_response(&e));
    }

    /// Checks the connection's in-flight simulation: deliver a landed
    /// reply, or time it out at its deadline (the reactor-side mirror
    /// of `Service::submit`'s `recv_timeout`).
    fn deliver_pending(&mut self, i: usize) {
        let Some(p) = &self.conns[i].pending else {
            return;
        };
        let integrity = p.integrity;
        match p.rx.try_recv() {
            Ok(reply) => {
                self.conns[i].pending = None;
                self.queue_reply(i, reply, integrity);
            }
            Err(TryRecvError::Empty) => {
                let expired = matches!(p.deadline, Some(d) if Instant::now() >= d);
                if expired {
                    self.conns[i].pending = None;
                    self.service.record_deadline_exceeded();
                    self.queue_reply(
                        i,
                        Err(protocol::ServeError::new(
                            protocol::ErrorKind::DeadlineExceeded,
                            "deadline expired before the result was ready",
                        )),
                        integrity,
                    );
                }
            }
            Err(TryRecvError::Disconnected) => {
                self.conns[i].pending = None;
                self.queue_reply(
                    i,
                    Err(protocol::ServeError::new(
                        protocol::ErrorKind::Internal,
                        "service stopped before replying",
                    )),
                    integrity,
                );
            }
        }
    }

    fn queue_reply(&mut self, i: usize, reply: Reply, integrity: bool) {
        let conn = &mut self.conns[i];
        match reply {
            Ok(line) if integrity => {
                conn.push_owned(protocol::with_integrity_trailer(&line));
            }
            Ok(line) => conn.push_shared(line),
            Err(e) => {
                let body = protocol::error_response(&e);
                if integrity {
                    conn.push_owned(protocol::with_integrity_trailer(&body));
                } else {
                    conn.push_owned(body);
                }
            }
        }
    }

    /// Executes queued lines until one goes in-flight (replies must
    /// stay in request order, so one pending simulation parks the
    /// rest) or the output queue is over its high-water mark.
    fn execute_inbox(&mut self, i: usize) {
        while self.conns[i].pending.is_none()
            && !self.conns[i].close_after_flush
            && self.conns[i].out_bytes < OUT_HIGH_WATER
        {
            let Some(raw) = self.conns[i].inbox.pop_front() else {
                return;
            };
            self.execute_line(i, &raw);
        }
    }

    /// Handles one request line — the reactor-side equivalent of the
    /// threaded transport's `respond`.
    fn execute_line(&mut self, i: usize, raw: &[u8]) {
        let line = match std::str::from_utf8(raw) {
            Ok(s) => s,
            Err(_) => {
                let e = protocol::ServeError::new(
                    protocol::ErrorKind::BadRequest,
                    "request is not valid UTF-8",
                );
                self.conns[i].push_owned(protocol::error_response(&e));
                return;
            }
        };
        if line.trim().is_empty() {
            return; // blank keep-alive line
        }
        match protocol::parse_request(line, self.service.default_max_cycles()) {
            Ok(Request::Ping) => {
                self.conns[i].push_owned("{\"ok\":true,\"pong\":true}".to_string());
            }
            Ok(Request::Stats) => {
                let body =
                    stats_with_transport(&self.service.stats().to_json(), self.stats.snapshot());
                self.conns[i].push_owned(body);
            }
            Ok(Request::Shutdown) => {
                // Acknowledge, then trip this reactor's stop flag (not
                // the process-global signal flag — in-process test
                // servers must not drain each other).
                self.conns[i].push_owned("{\"ok\":true,\"draining\":true}".to_string());
                self.conns[i].close_after_flush = true;
                self.stop.store(true, Ordering::SeqCst);
                self.service.begin_shutdown();
            }
            Ok(Request::Simulate(req)) => {
                let integrity = req.integrity;
                // Same clamp `Service::submit` applies to its wait.
                let deadline = req.deadline_ms.map(|ms| {
                    Instant::now()
                        + Duration::from_millis(ms).min(self.service.config().max_deadline)
                });
                match self.service.enqueue(*req) {
                    Ok(Ticket::Ready(hit)) => self.queue_reply(i, Ok(hit), integrity),
                    Ok(Ticket::Admitted(rx)) => {
                        self.conns[i].pending = Some(PendingReply {
                            rx,
                            integrity,
                            deadline,
                        });
                    }
                    Err(e) => self.queue_reply(i, Err(e), integrity),
                }
            }
            Ok(Request::Verify(req)) => {
                // Lint is milliseconds of dataflow solving; running it
                // inline matches the service's synchronous verify path.
                let reply = self.service.verify_program(*req);
                self.queue_reply(i, reply, false);
            }
            Err(e) => {
                // The parse failed before the `integrity` flag could be
                // decoded, so honor it best-effort from the raw line
                // (the exact token a trailer-checking client injects) —
                // otherwise its typed parse error would look like a
                // stripped-trailer corruption.
                let body = protocol::error_response(&e);
                if line.contains("\"integrity\":true") {
                    self.conns[i].push_owned(protocol::with_integrity_trailer(&body));
                } else {
                    self.conns[i].push_owned(body);
                }
            }
        }
    }

    /// Flushes queued output as far as the socket allows; a partial
    /// write leaves `out_pos` mid-chunk. A stall longer than the
    /// configured write timeout forfeits the connection.
    fn flush_conn(&mut self, i: usize) -> Result<(), ()> {
        let write_timeout = self.service.config().write_timeout;
        let conn = &mut self.conns[i];
        while let Some(chunk) = conn.out.front() {
            let bytes = chunk.bytes();
            match conn.stream.write(&bytes[conn.out_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    conn.out_pos += n;
                    conn.out_bytes -= n;
                    conn.write_stall_since = None;
                    if conn.out_pos == bytes.len() {
                        conn.out.pop_front();
                        conn.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    match conn.write_stall_since {
                        None => conn.write_stall_since = Some(Instant::now()),
                        Some(t0) if t0.elapsed() >= write_timeout => return Err(()),
                        Some(_) => {}
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        conn.write_stall_since = None;
        Ok(())
    }
}

/// Raw `poll(2)` plumbing, declared directly against libc — the
/// workspace takes no external crates, the same approach
/// [`crate::signal`] uses for `signal(2)`.
#[cfg(unix)]
mod sys {
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// POSIX `nfds_t`: `unsigned long` on Linux, `unsigned int` on the
    /// BSDs and macOS.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    type NfdsT = u64;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type NfdsT = u32;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        pub fn new(fd: i32, events: i16) -> PollFd {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }

        /// Data waiting, or an error/hangup the next read will surface.
        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP) != 0
        }
    }

    extern "C" {
        #[link_name = "poll"]
        fn c_poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// Polls `fds` for at most `timeout` (clamped to i32 millis). The
    /// caller re-derives progress from nonblocking I/O, so an error
    /// return (e.g. `EINTR`) just means "check everything again".
    pub fn poll(fds: &mut [PollFd], timeout: Duration) -> i32 {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        unsafe { c_poll(fds.as_mut_ptr(), fds.len() as NfdsT, ms) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_splice_keeps_stats_parseable() {
        let svc = crate::service::Service::new(crate::service::ServiceConfig::default());
        let spliced = stats_with_transport(
            &svc.stats().to_json(),
            TransportSnapshot {
                open_connections: 3,
                accepted: 9,
                reactor_wakeups: 120,
                read_stalls: 7,
            },
        );
        assert!(!spliced.contains('\n'));
        let v = crate::json::parse(&spliced).expect("spliced stats JSON parses");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let t = v.get("stats").unwrap().get("transport").unwrap();
        assert_eq!(t.get("open_connections").unwrap().as_u64(), Some(3));
        assert_eq!(t.get("reactor_wakeups").unwrap().as_u64(), Some(120));
        assert_eq!(t.get("read_stalls").unwrap().as_u64(), Some(7));
        // The pre-existing members survived the splice.
        assert!(v.get("stats").unwrap().get("queue").is_some());
        assert!(v.get("stats").unwrap().get("account").is_some());
    }
}
