//! A minimal hand-rolled JSON reader (and two writer helpers).
//!
//! The workspace builds hermetically (DESIGN.md §8), so the service
//! cannot take serde. The *writing* side already exists throughout the
//! repo (`SimResult::to_json`, the sweep report); this module adds the
//! missing *reading* side — a strict recursive-descent parser producing
//! a [`Json`] tree — plus [`compact`] (newline-delimited protocols need
//! single-line payloads) and [`escape`] (error messages may carry
//! newlines, e.g. a livelock post-mortem).
//!
//! Numbers parse as `f64`; integer accessors check integrality and
//! range, which covers every protocol field (cycle budgets above 2^53
//! are indistinguishable from "unlimited" for any real run).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs on integers).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Ordered map so iteration (and re-rendering) is
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// in `[0, 2^53]` (exactly representable in the `f64` the parser
    /// stores).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for absent keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's members, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON (object keys in the
    /// deterministic map order; integral numbers without a fraction).
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(map) => {
                let inner: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error
/// (a protocol line holds exactly one value).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Nesting depth bound: protocol payloads are flat, and a bound keeps a
/// hostile `[[[[…` line from overflowing the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|mut e| {
                e.message = "expected object key string".to_string();
                e
            })?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Bulk-consume the plain run (no quote, backslash, or
                    // control byte — UTF-8 continuation bytes are all
                    // ≥ 0x80 and pass through). Validating only the run,
                    // not the whole remaining input, keeps string parsing
                    // linear; a half-megabyte response line is parsed in
                    // milliseconds instead of seconds.
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' || nb < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text.parse().map_err(|_| JsonError {
            message: format!("bad number `{text}`"),
            at: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                message: format!("non-finite number `{text}`"),
                at: start,
            });
        }
        Ok(Json::Num(n))
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes,
/// backslashes, and all control characters — a livelock detail string
/// carries newlines).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Strips structural whitespace from rendered JSON, yielding a single
/// line — the repo's hand-rolled writers ([`SimResult::to_json`] in
/// particular) pretty-print across many lines, but the wire protocol is
/// newline-delimited. String contents are preserved (their newlines are
/// already escaped by any correct writer).
///
/// [`SimResult::to_json`]: polyflow_sim::SimResult::to_json
pub fn compact(rendered: &str) -> String {
    let mut out = String::with_capacity(rendered.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in rendered.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                ' ' | '\t' | '\n' | '\r' => {}
                '"' => {
                    in_string = true;
                    out.push(c);
                }
                _ => out.push(c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"workload":"twolf","policy":"postdoms","config":{"max_cycles":100000,"store_sets":true}}"#).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("twolf"));
        assert_eq!(
            v.get("config").unwrap().get("max_cycles").unwrap().as_u64(),
            Some(100_000)
        );
        assert_eq!(
            v.get("config")
                .unwrap()
                .get("store_sets")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" -3.5e2 ").unwrap().as_f64(), Some(-350.0));
        assert_eq!(
            parse(r#"[1, "a\nb\u0041", false]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("a\nbA".to_string()),
                Json::Bool(false)
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{'single':1}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(
            parse("9007199254740992").unwrap().as_u64(),
            Some(9_007_199_254_740_992)
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\back\u{1}";
        let wire = format!("{{\"m\":\"{}\"}}", escape(nasty));
        let v = parse(&wire).unwrap();
        assert_eq!(v.get("m").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn compact_preserves_string_contents() {
        let pretty = "{\n  \"a\": \"x y\\n z\",\n  \"b\": [1, 2]\n}\n";
        assert_eq!(compact(pretty), "{\"a\":\"x y\\n z\",\"b\":[1,2]}");
        // A string ending in an escaped backslash must close correctly.
        let tricky = "{\"p\": \"c:\\\\\" , \"q\": 1}";
        assert_eq!(compact(tricky), "{\"p\":\"c:\\\\\",\"q\":1}");
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression: the string scanner used to re-validate the entire
        // remaining input for every character, turning large response
        // lines quadratic. A ~1 MB payload must parse comfortably within
        // a debug-build test's patience, with mixed escapes and
        // multibyte characters landing intact.
        let chunk = "abcdefgh π→λ \\\"quoted\\\" \\n ij";
        let big = chunk.repeat(20_000);
        let wire = format!("{{\"blob\":\"{big}\",\"n\":7}}");
        let t0 = std::time::Instant::now();
        let v = parse(&wire).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "1 MB string took {:?} — the parser has gone quadratic again",
            t0.elapsed()
        );
        let blob = v.get("blob").unwrap().as_str().unwrap();
        assert_eq!(blob.len(), "abcdefgh π→λ \"quoted\" \n ij".len() * 20_000);
        assert!(blob.starts_with("abcdefgh π→λ \"quoted\" \n ij"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn compact_is_single_line_for_sim_results() {
        let r = polyflow_sim::SimResult::default();
        let c = compact(&r.to_json());
        assert!(!c.contains('\n'));
        assert!(c.starts_with('{') && c.ends_with('}'));
        // And it still parses.
        parse(&c).unwrap();
    }
}
