//! The chaos invariant, end to end: a seeded schedule of all five fault
//! operators between real clients and a real in-process server must
//! never produce a wrong answer or a hang — every request ends in a
//! byte-correct success or an honestly-reported failure within its
//! retry budget, and the server's ledger stays consistent throughout.

use polyflow_serve::chaos::{ChaosConfig, ChaosProxy};
use polyflow_serve::client::{Client, ClientConfig, Outcome};
use polyflow_serve::{json, Server, ServiceConfig};
use std::collections::HashMap;
use std::time::Duration;

const BUDGET: u64 = 1_000_000_000;

fn sim_line(workload: &str, policy: &str) -> String {
    format!(
        "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
         \"config\":{{\"max_cycles\":{BUDGET}}}}}"
    )
}

/// Offline ground truth for one request line — the same entry point and
/// rendering the server uses.
fn offline_expected(line: &str) -> String {
    use polyflow_serve::protocol::{ok_response, parse_request, Request};
    let req = match parse_request(line, BUDGET).expect("valid request") {
        Request::Simulate(r) => *r,
        _ => panic!("not a simulate request"),
    };
    let name = req.workload_label().to_string();
    let workload = polyflow_workloads::by_name(&name).expect("bundled workload");
    let prepared = polyflow_bench::PreparedWorkload::prepare(workload);
    let mut scratch = polyflow_sim::SimScratch::default();
    let result =
        polyflow_bench::sweep::run_cell_with_config(&prepared, req.cell, &req.config, &mut scratch)
            .expect("test cell simulates cleanly");
    ok_response(
        &name,
        &req.policy_label(),
        &json::compact(&result.to_json()),
    )
}

/// ≥200 requests through a chaos schedule exercising all five operators:
/// zero wrong answers, zero hangs, all operators observed, and the
/// outcome of every request is either byte-correct success or an honest
/// transport failure after the budget.
#[test]
fn chaos_schedule_yields_no_wrong_answers_and_no_hangs() {
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            jobs: 2,
            default_max_cycles: BUDGET,
            ..ServiceConfig::default()
        },
    )
    .expect("bind server");
    let chaos_config = ChaosConfig {
        delay_pct: 10,
        reset_pct: 8,
        truncate_pct: 8,
        bitflip_pct: 8,
        blackhole_pct: 4,
        delay: Duration::from_millis(20),
        ..ChaosConfig::clean(server.addr().to_string(), 0xC4A0_5EED)
    };
    let check_config = chaos_config.clone();
    let mut proxy = ChaosProxy::spawn("127.0.0.1:0", chaos_config).expect("bind proxy");

    // The request roster: every thread walks the same six cells, so the
    // cross-thread consistency check has teeth.
    let roster: Vec<String> = ["bzip2", "gzip"]
        .iter()
        .flat_map(|w| {
            ["baseline", "postdoms", "loop"]
                .iter()
                .map(|p| sim_line(w, p))
                .collect::<Vec<_>>()
        })
        .collect();
    let expected: HashMap<String, String> = roster
        .iter()
        .map(|l| (l.clone(), offline_expected(l)))
        .collect();

    // Pre-warm every cell through a direct, fault-free connection so
    // the storm below exercises the transport, not debug-build
    // simulation time racing the client's io timeout.
    {
        let mut warm = Client::new(ClientConfig {
            io_timeout: Duration::from_secs(300),
            ..ClientConfig::new(server.addr().to_string())
        });
        for line in &roster {
            let reply = warm.request(line);
            assert_eq!(reply.ok(), Some(expected[line].as_str()), "warm-up");
        }
    }

    const THREADS: usize = 4;
    const PER_THREAD: usize = 50; // 4 × 50 = 200 requests
    let proxy_addr = proxy.addr().to_string();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = proxy_addr.clone();
        let roster = roster.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::new(ClientConfig {
                max_retries: 16,
                backoff_base: Duration::from_micros(200),
                backoff_cap: Duration::from_millis(20),
                io_timeout: Duration::from_secs(1),
                require_integrity: true,
                seed: 0x0BAD_5EED ^ t as u64,
                ..ClientConfig::new(addr)
            });
            let (mut ok, mut transport, mut wrong) = (0u64, 0u64, 0u64);
            for i in 0..PER_THREAD {
                let line = &roster[(i + t) % roster.len()];
                match client.request(line) {
                    Outcome::Ok(reply) => {
                        ok += 1;
                        if reply != expected[line] {
                            wrong += 1;
                            eprintln!("[chaos-test] WRONG ANSWER for {line}: {reply}");
                        }
                    }
                    Outcome::ServerError { kind, message } => {
                        panic!("unexpected typed error under chaos: {kind}: {message}")
                    }
                    Outcome::Transport { .. } => transport += 1,
                }
            }
            (ok, transport, wrong, client.stats())
        }));
    }

    let (mut ok, mut transport, mut wrong) = (0u64, 0u64, 0u64);
    let (mut retries, mut corrupt) = (0u64, 0u64);
    for h in handles {
        let (o, t, w, s) = h.join().expect("chaos client thread");
        ok += o;
        transport += t;
        wrong += w;
        retries += s.retries;
        corrupt += s.corrupt;
    }

    assert_eq!(wrong, 0, "a chaos schedule must never yield a wrong answer");
    assert_eq!(
        ok + transport,
        (THREADS * PER_THREAD) as u64,
        "every request ended — no hangs"
    );
    assert!(
        transport <= 2,
        "retry budget (16) should absorb nearly all faults; {transport} gave up"
    );
    assert!(retries > 0, "the schedule actually injected faults");

    let counts = proxy.counts();
    assert!(
        counts.all_enabled_fired(&check_config),
        "all five operators must fire: {:?}",
        counts.snapshot()
    );
    let (_, _, _, _, bitflip, _) = counts.snapshot();
    assert!(
        corrupt >= bitflip.min(1),
        "bit flips are caught by the integrity check, not accepted"
    );

    proxy.shutdown();
    server.shutdown();
    let stats = server.service().stats();
    assert_eq!(stats.queue_depth, 0, "ledger consistent after the storm");
    assert!(stats.completed >= ok, "server completions cover client oks");
}
