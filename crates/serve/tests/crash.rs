//! Crash-safety tests against the real `serve` binary: SIGKILL with a
//! populated journal must warm-start byte-identically, a corrupted
//! journal tail must recover to a consistent prefix, and a SIGTERM
//! drain must finish the in-flight uploaded-program cell and flush the
//! journal before exiting 0.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BUDGET: u64 = 1_000_000_000;

struct ServerProc {
    child: Child,
    addr: String,
    stderr_thread: Option<std::thread::JoinHandle<Vec<String>>>,
}

impl ServerProc {
    /// Spawns the real `serve` binary and waits for its listening line.
    fn spawn(cache_dir: &Path, extra_args: &[&str]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--cache-dir")
            .arg(cache_dir)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(addr) = line.strip_prefix("[serve] listening on ") {
                    let _ = addr_tx.send(addr.to_string());
                }
                lines.push(line);
            }
            lines
        });
        let addr = addr_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("serve must announce its address");
        ServerProc {
            child,
            addr,
            stderr_thread: Some(stderr_thread),
        }
    }

    fn exchange(&self, line: &str) -> String {
        exchange_at(&self.addr, line)
    }

    /// SIGKILL — no drain, no flush beyond what `write(2)` already did.
    fn kill9(mut self) -> Vec<String> {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
        self.stderr_thread.take().unwrap().join().unwrap()
    }

    /// SIGTERM, then wait; returns (exit status, stderr lines).
    fn sigterm_and_wait(mut self) -> (std::process::ExitStatus, Vec<String>) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let status = self.child.wait().expect("wait for serve");
        let lines = self.stderr_thread.take().unwrap().join().unwrap();
        (status, lines)
    }
}

fn exchange_at(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut w = stream.try_clone().expect("clone");
    w.write_all(format!("{line}\n").as_bytes()).expect("write");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    assert!(reply.ends_with('\n'), "newline-framed reply: {reply:?}");
    reply.trim_end_matches('\n').to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polyflow-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sim_line(workload: &str, policy: &str) -> String {
    format!(
        "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
         \"config\":{{\"max_cycles\":{BUDGET}}}}}"
    )
}

fn stat_u64(stats_reply: &str, path: &[&str]) -> u64 {
    let v = polyflow_serve::json::parse(stats_reply).expect("stats parse");
    let mut cur = v.get("stats").expect("stats object");
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("stats.{p} missing"));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("stats.{path:?} not a number"))
}

/// populate → SIGKILL → restart: every pre-crash entry is served warm,
/// byte-identically, without a single cell re-simulated; then a
/// garbage-corrupted journal tail still recovers every real entry.
#[test]
fn sigkill_then_warm_restart_is_byte_identical() {
    let dir = temp_dir("sigkill");
    let cells = [
        sim_line("bzip2", "baseline"),
        sim_line("bzip2", "postdoms"),
        sim_line("gzip", "baseline"),
        sim_line("gzip", "postdoms"),
    ];

    let server = ServerProc::spawn(&dir, &[]);
    let cold: Vec<String> = cells.iter().map(|l| server.exchange(l)).collect();
    for r in &cold {
        assert!(r.starts_with("{\"ok\":true"), "{r}");
    }
    server.kill9();

    // Warm restart: the journal alone must reconstruct all four.
    let server = ServerProc::spawn(&dir, &[]);
    let stats = server.exchange("stats");
    assert!(
        stat_u64(&stats, &["cache", "warm_start"]) >= cells.len() as u64,
        "all entries replayed: {stats}"
    );
    let warm: Vec<String> = cells.iter().map(|l| server.exchange(l)).collect();
    assert_eq!(warm, cold, "post-crash replies byte-identical");
    let stats = server.exchange("stats");
    assert_eq!(
        stat_u64(&stats, &["account", "cells"]),
        0,
        "nothing re-simulated after the crash: {stats}"
    );
    server.kill9();

    // Corrupt the newest segment's tail (a torn write at power loss) and
    // restart once more: recovery stops at the first bad record and
    // keeps everything before it.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("segment-"))
        })
        .collect();
    segments.sort();
    let newest = segments.last().expect("journal has segments");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(newest)
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x17]).unwrap();
    }
    let server = ServerProc::spawn(&dir, &[]);
    let stats = server.exchange("stats");
    assert!(
        stat_u64(&stats, &["cache", "warm_start"]) >= cells.len() as u64,
        "garbage tail must not cost real entries: {stats}"
    );
    let recovered: Vec<String> = cells.iter().map(|l| server.exchange(l)).collect();
    assert_eq!(recovered, cold);
    server.kill9();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM while an uploaded-program simulate is in flight: the drain
/// finishes the cell, the client gets its reply, the process exits 0,
/// and a restart finds the cell already in the journal.
#[test]
fn sigterm_drain_finishes_inflight_upload_and_flushes_journal() {
    let dir = temp_dir("sigterm");
    // A long batch window keeps the request visibly in flight while the
    // signal lands.
    let server = ServerProc::spawn(&dir, &["--batch-window-ms", "500"]);
    let addr = server.addr.clone();

    let asm = polyflow_isa::to_asm(&polyflow_workloads::by_name("gzip").unwrap().program);
    let upload = format!(
        "{{\"program\":\"{}\",\"policy\":\"postdoms\",\
         \"config\":{{\"max_cycles\":{BUDGET}}}}}",
        polyflow_serve::json::escape(&asm)
    );
    let inflight = {
        let upload = upload.clone();
        std::thread::spawn(move || exchange_at(&addr, &upload))
    };

    // Wait until the request is admitted (it sits in the 500ms window).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.exchange("stats");
        if stat_u64(&stats, &["requests", "submitted"]) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "upload never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, stderr) = server.sigterm_and_wait();
    assert!(
        status.success(),
        "drain must exit 0, got {status:?}; stderr: {stderr:?}"
    );
    let reply = inflight.join().expect("in-flight client");
    assert!(
        reply.starts_with("{\"ok\":true"),
        "in-flight upload completed during drain: {reply}"
    );

    // The drained cell survived to disk: a fresh server serves the very
    // same bytes warm (and by bundled name too — fingerprint keying).
    let server = ServerProc::spawn(&dir, &[]);
    let stats = server.exchange("stats");
    assert!(stat_u64(&stats, &["cache", "warm_start"]) >= 1, "{stats}");
    assert_eq!(server.exchange(&upload), reply);
    let stats = server.exchange("stats");
    assert_eq!(
        stat_u64(&stats, &["account", "cells"]),
        0,
        "warm restart re-simulated nothing: {stats}"
    );
    server.kill9();
    let _ = std::fs::remove_dir_all(&dir);
}
