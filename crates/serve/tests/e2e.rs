//! End-to-end tests for the service: TCP protocol round-trips, cache
//! behavior under concurrency, batch-composition determinism, and
//! overload shedding. Uses the debug-build-sized workload subset
//! (`bzip2`, `gzip`) like the bench crate's determinism test; the CI
//! smoke job exercises the full Figure 9 grid in release via
//! `loadgen --verify-fig09`.

use polyflow_serve::json;
use polyflow_serve::protocol::{ok_response, parse_request, Request};
use polyflow_serve::{Server, Service, ServiceConfig, Ticket};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A generous budget every test cell completes within (the point is the
/// protocol, not the watchdog).
const BUDGET: u64 = 1_000_000_000;

fn test_config() -> ServiceConfig {
    ServiceConfig {
        jobs: 2,
        queue_capacity: 32,
        batch_max: 16,
        batch_window: Duration::from_millis(1),
        default_max_cycles: BUDGET,
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn sim_line(workload: &str, policy: &str) -> String {
    format!(
        "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
         \"config\":{{\"max_cycles\":{BUDGET}}}}}"
    )
}

fn sim_request(line: &str) -> polyflow_serve::SimRequest {
    match parse_request(line, BUDGET).expect("valid request") {
        Request::Simulate(r) => *r,
        _ => panic!("not a simulate request"),
    }
}

/// What an offline caller computes for the same request line: the
/// byte-level ground truth for every served response.
fn offline_expected(line: &str) -> String {
    let req = sim_request(line);
    let workload = match &req.source {
        polyflow_serve::SimSource::Bundled(name) => {
            polyflow_workloads::by_name(name).expect("bundled workload")
        }
        polyflow_serve::SimSource::Uploaded(w) => (**w).clone(),
    };
    let prepared = polyflow_bench::PreparedWorkload::prepare(workload);
    let mut scratch = polyflow_sim::SimScratch::default();
    let result =
        polyflow_bench::sweep::run_cell_with_config(&prepared, req.cell, &req.config, &mut scratch)
            .expect("test cell simulates cleanly");
    ok_response(
        req.workload_label(),
        &req.policy_label(),
        &json::compact(&result.to_json()),
    )
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let writer = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { writer, reader }
    }

    fn exchange(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        assert!(reply.ends_with('\n'), "responses are newline-framed");
        reply.trim_end_matches('\n').to_string()
    }
}

fn error_kind(reply: &str) -> String {
    let v = json::parse(reply).expect("error response parses");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(false));
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(json::Json::as_str)
        .expect("error.kind present")
        .to_string()
}

#[test]
fn tcp_protocol_round_trips() {
    let mut server = Server::spawn("127.0.0.1:0", test_config()).expect("bind");
    let mut c = Client::connect(&server);

    assert_eq!(c.exchange("ping"), "{\"ok\":true,\"pong\":true}");

    // Typed errors, all on the same connection — a protocol mistake
    // never costs the client its connection.
    assert_eq!(
        error_kind(&c.exchange("definitely not json")),
        "bad_request"
    );
    assert_eq!(
        error_kind(&c.exchange("{\"workload\":\"eon\"}")),
        "unknown_workload"
    );
    assert_eq!(
        error_kind(&c.exchange("{\"workload\":\"gzip\",\"policy\":\"warp\"}")),
        "unknown_policy"
    );
    assert_eq!(
        error_kind(&c.exchange("{\"workload\":\"gzip\",\"config\":{\"width\":4}}")),
        "bad_request"
    );

    // A real simulation, served and byte-checked against offline.
    let line = sim_line("bzip2", "baseline");
    let served = c.exchange(&line);
    assert_eq!(served, offline_expected(&line));

    // Same request again: a cache hit, and the very same bytes.
    let again = c.exchange(&line);
    assert_eq!(served, again);
    let stats = json::parse(&c.exchange("stats")).expect("stats parse");
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(
        stats
            .get("stats")
            .unwrap()
            .get("account")
            .unwrap()
            .get("cells")
            .unwrap()
            .as_u64(),
        Some(1),
        "one unique cell simulated"
    );

    // Graceful shutdown by verb: acknowledged, then drained.
    assert_eq!(c.exchange("shutdown"), "{\"ok\":true,\"draining\":true}");
    server.shutdown();
    let s = server.service().stats();
    assert_eq!(s.queue_depth, 0, "drain leaves nothing queued");
}

#[test]
fn concurrent_clients_same_key_get_identical_bytes() {
    let server = Server::spawn("127.0.0.1:0", test_config()).expect("bind");
    let line = sim_line("gzip", "postdoms");
    let clients = 6;
    let mut handles = Vec::new();
    for _ in 0..clients {
        let addr = server.addr();
        let line = line.clone();
        handles.push(std::thread::spawn(move || {
            let writer = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(writer.try_clone().expect("clone"));
            let mut w = writer;
            w.write_all(format!("{line}\n").as_bytes()).expect("write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            reply.trim_end_matches('\n').to_string()
        }));
    }
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &replies[1..] {
        assert_eq!(r, &replies[0], "every client sees the same bytes");
    }
    assert_eq!(replies[0], offline_expected(&line));

    // However the six requests landed (one deduplicated batch, several
    // batches with cache hits in between), only one simulation ran.
    let s = server.service().stats();
    assert_eq!(s.batched_cells, 1, "duplicates never re-simulate");
    assert_eq!(s.completed, clients as u64);
}

#[test]
fn batch_composition_and_worker_count_do_not_change_bytes() {
    let requests: Vec<String> = [
        ("bzip2", "baseline"),
        ("bzip2", "postdoms"),
        ("bzip2", "loop"),
        ("gzip", "baseline"),
        ("gzip", "postdoms"),
        ("gzip", "loop"),
    ]
    .iter()
    .map(|(w, p)| sim_line(w, p))
    .collect();

    // Serial: one at a time, no coalescing window, one worker.
    let serial = Service::new(ServiceConfig {
        jobs: 1,
        batch_window: Duration::ZERO,
        ..test_config()
    });
    serial.start();
    let serial_replies: Vec<String> = requests
        .iter()
        .map(|l| {
            serial
                .submit(sim_request(l))
                .expect("cell simulates")
                .to_string()
        })
        .collect();
    serial.shutdown_and_join();

    // Batched: all six enqueued inside one long window (they coalesce
    // into one mixed-workload batch), four workers, reversed order.
    let batched = Service::new(ServiceConfig {
        jobs: 4,
        batch_window: Duration::from_millis(300),
        ..test_config()
    });
    batched.start();
    let tickets: Vec<(
        usize,
        std::sync::mpsc::Receiver<polyflow_serve::service::Reply>,
    )> = requests
        .iter()
        .enumerate()
        .rev()
        .map(|(i, l)| match batched.enqueue(sim_request(l)).unwrap() {
            Ticket::Admitted(rx) => (i, rx),
            Ticket::Ready(_) => panic!("cold cache cannot be ready"),
        })
        .collect();
    let mut batched_replies = vec![String::new(); requests.len()];
    for (i, rx) in tickets {
        batched_replies[i] = rx.recv().unwrap().expect("cell simulates").to_string();
    }
    batched.shutdown_and_join();

    assert_eq!(serial_replies, batched_replies);

    // And both equal the offline ground truth (spot-check two cells to
    // bound debug-build runtime; full-grid equality runs in release CI).
    assert_eq!(serial_replies[0], offline_expected(&requests[0]));
    assert_eq!(serial_replies[4], offline_expected(&requests[4]));
}

#[test]
fn burst_beyond_queue_capacity_is_shed_typed_not_hung() {
    // Window long enough that the first request is still queued when the
    // second arrives; capacity 1 makes the second the K+1-th.
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            queue_capacity: 1,
            batch_window: Duration::from_secs(5),
            ..test_config()
        },
    )
    .expect("bind");

    let addr = server.addr();
    let first = std::thread::spawn(move || {
        let writer = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(writer.try_clone().expect("clone"));
        let mut w = writer;
        w.write_all(format!("{}\n", sim_line("gzip", "baseline")).as_bytes())
            .expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply
    });

    // Wait until the first request occupies the queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.service().stats().queue_depth == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "first request never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut c = Client::connect(&server);
    let reply = c.exchange(&sim_line("gzip", "postdoms"));
    assert_eq!(error_kind(&reply), "overloaded");
    assert_eq!(server.service().stats().shed, 1);

    // Drain: the queued request still completes (shutdown cuts the
    // linger window short) and the shed client got its answer above —
    // nobody hangs.
    server.shutdown();
    let first_reply = first.join().unwrap();
    assert!(
        first_reply.starts_with("{\"ok\":true"),
        "queued request completed during drain: {first_reply}"
    );
}

#[test]
fn cache_keys_are_collision_free_across_figure_configs() {
    use polyflow_serve::{CacheKey, ResultCache};
    use polyflow_sim::{DependenceMode, MachineConfig};

    // Every distinct configuration the figure binaries (9–12) can run:
    // the superscalar baseline, the PolyFlow machine, its dependence-mode
    // env variants, and ablation-style geometry tweaks.
    let mut configs: Vec<(String, MachineConfig)> = vec![
        ("superscalar".into(), MachineConfig::superscalar()),
        ("hpca07".into(), MachineConfig::hpca07()),
        (
            "store_sets".into(),
            MachineConfig {
                memory_dependence: DependenceMode::StoreSet,
                ..MachineConfig::hpca07()
            },
        ),
        (
            "reg_hints".into(),
            MachineConfig {
                register_dependence: DependenceMode::StoreSet,
                ..MachineConfig::hpca07()
            },
        ),
        (
            "tasks4".into(),
            MachineConfig {
                max_tasks: 4,
                ..MachineConfig::hpca07()
            },
        ),
        (
            "fetch1".into(),
            MachineConfig {
                fetch_tasks_per_cycle: 1,
                ..MachineConfig::hpca07()
            },
        ),
        (
            "no_divert_delay".into(),
            MachineConfig {
                divert_release_delay: 0,
                ..MachineConfig::hpca07()
            },
        ),
    ];
    for budget in [100_000u64, 200_000] {
        configs.push((
            format!("budget{budget}"),
            MachineConfig {
                max_cycles: budget,
                ..MachineConfig::hpca07()
            },
        ));
    }

    // Pairwise-distinct fingerprints …
    for (i, (na, a)) in configs.iter().enumerate() {
        for (nb, b) in configs.iter().skip(i + 1) {
            assert_ne!(
                a.fingerprint(),
                b.fingerprint(),
                "{na} and {nb} must not share a cache key"
            );
        }
    }

    // … and therefore distinct cache entries even under one workload and
    // policy.
    let cache = ResultCache::new(64);
    for (name, cfg) in &configs {
        cache.insert(
            CacheKey {
                workload: "twolf".into(),
                policy: "postdoms".into(),
                config: cfg.fingerprint(),
            },
            Arc::from(name.as_str()),
        );
    }
    for (name, cfg) in &configs {
        let got = cache
            .get(&CacheKey {
                workload: "twolf".into(),
                policy: "postdoms".into(),
                config: cfg.fingerprint(),
            })
            .expect("entry present");
        assert_eq!(&*got, name.as_str());
    }
}

/// The `verify` verb end to end: a clean workload report, cache-hit
/// replay of identical bytes (by name *and* by uploaded assembly — same
/// fingerprint, same entry), and typed rejection of a program that does
/// not assemble.
#[test]
fn verify_verb_round_trips_and_caches_by_fingerprint() {
    let mut server = Server::spawn("127.0.0.1:0", test_config()).expect("bind");
    let mut c = Client::connect(&server);

    let line = "{\"verb\":\"verify\",\"workload\":\"gzip\"}";
    let first = c.exchange(line);
    let v = json::parse(&first).expect("verify reply parses");
    assert_eq!(v.get("ok").and_then(json::Json::as_bool), Some(true));
    let body = v.get("verify").expect("verify body");
    assert_eq!(
        body.get("clean").and_then(json::Json::as_bool),
        Some(true),
        "bundled workloads lint clean: {first}"
    );
    let fp = body
        .get("fingerprint")
        .and_then(json::Json::as_str)
        .expect("fingerprint")
        .to_string();

    let hits_before = cache_hits(&mut c);
    // Repeat by name: identical bytes, served from the report cache.
    assert_eq!(c.exchange(line), first);
    // Upload the same program as assembly: same fingerprint, so the
    // cache answers with the very same line.
    let asm = polyflow_isa::to_asm(&polyflow_workloads::by_name("gzip").unwrap().program);
    let upload = format!(
        "{{\"verb\":\"verify\",\"program\":\"{}\"}}",
        json::escape(&asm)
    );
    let uploaded = c.exchange(&upload);
    assert_eq!(uploaded, first, "fingerprint {fp} shares one cache entry");
    assert!(
        cache_hits(&mut c) >= hits_before + 2,
        "both repeats hit the report cache"
    );

    // A program that does not assemble is the client's mistake: typed
    // bad_request, connection intact.
    let bad = "{\"verb\":\"verify\",\"program\":\"fn main { frobnicate r1 }\"}";
    assert_eq!(error_kind(&c.exchange(bad)), "bad_request");
    // Naming and uploading at once is also malformed.
    let both = format!(
        "{{\"verb\":\"verify\",\"workload\":\"gzip\",\"program\":\"{}\"}}",
        json::escape("fn main {\n  halt\n}")
    );
    assert_eq!(error_kind(&c.exchange(&both)), "bad_request");
    assert_eq!(
        c.exchange("ping"),
        "{\"ok\":true,\"pong\":true}",
        "rejections never cost the connection"
    );

    server.shutdown();
}

/// The simulate-upload differential: serving a workload by bundled name
/// and by uploading its canonical assembly must return byte-identical
/// response lines *and* share one cache entry — the fingerprint keying
/// makes name and content the same identity. The hit counter proves the
/// sharing; the insert counter proves the upload simulated nothing.
#[test]
fn simulate_upload_matches_bundled_by_name_and_shares_cache() {
    let mut server = Server::spawn("127.0.0.1:0", test_config()).expect("bind");
    let mut c = Client::connect(&server);

    let named_line = sim_line("twolf", "postdoms");
    let named = c.exchange(&named_line);
    assert!(named.starts_with("{\"ok\":true"), "{named}");
    assert!(named.contains("\"workload\":\"twolf\""), "{named}");

    let hits_before = cache_hits(&mut c);
    let inserts_before = cache_inserts(&mut c);
    let asm = polyflow_isa::to_asm(&polyflow_workloads::by_name("twolf").unwrap().program);
    let upload = format!(
        "{{\"program\":\"{}\",\"policy\":\"postdoms\",\
         \"config\":{{\"max_cycles\":{BUDGET}}}}}",
        json::escape(&asm)
    );
    let uploaded = c.exchange(&upload);
    assert_eq!(
        uploaded, named,
        "uploading the canonical assembly replays the bundled bytes"
    );
    assert!(
        cache_hits(&mut c) > hits_before,
        "the upload landed on the named request's cache entry"
    );
    assert_eq!(
        cache_inserts(&mut c),
        inserts_before,
        "the upload inserted nothing — one entry serves both"
    );

    // And the shared bytes are the offline ground truth for both forms.
    assert_eq!(named, offline_expected(&upload));

    server.shutdown();
}

/// An oversized request line gets a typed `bad_request` — and the
/// connection survives to serve the next, correctly sized request.
#[test]
fn oversized_line_is_rejected_typed_and_connection_survives() {
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            max_request_line: 256,
            ..test_config()
        },
    )
    .expect("bind");
    let mut c = Client::connect(&server);

    let huge = format!("{{\"workload\":\"{}\"}}", "x".repeat(4096));
    let reply = c.exchange(&huge);
    assert_eq!(error_kind(&reply), "bad_request");
    assert!(reply.contains("exceeds 256 bytes"), "{reply}");

    // The oversized line was discarded up to its newline; the connection
    // still works, including for real simulations.
    assert_eq!(c.exchange("ping"), "{\"ok\":true,\"pong\":true}");
    let line = sim_line("gzip", "baseline");
    assert_eq!(c.exchange(&line), offline_expected(&line));

    server.shutdown();
}

/// A request that asks for the integrity trailer gets one — over ok and
/// typed-error replies alike — and the cached bytes themselves stay
/// trailer-free (a plain request for the same cell sees unchanged
/// bytes).
#[test]
fn integrity_trailer_round_trips_over_the_wire() {
    use polyflow_serve::protocol::check_integrity_trailer;

    let mut server = Server::spawn("127.0.0.1:0", test_config()).expect("bind");
    let mut c = Client::connect(&server);

    let plain = sim_line("bzip2", "postdoms");
    let trailered = format!(
        "{{\"workload\":\"bzip2\",\"policy\":\"postdoms\",\
         \"config\":{{\"max_cycles\":{BUDGET}}},\"integrity\":true}}"
    );
    let with_trailer = c.exchange(&trailered);
    let (body, verified) = check_integrity_trailer(&with_trailer);
    assert_eq!(verified, Some(true), "trailer verifies: {with_trailer}");
    assert_eq!(body, offline_expected(&plain), "body is the offline bytes");

    // Same cell without the trailer: the untouched cached bytes.
    assert_eq!(c.exchange(&plain), body, "cache entry is trailer-free");

    // Typed errors are trailered too when asked.
    let bad = "{\"workload\":\"eon\",\"integrity\":true}";
    let err_reply = c.exchange(bad);
    let (err_body, err_verified) = check_integrity_trailer(&err_reply);
    assert_eq!(err_verified, Some(true));
    assert_eq!(error_kind(err_body), "unknown_workload");

    server.shutdown();
}

/// A wire request with a deadline too short for its queue wait gets a
/// typed `deadline_exceeded`, and the stats counter records it.
#[test]
fn wire_deadline_exceeded_is_typed_and_counted() {
    // A long batch window holds the request in the queue well past its
    // 25ms deadline.
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            batch_window: Duration::from_millis(400),
            ..test_config()
        },
    )
    .expect("bind");
    let mut c = Client::connect(&server);
    let line = format!(
        "{{\"workload\":\"gzip\",\"policy\":\"postdoms\",\
         \"config\":{{\"max_cycles\":{BUDGET}}},\"deadline_ms\":25}}"
    );
    let reply = c.exchange(&line);
    assert_eq!(error_kind(&reply), "deadline_exceeded");
    let stats = json::parse(&c.exchange("stats")).expect("stats parse");
    let requests = stats.get("stats").unwrap().get("requests").unwrap();
    assert!(requests.get("deadline_exceeded").unwrap().as_u64().unwrap() >= 1);
    server.shutdown();
}

/// The persistent tier end to end, in process: populate → drain →
/// reopen the same `cache_dir` → the warm service answers with the very
/// same bytes without simulating anything.
#[test]
fn warm_start_serves_identical_bytes_without_resimulating() {
    let dir = std::env::temp_dir().join(format!("polyflow-e2e-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..test_config()
    };

    let mut server = Server::spawn("127.0.0.1:0", config.clone()).expect("bind");
    let mut c = Client::connect(&server);
    let lines = [sim_line("bzip2", "baseline"), sim_line("gzip", "postdoms")];
    let cold: Vec<String> = lines.iter().map(|l| c.exchange(l)).collect();
    for (l, r) in lines.iter().zip(&cold) {
        assert_eq!(r, &offline_expected(l));
    }
    server.shutdown();
    drop(server);

    let mut server = Server::spawn("127.0.0.1:0", config).expect("bind");
    let mut c = Client::connect(&server);
    let warm: Vec<String> = lines.iter().map(|l| c.exchange(l)).collect();
    assert_eq!(warm, cold, "warm-start replies are byte-identical");

    let stats = json::parse(&c.exchange("stats")).expect("stats parse");
    let cache = stats.get("stats").unwrap().get("cache").unwrap();
    assert!(cache.get("warm_start").unwrap().as_u64().unwrap() >= 2);
    assert!(cache.get("journal_bytes").unwrap().as_u64().unwrap() > 0);
    let s = server.service().stats();
    assert_eq!(s.batched_cells, 0, "warm requests never re-simulate");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A peer that sends requests but never reads replies cannot wedge the
/// drain: the write watchdog forfeits the connection and `shutdown`
/// completes promptly.
#[test]
fn stuck_reader_cannot_wedge_the_drain() {
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            write_timeout: Duration::from_millis(300),
            ..test_config()
        },
    )
    .expect("bind");

    // Flood stats requests without ever reading a byte back: the
    // handler's replies fill the socket buffers until a write blocks.
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let req = "stats\n".repeat(512);
    for _ in 0..64 {
        if w.write_all(req.as_bytes()).is_err() {
            break; // handler already gave up on us — fine
        }
    }

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("drain must finish despite the stuck reader");
    drop(stream);
}

fn cache_inserts(c: &mut Client) -> u64 {
    let stats = json::parse(&c.exchange("stats")).expect("stats parse");
    stats
        .get("stats")
        .unwrap()
        .get("cache")
        .unwrap()
        .get("inserts")
        .unwrap()
        .as_u64()
        .unwrap()
}

fn cache_hits(c: &mut Client) -> u64 {
    let stats = json::parse(&c.exchange("stats")).expect("stats parse");
    stats
        .get("stats")
        .unwrap()
        .get("cache")
        .unwrap()
        .get("hits")
        .unwrap()
        .as_u64()
        .unwrap()
}
