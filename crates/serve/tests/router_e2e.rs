//! End-to-end tests for the sharding router against real in-process
//! backends: byte-identity of routed replies vs a single server vs the
//! offline ground truth, failover with ejection when a backend dies
//! mid-run, stats aggregation, the drain-the-router-not-the-backends
//! shutdown verb, and the machine-parseable `SERVE_ADDR=`/`ROUTER_ADDR=`
//! first stdout line of both binaries.

use polyflow_serve::json;
use polyflow_serve::protocol::{ok_response, parse_request, Request};
use polyflow_serve::router::{Router, RouterConfig};
use polyflow_serve::{Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A generous budget every test cell completes within.
const BUDGET: u64 = 1_000_000_000;

fn backend_config() -> ServiceConfig {
    ServiceConfig {
        jobs: 2,
        queue_capacity: 32,
        batch_max: 16,
        batch_window: Duration::from_millis(1),
        default_max_cycles: BUDGET,
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

/// A fast-reacting router policy over `backends` for tests.
fn router_config(backends: Vec<String>) -> RouterConfig {
    RouterConfig {
        check_interval: Duration::from_millis(50),
        io_timeout: Duration::from_secs(60),
        default_max_cycles: BUDGET,
        ..RouterConfig::new(backends)
    }
}

fn spawn_backends(n: usize) -> Vec<Server> {
    (0..n)
        .map(|_| Server::spawn("127.0.0.1:0", backend_config()).expect("bind backend"))
        .collect()
}

fn addrs(backends: &[Server]) -> Vec<String> {
    backends.iter().map(|b| b.addr().to_string()).collect()
}

fn exchange_at(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut w = stream.try_clone().expect("clone");
    w.write_all(format!("{line}\n").as_bytes()).expect("write");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    assert!(reply.ends_with('\n'), "newline-framed reply: {reply:?}");
    reply.trim_end_matches('\n').to_string()
}

fn sim_line(workload: &str, policy: &str, budget: u64) -> String {
    format!(
        "{{\"workload\":\"{workload}\",\"policy\":\"{policy}\",\
         \"config\":{{\"max_cycles\":{budget}}}}}"
    )
}

/// A key set wide enough that every shard owns some of it: distinct
/// `max_cycles` values are distinct cache keys with identical results.
fn test_lines() -> Vec<String> {
    let mut lines = vec![
        sim_line("bzip2", "baseline", BUDGET),
        sim_line("bzip2", "postdoms", BUDGET),
        sim_line("gzip", "baseline", BUDGET),
        sim_line("gzip", "postdoms", BUDGET),
    ];
    for i in 1..=4u64 {
        lines.push(sim_line("gzip", "postdoms", BUDGET + i));
    }
    lines
}

/// The offline ground truth for a simulate line.
fn offline_expected(line: &str) -> String {
    let Ok(Request::Simulate(req)) = parse_request(line, BUDGET) else {
        panic!("not a simulate line: {line}");
    };
    let workload = match &req.source {
        polyflow_serve::SimSource::Bundled(name) => {
            polyflow_workloads::by_name(name).expect("bundled workload")
        }
        polyflow_serve::SimSource::Uploaded(w) => (**w).clone(),
    };
    let prepared = polyflow_bench::PreparedWorkload::prepare(workload);
    let mut scratch = polyflow_sim::SimScratch::default();
    let result =
        polyflow_bench::sweep::run_cell_with_config(&prepared, req.cell, &req.config, &mut scratch)
            .expect("test cell simulates cleanly");
    ok_response(
        req.workload_label(),
        &req.policy_label(),
        &json::compact(&result.to_json()),
    )
}

/// Served ≡ offline, at any shard count: the same request line answered
/// through a 2-shard router, a 3-shard router, and a lone server all
/// produce the same bytes as an offline run in this process.
#[test]
fn routed_replies_are_byte_identical_across_shard_counts() {
    let lines = test_lines();
    let expected: Vec<String> = lines.iter().map(|l| offline_expected(l)).collect();

    let lone = Server::spawn("127.0.0.1:0", backend_config()).expect("bind");
    let lone_addr = lone.addr().to_string();

    for shard_count in [2usize, 3] {
        let backends = spawn_backends(shard_count);
        let mut router =
            Router::spawn("127.0.0.1:0", router_config(addrs(&backends))).expect("router");
        let router_addr = router.addr().to_string();
        for (line, want) in lines.iter().zip(&expected) {
            let via_router = exchange_at(&router_addr, line);
            assert_eq!(&via_router, want, "router({shard_count} shards) vs offline");
            // Second hit is a backend cache hit relayed verbatim.
            assert_eq!(exchange_at(&router_addr, line), via_router, "cached bytes");
            assert_eq!(&exchange_at(&lone_addr, line), want, "lone server");
        }
        // Every shard took some of the traffic (the key set is wider
        // than any plausible all-on-one-shard split at 100 replicas).
        let stats = json::parse(&exchange_at(&router_addr, "stats")).expect("stats parse");
        let router_obj = stats.get("router").expect("router stats object");
        let backends_arr = router_obj
            .get("backends")
            .and_then(json::Json::as_arr)
            .expect("backends array");
        assert_eq!(backends_arr.len(), shard_count);
        let forwarded: Vec<u64> = backends_arr
            .iter()
            .map(|b| b.get("forwarded").and_then(json::Json::as_u64).unwrap())
            .collect();
        assert!(
            forwarded.iter().all(|&f| f > 0),
            "every shard saw traffic: {forwarded:?}"
        );
        router.shutdown();
    }
}

/// Kill one of two backends mid-run: every request still answers with
/// the right bytes via failover, and the router ejects the dead shard.
#[test]
fn backend_death_mid_run_fails_over_without_wrong_answers() {
    let lines = test_lines();
    let mut backends = spawn_backends(2);
    let mut router = Router::spawn("127.0.0.1:0", router_config(addrs(&backends))).expect("router");
    let router_addr = router.addr().to_string();

    // Warm every key through the router, recording the accepted bytes.
    let before: Vec<String> = lines.iter().map(|l| exchange_at(&router_addr, l)).collect();
    for r in &before {
        assert!(r.starts_with("{\"ok\":true"), "{r}");
    }

    // Take down one backend (its listener closes with it).
    let mut victim = backends.pop().expect("second backend");
    victim.shutdown();
    drop(victim);

    // Every key — including those the dead shard owned — must answer
    // with the same bytes as before the kill, via failover to the
    // survivor (which recomputes cells it never cached; determinism
    // makes that indistinguishable on the wire).
    for (line, want) in lines.iter().zip(&before) {
        assert_eq!(&exchange_at(&router_addr, line), want, "failover bytes");
    }

    // The ejection must be observable: forwarding failures (or the
    // health checker) mark the dead backend down.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if router.core().ejections() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "ejection never recorded");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = json::parse(&exchange_at(&router_addr, "stats")).expect("stats parse");
    let backends_arr = stats
        .get("router")
        .and_then(|r| r.get("backends"))
        .and_then(json::Json::as_arr)
        .expect("backends array");
    let healthy: Vec<bool> = backends_arr
        .iter()
        .map(|b| b.get("healthy").and_then(json::Json::as_bool).unwrap())
        .collect();
    assert_eq!(healthy, vec![true, false], "dead shard marked unhealthy");
    // The survivor owns the whole ring while its peer is out.
    let ownership: Vec<u64> = backends_arr
        .iter()
        .map(|b| {
            b.get("ownership_permille")
                .and_then(json::Json::as_u64)
                .unwrap()
        })
        .collect();
    assert_eq!(ownership[1], 0, "ejected shard owns nothing");
    assert!(
        ownership[0] >= 1000,
        "survivor owns the ring: {ownership:?}"
    );
    router.shutdown();
}

/// The router's `stats` verb aggregates per-backend health, ownership,
/// spliced backend stats, and cross-backend totals.
#[test]
fn router_stats_aggregate_health_ownership_and_backend_counters() {
    let backends = spawn_backends(2);
    let mut router = Router::spawn("127.0.0.1:0", router_config(addrs(&backends))).expect("router");
    let router_addr = router.addr().to_string();

    let line = sim_line("gzip", "postdoms", BUDGET);
    let first = exchange_at(&router_addr, &line);
    assert!(first.starts_with("{\"ok\":true"), "{first}");
    let again = exchange_at(&router_addr, &line);
    assert_eq!(again, first);

    let stats = json::parse(&exchange_at(&router_addr, "stats")).expect("stats parse");
    let router_obj = stats.get("router").expect("router object");
    assert!(
        router_obj
            .get("requests")
            .and_then(json::Json::as_u64)
            .unwrap()
            >= 3
    );
    let backends_arr = router_obj
        .get("backends")
        .and_then(json::Json::as_arr)
        .expect("backends array");
    let mut ownership_total = 0u64;
    for b in backends_arr {
        assert_eq!(b.get("healthy").and_then(json::Json::as_bool), Some(true));
        ownership_total += b
            .get("ownership_permille")
            .and_then(json::Json::as_u64)
            .unwrap();
        // Each live backend's own stats are spliced in whole.
        let inner = b.get("stats").expect("spliced backend stats");
        assert!(
            inner.get("cache").is_some(),
            "backend stats carry cache counters"
        );
    }
    assert!(
        (998..=1002).contains(&ownership_total),
        "ring ownership sums to ~1000 permille, got {ownership_total}"
    );
    let totals = router_obj.get("totals").expect("totals object");
    assert!(
        totals
            .get("cache_hits")
            .and_then(json::Json::as_u64)
            .unwrap()
            >= 1,
        "the repeat hit shows up in the cross-backend totals"
    );
    router.shutdown();
}

/// The `shutdown` verb drains the router, not the backends.
#[test]
fn shutdown_verb_drains_router_but_not_backends() {
    let backends = spawn_backends(2);
    let mut router = Router::spawn("127.0.0.1:0", router_config(addrs(&backends))).expect("router");
    let router_addr = router.addr().to_string();

    let reply = exchange_at(&router_addr, "shutdown");
    assert_eq!(reply, "{\"ok\":true,\"draining\":true}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.draining() {
        assert!(Instant::now() < deadline, "router never began draining");
        std::thread::sleep(Duration::from_millis(10));
    }
    router.shutdown();

    // Both backends answer directly, untouched by the router's drain.
    for b in &backends {
        assert_eq!(
            exchange_at(&b.addr().to_string(), "ping"),
            "{\"ok\":true,\"pong\":true}"
        );
    }
}

/// Pin for the machine-parseable bound-address line: the first stdout
/// line of `serve --addr host:0` is `SERVE_ADDR=<addr>` and the
/// address in it answers pings; same for `router` and `ROUTER_ADDR=`.
#[test]
fn bound_address_is_the_first_stdout_line_of_both_binaries() {
    use std::process::{Command, Stdio};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut serve_stdout = BufReader::new(serve.stdout.take().expect("piped stdout"));
    let mut first = String::new();
    serve_stdout.read_line(&mut first).expect("read stdout");
    let serve_addr = first
        .trim_end()
        .strip_prefix("SERVE_ADDR=")
        .unwrap_or_else(|| panic!("first stdout line must be SERVE_ADDR=<addr>, got {first:?}"))
        .to_string();
    assert_eq!(
        exchange_at(&serve_addr, "ping"),
        "{\"ok\":true,\"pong\":true}",
        "the printed address is live"
    );

    let mut router = Command::new(env!("CARGO_BIN_EXE_router"))
        .args(["--addr", "127.0.0.1:0", "--backends", &serve_addr])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn router");
    let mut router_stdout = BufReader::new(router.stdout.take().expect("piped stdout"));
    let mut first = String::new();
    router_stdout.read_line(&mut first).expect("read stdout");
    let router_addr = first
        .trim_end()
        .strip_prefix("ROUTER_ADDR=")
        .unwrap_or_else(|| panic!("first stdout line must be ROUTER_ADDR=<addr>, got {first:?}"))
        .to_string();
    assert_eq!(
        exchange_at(&router_addr, "ping"),
        "{\"ok\":true,\"pong\":true}",
        "the printed router address is live"
    );

    router.kill().expect("kill router");
    let _ = router.wait();
    serve.kill().expect("kill serve");
    let _ = serve.wait();
}
