//! Dynamic reconvergence prediction, modeled after Collins, Tullsen and
//! Wang, *Control Flow Optimization via Dynamic Reconvergence Prediction*
//! (MICRO-37), as used by the paper's §2.4/§4.4 to reconstruct immediate
//! postdominator information at run time.
//!
//! A [`ReconvergencePredictor`] observes the committed (retired)
//! instruction stream. For each static conditional branch it learns a
//! *reconvergence point*: the PC where control flow is expected to rejoin
//! regardless of the branch direction. That point approximates the
//! immediate postdominator of the branch's basic block and can be used as
//! a spawn target without any compiler support.
//!
//! Following the paper:
//!
//! * the predictor trains on the retirement stream (§4.4), so **warm-up
//!   effects are modeled** — a branch predicts nothing until it has been
//!   observed, and poorly until both directions have retired;
//! * capacity and conflict effects in the predictor's storage are **not**
//!   modeled (the paper makes the same simplification in §4.4);
//! * candidates are maintained in categories; the most important category
//!   is a reconvergence PC **below** the branch PC in program layout
//!   (§2.4), which captures if/if-else joins and loop fall-throughs; a
//!   second category covers reconvergence **at or above** the branch
//!   (loop headers reached by backward branches).
//!
//! # Example
//!
//! ```
//! use polyflow_reconv::{ReconvConfig, ReconvergencePredictor};
//! use polyflow_isa::{ProgramBuilder, Reg, Cond, AluOp, execute_window};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.begin_function("main");
//! let skip = b.fresh_label("skip");
//! b.li(Reg::R1, 0);
//! let top = b.fresh_label("top");
//! b.bind_label(top);
//! b.alui(AluOp::And, Reg::R2, Reg::R1, 1);
//! b.br_imm(Cond::Eq, Reg::R2, 0, skip);        // alternating hammock
//! b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
//! b.bind_label(skip);
//! b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);     // join
//! b.br_imm(Cond::Lt, Reg::R1, 50, top);
//! b.halt();
//! b.end_function();
//! let program = b.build()?;
//! let trace = execute_window(&program, 10_000)?.trace;
//!
//! let mut pred = ReconvergencePredictor::new(ReconvConfig::default());
//! for e in &trace {
//!     pred.observe(e);
//! }
//! // The hammock branch's reconvergence point is the join.
//! let branch_pc = trace.iter().find(|e| e.inst.is_cond_branch()).unwrap().pc;
//! assert!(pred.predict(branch_pc).is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use polyflow_isa::{Pc, TraceEntry};
use std::collections::{BTreeSet, HashMap};

/// Which candidate category produced a prediction (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconvCategory {
    /// Reconvergence PC lies below the branch PC in program layout — the
    /// paper's "most important" category: forward if/if-else joins and the
    /// fall-throughs of backward loop branches.
    Below,
    /// Reconvergence PC at or above the branch PC (e.g. a loop header).
    AboveOrEqual,
    /// Only one direction has been observed: the predictor falls back to
    /// the first PC committed after the branch on that path.
    SingleDirection,
}

/// Configuration for the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconvConfig {
    /// How many committed instructions after a branch are considered when
    /// searching for its reconvergence point.
    pub window: usize,
    /// Cap on stored distinct PCs per branch direction (idealized storage;
    /// insertions stop at the cap).
    pub max_pcs_per_direction: usize,
    /// Number of training observations of a direction before its PC set is
    /// considered stable enough to predict from.
    pub min_observations: u32,
}

impl Default for ReconvConfig {
    fn default() -> Self {
        ReconvConfig {
            window: 256,
            max_pcs_per_direction: 512,
            min_observations: 1,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct BranchEntry {
    taken_pcs: BTreeSet<Pc>,
    not_taken_pcs: BTreeSet<Pc>,
    taken_obs: u32,
    not_taken_obs: u32,
    /// True if the branch's taken target is at or above the branch itself
    /// (a backward branch, i.e. a loop branch).
    backward: bool,
    /// For indirect jumps: the running intersection of committed-PC
    /// windows across instances. PCs common to *every* observed path are
    /// the reconvergence region (Collins et al. used the predictor for
    /// indirect jumps in DMT; the paper's §4.4 spawns at their
    /// reconvergence points too).
    jr_common: Option<BTreeSet<Pc>>,
    jr_obs: u32,
}

/// An in-flight training window for one dynamic branch instance.
#[derive(Debug)]
struct ActiveTracker {
    branch_pc: Pc,
    taken: bool,
    is_jr: bool,
    remaining: usize,
    pcs: Vec<Pc>,
}

/// Learns per-branch reconvergence points from the retirement stream.
///
/// Feed every retired instruction to [`observe`](Self::observe) in program
/// order; query [`predict`](Self::predict) at any time (typically at fetch,
/// as the Task Spawn Unit does).
#[derive(Debug)]
pub struct ReconvergencePredictor {
    config: ReconvConfig,
    table: HashMap<Pc, BranchEntry>,
    active: Vec<ActiveTracker>,
    /// Static branches currently being tracked (one training slot per
    /// static branch, like the hardware's single active entry).
    tracking: std::collections::HashSet<Pc>,
    observed: u64,
}

impl ReconvergencePredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(config: ReconvConfig) -> ReconvergencePredictor {
        ReconvergencePredictor {
            config,
            table: HashMap::new(),
            active: Vec::new(),
            tracking: std::collections::HashSet::new(),
            observed: 0,
        }
    }

    /// Observes one retired instruction.
    ///
    /// Conditional branches open a training window (one per static branch
    /// at a time); every later instruction extends open windows. A window
    /// closes when it fills, or — crucially for loops — when the same
    /// static branch commits again: reconvergence for an instance must
    /// happen before the branch re-executes, so later-iteration PCs must
    /// not pollute the candidate sets.
    pub fn observe(&mut self, e: &TraceEntry) {
        self.observed += 1;
        // Extend open windows; close those that fill or whose branch
        // recommits.
        let mut finished = Vec::new();
        for (i, t) in self.active.iter_mut().enumerate() {
            if e.pc == t.branch_pc {
                finished.push(i);
                continue;
            }
            t.pcs.push(e.pc);
            t.remaining -= 1;
            if t.remaining == 0 {
                finished.push(i);
            }
        }
        // Retire finished windows (back to front to keep indices valid).
        for &i in finished.iter().rev() {
            let t = self.active.swap_remove(i);
            self.commit_window(t);
        }
        // Open a new window for this branch or indirect jump.
        let is_jr = matches!(e.inst, polyflow_isa::Inst::Jr { .. });
        if (e.inst.is_cond_branch() || is_jr) && !self.tracking.contains(&e.pc) {
            if let polyflow_isa::Inst::Br { target, .. } = e.inst {
                self.table.entry(e.pc).or_default().backward = target <= e.pc;
            }
            self.tracking.insert(e.pc);
            self.active.push(ActiveTracker {
                branch_pc: e.pc,
                taken: e.taken,
                is_jr,
                remaining: self.config.window,
                pcs: Vec::with_capacity(self.config.window.min(64)),
            });
        }
    }

    /// Flushes any still-open training windows (call at end of stream).
    pub fn flush(&mut self) {
        for t in std::mem::take(&mut self.active) {
            self.commit_window(t);
        }
    }

    fn commit_window(&mut self, t: ActiveTracker) {
        self.tracking.remove(&t.branch_pc);
        let entry = self.table.entry(t.branch_pc).or_default();
        if t.is_jr {
            let window: BTreeSet<Pc> = t
                .pcs
                .into_iter()
                .take(self.config.max_pcs_per_direction)
                .collect();
            entry.jr_obs += 1;
            entry.jr_common = Some(match entry.jr_common.take() {
                None => window,
                Some(common) => common.intersection(&window).copied().collect(),
            });
            return;
        }
        let (set, obs) = if t.taken {
            (&mut entry.taken_pcs, &mut entry.taken_obs)
        } else {
            (&mut entry.not_taken_pcs, &mut entry.not_taken_obs)
        };
        *obs += 1;
        for pc in t.pcs {
            if set.len() >= self.config.max_pcs_per_direction {
                break;
            }
            set.insert(pc);
        }
    }

    /// Predicts the reconvergence point for the branch at `branch_pc`.
    ///
    /// Returns `None` for never-observed branches (warm-up, §4.4).
    pub fn predict(&self, branch_pc: Pc) -> Option<Pc> {
        self.predict_with_category(branch_pc).map(|(pc, _)| pc)
    }

    /// Predicts the reconvergence point along with its category.
    pub fn predict_with_category(&self, branch_pc: Pc) -> Option<(Pc, ReconvCategory)> {
        let e = self.table.get(&branch_pc)?;
        // Indirect jumps: the intersection of committed windows across
        // instances is the common (reconvergence) region; take its first
        // PC below the jump.
        if let Some(common) = &e.jr_common {
            if e.jr_obs >= 2 {
                let below = common.iter().find(|&&pc| pc > branch_pc);
                return below.map(|&pc| (pc, ReconvCategory::Below));
            }
        }
        if e.taken_obs == 0 && e.not_taken_obs == 0 {
            return None;
        }
        // Backward (loop) branches: per-instance windows end when the
        // branch recommits, so loop-body PCs all lie at or above the
        // branch; the reconvergence point is the first layout PC *after*
        // the branch ever committed in its wake — the loop fall-through.
        if e.backward {
            let cand = e
                .taken_pcs
                .iter()
                .chain(e.not_taken_pcs.iter())
                .filter(|&&pc| pc > branch_pc)
                .min();
            return cand.map(|&pc| (pc, ReconvCategory::Below));
        }
        let both = e.taken_obs >= self.config.min_observations
            && e.not_taken_obs >= self.config.min_observations;
        if both {
            // Intersection of PCs seen on both paths.
            let below = e
                .taken_pcs
                .iter()
                .filter(|&&pc| pc > branch_pc)
                .find(|&&pc| e.not_taken_pcs.contains(&pc));
            if let Some(&pc) = below {
                return Some((pc, ReconvCategory::Below));
            }
            let above = e
                .taken_pcs
                .iter()
                .filter(|&&pc| pc <= branch_pc)
                .find(|&&pc| e.not_taken_pcs.contains(&pc));
            if let Some(&pc) = above {
                return Some((pc, ReconvCategory::AboveOrEqual));
            }
            // Empty intersection: typical of a forward loop-exit branch
            // whose taken side leaves the loop — per-instance windows end
            // when the branch recommits, so the exit code only ever shows
            // up on the taken side. Its first PC approximates the loop
            // fall-through.
            let taken_below = e.taken_pcs.iter().find(|&&pc| pc > branch_pc);
            if let Some(&pc) = taken_below {
                return Some((pc, ReconvCategory::Below));
            }
            return None;
        }
        // Single-direction fallback: the first committed PC after the
        // branch on the observed path.
        let seen = if e.taken_obs > 0 {
            &e.taken_pcs
        } else {
            &e.not_taken_pcs
        };
        // Prefer a PC below the branch (paper's dominant category).
        let below = seen.iter().find(|&&pc| pc > branch_pc);
        below
            .or_else(|| seen.iter().next())
            .map(|&pc| (pc, ReconvCategory::SingleDirection))
    }

    /// Number of static branches with any training state.
    pub fn trained_branches(&self) -> usize {
        self.table.len()
    }

    /// Number of static branches observed in both directions.
    pub fn fully_trained_branches(&self) -> usize {
        self.table
            .values()
            .filter(|e| e.taken_obs > 0 && e.not_taken_obs > 0)
            .count()
    }

    /// Total instructions observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The configuration in use.
    pub fn config(&self) -> ReconvConfig {
        self.config
    }
}

/// Trains a predictor over a full trace (convenience for offline use; the
/// timing simulator instead calls [`ReconvergencePredictor::observe`] at
/// retire time to model warm-up).
pub fn train_on_trace(trace: &polyflow_isa::Trace, config: ReconvConfig) -> ReconvergencePredictor {
    let mut p = ReconvergencePredictor::new(config);
    for e in trace {
        p.observe(e);
    }
    p.flush();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, AluOp, Cond, Program, ProgramBuilder, Reg};

    /// Alternating hammock inside a loop; returns (program, branch pc,
    /// join pc, loop-branch pc, after-loop pc).
    fn hammock_loop() -> (Program, Pc, Pc, Pc, Pc) {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let skip = b.fresh_label("skip");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // 0
        b.bind_label(top);
        b.alui(AluOp::And, Reg::R2, Reg::R1, 1); // 1
        let branch = b.br_imm(Cond::Eq, Reg::R2, 0, skip); // 2,3
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 4 then
        b.bind_label(skip);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 5 join
        let loop_branch = b.br_imm(Cond::Lt, Reg::R1, 50, top); // 6,7
        b.halt(); // 8
        b.end_function();
        let p = b.build().unwrap();
        (p, branch, Pc::new(5), loop_branch, Pc::new(8))
    }

    fn trained(p: &Program) -> ReconvergencePredictor {
        let trace = execute_window(p, 100_000).unwrap().trace;
        train_on_trace(&trace, ReconvConfig::default())
    }

    #[test]
    fn hammock_branch_reconverges_at_join() {
        let (p, branch, join, _, _) = hammock_loop();
        let pred = trained(&p);
        let (pc, cat) = pred.predict_with_category(branch).unwrap();
        assert_eq!(pc, join);
        assert_eq!(cat, ReconvCategory::Below);
    }

    #[test]
    fn loop_branch_reconverges_below() {
        let (p, _, _, loop_branch, after) = hammock_loop();
        let pred = trained(&p);
        let (pc, cat) = pred.predict_with_category(loop_branch).unwrap();
        // Both directions were observed (loop ran and exited): the first
        // common PC below the branch is the loop fall-through.
        assert_eq!(pc, after);
        assert_eq!(cat, ReconvCategory::Below);
    }

    #[test]
    fn unobserved_branch_predicts_nothing() {
        let (p, _, _, _, _) = hammock_loop();
        let pred = trained(&p);
        assert_eq!(pred.predict(Pc::new(999)), None);
    }

    #[test]
    fn warm_up_requires_observation() {
        let (p, branch, _, _, _) = hammock_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let mut pred = ReconvergencePredictor::new(ReconvConfig::default());
        assert_eq!(pred.predict(branch), None, "cold predictor knows nothing");
        // Feed only the first three instructions: branch not yet retired
        // with both directions + window.
        for e in trace.entries().iter().take(3) {
            pred.observe(e);
        }
        // The branch itself retired at index 3... not yet: entries 0,1,2.
        assert_eq!(pred.predict(branch), None);
        for e in trace.entries() {
            pred.observe(e);
        }
        pred.flush();
        assert!(pred.predict(branch).is_some());
    }

    #[test]
    fn single_direction_fallback() {
        // A branch that never goes the other way within the window.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let skip = b.fresh_label("skip");
        let branch = b.br_imm(Cond::Eq, Reg::R0, 1, skip); // never taken
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.bind_label(skip);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let pred = trained(&p);
        let (pc, cat) = pred.predict_with_category(branch).unwrap();
        assert_eq!(cat, ReconvCategory::SingleDirection);
        // First PC after the branch on the not-taken path.
        assert_eq!(pc, Pc::new(2));
    }

    #[test]
    fn backward_reconvergence_category_exists() {
        // Construct a branch whose only common PC across both directions
        // is at/above the branch: both arms jump back to the loop top and
        // the program never commits a common PC below the branch within
        // the window... then exits via a different branch.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let arm2 = b.fresh_label("arm2");
        let merge_back = b.fresh_label("mb");
        b.li(Reg::R1, 0); // 0
        b.bind_label(top); // 1
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 1
        b.alui(AluOp::And, Reg::R2, Reg::R1, 1); // 2
        let exit_br = b.br_imm(Cond::Gt, Reg::R1, 40, merge_back); // 3,4 (exits high)
        let split = b.br_imm(Cond::Eq, Reg::R2, 0, arm2); // 5,6
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 7 arm1
        b.jmp(top); // 8
        b.bind_label(arm2);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1); // 9 arm2
        b.jmp(top); // 10
        b.bind_label(merge_back);
        b.halt(); // 11
        b.end_function();
        let p = b.build().unwrap();
        let pred = trained(&p);
        let (_, cat) = pred.predict_with_category(split).unwrap();
        assert_eq!(cat, ReconvCategory::AboveOrEqual);
        let _ = exit_br;
    }

    #[test]
    fn training_statistics() {
        let (p, _, _, _, _) = hammock_loop();
        let pred = trained(&p);
        assert!(pred.trained_branches() >= 2);
        assert!(pred.fully_trained_branches() >= 1);
        assert!(pred.observed() > 100);
        assert_eq!(pred.config().window, 256);
    }

    #[test]
    fn window_limits_visibility() {
        // With a tiny window the loop fall-through (only visible at loop
        // exit, far away) cannot be learned from early iterations.
        let (p, branch, join, _, _) = hammock_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let mut pred = ReconvergencePredictor::new(ReconvConfig {
            window: 4,
            ..ReconvConfig::default()
        });
        for e in &trace {
            pred.observe(e);
        }
        pred.flush();
        // The hammock join is 2-3 instructions away: still learnable.
        assert_eq!(pred.predict(branch), Some(join));
    }

    #[test]
    fn flush_commits_partial_windows() {
        // A branch that executes exactly once: its window can only be
        // committed by an explicit flush (it never fills, and the branch
        // never recommits).
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let skip = b.fresh_label("skip");
        let branch = b.br_imm(Cond::Eq, Reg::R0, 1, skip);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.bind_label(skip);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100).unwrap().trace;
        let mut pred = ReconvergencePredictor::new(ReconvConfig {
            window: 1_000_000, // the window never fills naturally
            ..ReconvConfig::default()
        });
        for e in &trace {
            pred.observe(e);
        }
        assert_eq!(pred.predict(branch), None, "window still open");
        pred.flush();
        assert!(pred.predict(branch).is_some(), "flush commits training");
    }
}
