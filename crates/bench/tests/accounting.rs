//! The acceptance gate for the cycle-accounting layer: the sum invariant
//! `sum(buckets) == cycles × contexts` must hold for **all 12 bundled
//! workloads**, under both the superscalar baseline and the `postdoms`
//! PolyFlow configuration, and the stall counters must equal their
//! account buckets exactly.

use polyflow_bench::{prepare_all_jobs, PreparedWorkload};
use polyflow_core::Policy;
use polyflow_sim::{Bucket, MachineConfig, SimResult, SimScratch};

fn assert_balanced(w: &PreparedWorkload, label: &str, r: &SimResult, contexts: u64) {
    r.account
        .check()
        .unwrap_or_else(|e| panic!("{} [{label}]: {e}", w.name));
    assert_eq!(r.account.cycles, r.cycles, "{} [{label}]", w.name);
    assert_eq!(r.account.contexts, contexts, "{} [{label}]", w.name);
    assert_eq!(
        r.account.total_slots(),
        r.cycles * contexts,
        "{} [{label}]: sum(buckets) != cycles × contexts",
        w.name
    );
    for (counter, bucket) in [
        (r.fetch_stall_branch_cycles, Bucket::BranchStall),
        (r.fetch_stall_icache_cycles, Bucket::IcacheStall),
        (r.squash_recovery_cycles, Bucket::SquashRecovery),
        (r.spawn_setup_cycles, Bucket::SpawnSetup),
    ] {
        assert_eq!(
            counter,
            r.account.bucket(bucket),
            "{} [{label}]: counter vs {bucket} bucket",
            w.name
        );
    }
    assert_eq!(
        r.account.tasks.len() as u64,
        1 + r.total_spawns(),
        "{} [{label}]: one task account per dynamic task",
        w.name
    );
}

#[test]
fn invariant_holds_for_all_workloads_baseline_and_postdoms() {
    let workloads = prepare_all_jobs(&[], 4);
    assert_eq!(
        workloads.len(),
        polyflow_workloads::NAMES.len(),
        "every bundled workload must participate"
    );
    let mut scratch = SimScratch::default();
    for w in &workloads {
        let base = w.run_baseline_with(&mut scratch);
        assert_balanced(
            w,
            "baseline",
            &base,
            MachineConfig::superscalar().contexts(),
        );
        assert_eq!(base.account.bucket(Bucket::IdleContext), 0);

        let pd = w.run_static_with(Policy::Postdoms, &mut scratch);
        assert_balanced(w, "postdoms", &pd, MachineConfig::hpca07().contexts());
        assert_eq!(base.instructions, pd.instructions);

        // The spawn log stays ordered by cycle on every real workload.
        assert!(
            pd.spawn_log.windows(2).all(|s| s[0].cycle <= s[1].cycle),
            "{}: spawn log out of order",
            w.name
        );
    }
}

#[test]
fn predicted_dependence_config_is_stable_on_all_workloads() {
    // Regression net for the event-driven scheduler's residue sweep: the
    // fig09_predicted_dependences configuration (hint-entry registers +
    // store-set memory prediction) left issued entries parked in the
    // ready set after the sweep evicted them from the scheduler, and a
    // later batch then swap-removed through a stale slot (out-of-bounds
    // on crafty/loop). Every workload must complete with a balanced
    // ledger under both policies of that figure's hot path.
    use polyflow_bench::sweep::{run_cell_with_config, Cell};
    use polyflow_sim::DependenceMode;
    let mut cfg = MachineConfig::hpca07();
    cfg.register_dependence = DependenceMode::StoreSet;
    cfg.memory_dependence = DependenceMode::StoreSet;
    let workloads = prepare_all_jobs(&[], 4);
    let mut scratch = SimScratch::default();
    for w in &workloads {
        for policy in [Policy::Loop, Policy::Postdoms] {
            let r = run_cell_with_config(w, Cell::Static(policy), &cfg, &mut scratch)
                .unwrap_or_else(|e| panic!("{}/{policy:?}: {e}", w.name));
            assert_balanced(w, &format!("{policy:?}"), &r, cfg.contexts());
        }
    }
}
