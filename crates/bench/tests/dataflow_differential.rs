//! The workload half of the parallel-solver oracle suite: on every one
//! of the 12 SPEC stand-ins, `solve_parallel` must be bit-identical to
//! the sequential `solve` on every problem the shipped analyses pose —
//! per-function liveness (backward) and reaching definitions (forward,
//! both entry policies), and the whole-program supergraph in both
//! directions — at jobs ∈ {1, 2, 4}.
//!
//! Synthetic shapes and the fuzzed CFG distribution live in
//! `crates/dataflow/tests/parallel_oracle.rs`; this file covers the
//! programs the repo actually analyzes.

use polyflow_cfg::Cfg;
use polyflow_dataflow::oracle::{
    check_against_oracle, function_liveness_problem, function_reaching_problem,
};
use polyflow_dataflow::{EntryDefs, InterLiveness, SuperGraph};

const JOBS: [usize; 3] = [1, 2, 4];

#[test]
fn every_workload_function_matches_oracle() {
    for w in polyflow_workloads::all() {
        let cfgs = Cfg::build_all(&w.program);
        assert!(!cfgs.is_empty(), "{} has functions", w.name);
        for cfg in &cfgs {
            let fname = &cfg.function().name;
            let live = function_liveness_problem(&w.program, cfg);
            check_against_oracle(&live.as_problem(), &JOBS)
                .unwrap_or_else(|e| panic!("{}::{fname} liveness: {e}", w.name));
            for entry in [EntryDefs::All, EntryDefs::Strict] {
                let reach = function_reaching_problem(&w.program, cfg, entry);
                check_against_oracle(&reach.as_problem(), &JOBS)
                    .unwrap_or_else(|e| panic!("{}::{fname} reaching {entry:?}: {e}", w.name));
            }
        }
    }
}

#[test]
fn every_workload_supergraph_matches_oracle() {
    for w in polyflow_workloads::all() {
        let cfgs = Cfg::build_all(&w.program);
        let sg = SuperGraph::build(&w.program, &cfgs);
        assert!(!sg.is_empty(), "{} supergraph has nodes", w.name);
        check_against_oracle(&sg.liveness_problem(), &JOBS)
            .unwrap_or_else(|e| panic!("{} supergraph liveness: {e}", w.name));
        check_against_oracle(&sg.forward_problem(), &JOBS)
            .unwrap_or_else(|e| panic!("{} supergraph forward: {e}", w.name));
    }
}

/// The wired-in path: `InterLiveness::compute_with_jobs` must produce
/// identical per-PC masks at every worker count (it rides on the
/// bit-identical solver, so this can only fail if the wiring itself
/// diverges).
#[test]
fn inter_liveness_masks_identical_across_jobs() {
    for w in polyflow_workloads::all() {
        let reference = InterLiveness::compute_with_jobs(&w.program, 1);
        for jobs in [2, 4] {
            let got = InterLiveness::compute_with_jobs(&w.program, jobs);
            for pc in 0..w.program.len() {
                let pc = polyflow_isa::Pc::new(pc as u32);
                assert_eq!(
                    reference.live_mask(pc),
                    got.live_mask(pc),
                    "{} jobs={jobs} pc={pc:?}",
                    w.name
                );
            }
        }
    }
}
