//! The fault-tolerance property the whole PR is built around: any
//! program the static verifier accepts either simulates to completion or
//! returns a *typed* error under a cycle budget — it never panics — on
//! both the superscalar baseline and the `postdoms` PolyFlow
//! configuration. SplitMix64-driven and hermetic: the same seeds run
//! every time.

use polyflow_bench::fuzz::{random_program, WINDOW};
use polyflow_core::{verify, Policy, ProgramAnalysis, VerifyOptions};
use polyflow_isa::execute_window;
use polyflow_sim::{
    try_simulate, MachineConfig, NoSpawn, PreparedTrace, SimError, StaticSpawnSource,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn verified_programs_simulate_or_fail_typed_never_panic() {
    let mut accepted = 0u32;
    let mut budget_trips = 0u32;
    for seed in 0x100..0x120u64 {
        let program = random_program(seed);
        let analysis = ProgramAnalysis::analyze(&program);
        if !verify(&program, &analysis, &VerifyOptions::default()).is_clean() {
            continue; // the property quantifies over verifier-accepted programs
        }
        accepted += 1;
        let exec = execute_window(&program, WINDOW).expect("generated programs execute");
        assert!(exec.halted, "seed {seed:#x}: bounded program halts");

        // A deliberately tight budget on some seeds forces the
        // CyclesExceeded path; a generous one exercises completion.
        for max_cycles in [500, 4_000_000] {
            for multitask in [false, true] {
                let mut cfg = if multitask {
                    MachineConfig::hpca07()
                } else {
                    MachineConfig::superscalar()
                };
                cfg.max_cycles = max_cycles;
                let table = analysis.spawn_table(Policy::Postdoms);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let prepared = PreparedTrace::new(&exec.trace, &cfg);
                    if multitask {
                        let mut src = StaticSpawnSource::new(table.clone());
                        try_simulate(&prepared, &cfg, &mut src)
                    } else {
                        try_simulate(&prepared, &cfg, &mut NoSpawn)
                    }
                }));
                match outcome {
                    Err(_) => panic!(
                        "seed {seed:#x} (multitask={multitask}, budget={max_cycles}): \
                         simulation panicked"
                    ),
                    Ok(Ok(r)) => {
                        assert_eq!(
                            r.instructions as usize,
                            exec.trace.len(),
                            "seed {seed:#x}: completion means full retirement"
                        );
                    }
                    Ok(Err(SimError::CyclesExceeded { max_cycles: m, .. })) => {
                        assert_eq!(m, max_cycles);
                        budget_trips += 1;
                    }
                    Ok(Err(e)) => panic!(
                        "seed {seed:#x}: unexpected error class for a verified \
                         well-formed program: {e}"
                    ),
                }
            }
        }
    }
    assert!(accepted >= 24, "the generator should mostly satisfy verify");
    assert!(
        budget_trips > 0,
        "the tight budget should trip CyclesExceeded on real traces"
    );
}
