//! The sweep engine's central guarantee: output is byte-identical at any
//! worker count. This runs the Figure 9 grid serially and on four workers
//! and compares the rendered CSV byte for byte (a debug-build-sized
//! workload subset; the CI workflow additionally diffs the full 12-
//! workload binary output across `POLYFLOW_JOBS` values in release).

use polyflow_bench::sweep::{figure9_cells, sweep_with_jobs, CellOutcome};
use polyflow_bench::{prepare_all_jobs, speedup_csv, PreparedWorkload};
use polyflow_core::Policy;

/// The harness types must stay shareable across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedWorkload>();
    assert_send_sync::<polyflow_bench::sweep::Cell>();
    assert_send_sync::<polyflow_bench::pool::StealDeque<PreparedWorkload>>();
};

fn csv(workloads: &[PreparedWorkload], grid: &[Vec<CellOutcome>]) -> String {
    let columns: Vec<String> = Policy::figure9().iter().map(|p| p.name()).collect();
    let rows: Vec<(String, f64, Vec<f64>)> = workloads
        .iter()
        .zip(grid)
        .map(|(w, row)| {
            let base = &row[0];
            let speedups: Vec<f64> = row[1..]
                .iter()
                .map(|r| r.speedup_percent_over(base))
                .collect();
            (w.name.to_string(), base.ipc(), speedups)
        })
        .collect();
    speedup_csv(&rows, &columns)
}

#[test]
fn figure9_grid_is_byte_identical_across_worker_counts() {
    let filter: Vec<String> = ["bzip2", "gzip", "vpr.place"].map(String::from).to_vec();
    let workloads = prepare_all_jobs(&filter, 4);
    assert_eq!(workloads.len(), 3);
    let cells = figure9_cells();

    let (serial, report1) = sweep_with_jobs("determinism-j1", &workloads, &cells, 1);
    let (parallel, report4) = sweep_with_jobs("determinism-j4", &workloads, &cells, 4);

    let a = csv(&workloads, &serial);
    let b = csv(&workloads, &parallel);
    assert_eq!(a, b, "jobs=1 and jobs=4 CSV must match byte for byte");
    assert_eq!(a.lines().count(), 1 + workloads.len());

    assert_eq!(report1.jobs, 1);
    assert_eq!(report4.jobs, 4);
    assert_eq!(report1.cells.len(), workloads.len() * cells.len());
    let labels1: Vec<&String> = report1.cells.iter().map(|(l, _)| l).collect();
    let labels4: Vec<&String> = report4.cells.iter().map(|(l, _)| l).collect();
    assert_eq!(labels1, labels4, "report cell order is deterministic too");
}
