//! The sweep engine's fault-isolation guarantee: a panicking cell
//! degrades to [`CellOutcome::Failed`] instead of killing the sweep.
//! The `POLYFLOW_FAULT_CELL` hook makes exactly one named cell panic
//! deliberately; the remaining cells must complete, the rendered CSV
//! must mark the dead cell `FAILED`, and the output must stay
//! byte-identical across worker counts (the CI workflow additionally
//! checks the figure binary exits nonzero under the hook).

use polyflow_bench::sweep::{report_failures, sweep_with_jobs, Cell, CellOutcome};
use polyflow_bench::{prepare_all_jobs, speedup_csv};
use polyflow_core::Policy;

#[test]
fn injected_panic_degrades_the_sweep_deterministically() {
    // One test function only: integration tests in this binary share the
    // process environment, so the hook is set exactly once, up front,
    // before any worker thread exists.
    std::env::set_var("POLYFLOW_FAULT_CELL", "gzip/postdoms");

    let filter: Vec<String> = ["bzip2", "gzip"].map(String::from).to_vec();
    let workloads = prepare_all_jobs(&filter, 2);
    assert_eq!(workloads.len(), 2);
    let cells = [Cell::Baseline, Cell::Static(Policy::Postdoms)];

    let (serial, _) = sweep_with_jobs("degraded-j1", &workloads, &cells, 1);
    let (parallel, _) = sweep_with_jobs("degraded-j2", &workloads, &cells, 2);

    for grid in [&serial, &parallel] {
        // Row order matches the prepared-workload order (bzip2, gzip).
        let gzip_row = workloads.iter().position(|w| w.name == "gzip").unwrap();
        match &grid[gzip_row][1] {
            CellOutcome::Failed {
                workload,
                cell,
                payload,
                attempts,
            } => {
                assert_eq!(workload, "gzip");
                assert_eq!(cell, "postdoms");
                assert_eq!(*attempts, 2, "a panic gets exactly one retry");
                assert!(
                    payload.contains("deliberate fault injected"),
                    "payload carries the panic message: {payload}"
                );
            }
            other => panic!("gzip/postdoms should have failed, got {other:?}"),
        }
        // Every other cell survived the neighbour's death.
        assert!(grid[gzip_row][0].result().is_some());
        let other_row = 1 - gzip_row;
        assert!(grid[other_row][0].result().is_some());
        assert!(grid[other_row][1].result().is_some());
        assert!(report_failures(grid), "the sweep reports the dead cell");
    }

    // Rendered output is identical at any worker count, FAILED included.
    let columns = vec!["postdoms".to_string()];
    let csv_of = |grid: &[Vec<CellOutcome>]| {
        let rows: Vec<(String, f64, Vec<f64>)> = workloads
            .iter()
            .zip(grid)
            .map(|(w, row)| {
                (
                    w.name.to_string(),
                    row[0].ipc(),
                    vec![row[1].speedup_percent_over(&row[0])],
                )
            })
            .collect();
        speedup_csv(&rows, &columns)
    };
    let a = csv_of(&serial);
    let b = csv_of(&parallel);
    assert_eq!(a, b, "degraded output is deterministic across jobs");
    assert!(a
        .lines()
        .any(|l| l.starts_with("gzip") && l.ends_with("FAILED")));

    std::env::remove_var("POLYFLOW_FAULT_CELL");
}
