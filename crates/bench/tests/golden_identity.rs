//! Golden identity suite: every bundled workload, simulated under the
//! superscalar baseline and the combined-postdominator policy with
//! explicit (environment-independent) configurations, must reproduce the
//! checked-in snapshot exactly. This is the regression net for the
//! data-oriented core: any change to the simulator that moves a single
//! cycle, bucket, or spawn count on any workload shows up as a hash
//! mismatch here.
//!
//! Regenerate the snapshot after an *intentional* semantic change with:
//!
//! ```text
//! POLYFLOW_BLESS=1 cargo test -p polyflow-bench --test golden_identity
//! ```

use polyflow_bench::prepare_all;
use polyflow_bench::sweep::{run_cell_with_config, Cell};
use polyflow_core::Policy;
use polyflow_sim::{MachineConfig, SimScratch};

/// FNV-1a over the full `SimResult::to_json` rendering: the snapshot
/// stays one line per cell while still pinning every field of the
/// result, including the per-task cycle ledger.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_identity.snap")
}

#[test]
fn all_workloads_match_golden_snapshot() {
    let workloads = prepare_all(&[]);
    assert_eq!(workloads.len(), 12, "the bundled workload set changed");
    let ss = MachineConfig::superscalar();
    let pf = MachineConfig::hpca07();
    let cells = [
        (Cell::Baseline, &ss, "baseline"),
        (Cell::Static(Policy::Postdoms), &pf, "postdoms"),
    ];

    let mut scratch = SimScratch::default();
    let mut actual = String::new();
    for w in &workloads {
        for (cell, cfg, label) in &cells {
            let r = run_cell_with_config(w, *cell, cfg, &mut scratch)
                .unwrap_or_else(|e| panic!("{}/{label} failed: {e}", w.name));
            let json = r.to_json();
            actual.push_str(&format!(
                "{}/{label} fnv64:{:016x} cycles={} instructions={} spawns={} squashes={}\n",
                w.name,
                fnv64(json.as_bytes()),
                r.cycles,
                r.instructions,
                r.total_spawns(),
                r.squashes
            ));
        }
    }

    let path = snapshot_path();
    if std::env::var("POLYFLOW_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, &actual).unwrap();
        eprintln!(
            "blessed {} ({} cells)",
            path.display(),
            actual.lines().count()
        );
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             POLYFLOW_BLESS=1 cargo test -p polyflow-bench --test golden_identity",
            path.display()
        )
    });
    if actual != expected {
        let diff: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .filter(|(e, a)| e != a)
            .map(|(e, a)| format!("- {e}\n+ {a}"))
            .collect();
        panic!(
            "golden identity mismatch ({} line(s) differ):\n{}\n\
             If this change is intentional, re-bless with POLYFLOW_BLESS=1.",
            diff.len()
                .max(expected.lines().count().abs_diff(actual.lines().count())),
            diff.join("\n")
        );
    }
}
