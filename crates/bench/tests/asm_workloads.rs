//! The checked-in runtime workloads under `workloads/asm/` are part of
//! the documented workflow (EXPERIMENTS.md "Bring your own workload"),
//! so `cargo test` alone must catch them rotting: each program has to
//! keep assembling, verifying clean, round-tripping byte-identically
//! through the text format, halting within its declared window, and
//! running under both policies.

use polyflow_bench::sweep::{run_cell_with_config, Cell};
use polyflow_bench::PreparedWorkload;
use polyflow_core::{verify, Policy, ProgramAnalysis, VerifyOptions};
use polyflow_sim::{MachineConfig, SimScratch};
use polyflow_workloads::from_asm_file;
use std::path::PathBuf;

#[test]
fn checked_in_asm_workloads_assemble_verify_and_simulate() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../workloads/asm");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "asm"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "expected at least three example programs in {}",
        dir.display()
    );

    for path in paths {
        let name = path.display();
        let w = from_asm_file(&path).unwrap_or_else(|e| panic!("{name}: {e}"));

        // Lint clean: zero diagnostics from the static verifier.
        let analysis = ProgramAnalysis::analyze(&w.program);
        let report = verify(&w.program, &analysis, &VerifyOptions::default());
        assert!(
            report.is_clean(),
            "{name}: {} verifier diagnostics",
            report.diagnostics.len()
        );

        // The canonical rendering reparses to the identical program, so
        // uploading it to the service shares the file's cache identity.
        let reparsed = polyflow_isa::parse_program(&polyflow_isa::to_asm(&w.program))
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        assert_eq!(w.program, reparsed, "{name}: drifted through to_asm");

        // Halts within its `; window: N` pragma and simulates under both
        // the baseline and the combined-postdominator policy.
        let prepared = PreparedWorkload::try_prepare(w).unwrap_or_else(|e| panic!("{e}"));
        let mut scratch = SimScratch::default();
        for (cell, cfg) in [
            (Cell::Baseline, MachineConfig::superscalar()),
            (Cell::Static(Policy::Postdoms), MachineConfig::hpca07()),
        ] {
            let r = run_cell_with_config(&prepared, cell, &cfg, &mut scratch)
                .unwrap_or_else(|e| panic!("{name} under {}: {e}", cell.label()));
            assert!(r.cycles > 0, "{name} under {}: empty run", cell.label());
        }
    }
}
