//! Replays the checked-in fuzz regression corpus
//! (`corpus/fuzz_corpus.txt`): every minimized failure ever found — and
//! the generator-coverage seeds the corpus started with — must keep
//! passing the differential and fault-injection checks.

use polyflow_bench::fuzz::replay_corpus;

#[test]
fn regression_corpus_replays_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/fuzz_corpus.txt");
    let text = std::fs::read_to_string(path).expect("corpus file is checked in");
    let report = replay_corpus(&text).expect("corpus parses");
    assert!(report.seeds_run >= 10, "corpus should stay populated");
    assert!(
        report.failures.is_empty(),
        "corpus regressions:\n{}",
        report.failures.join("\n")
    );
}
