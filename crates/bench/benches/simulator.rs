//! Microbenchmarks of the dynamic path: functional execution, trace
//! preparation, and the cycle model under the superscalar and the full
//! postdominator policy (on a reduced mcf window).
//!
//! Plain `std::time::Instant` harness (`harness = false`); the workspace
//! builds hermetically, so no criterion. Run with
//! `cargo bench -p polyflow-bench --bench simulator`.

use polyflow_bench::stopwatch::bench;
use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::execute_window;
use polyflow_reconv::{train_on_trace, ReconvConfig};
use polyflow_sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};
use std::hint::black_box;

const WINDOW: u64 = 50_000;

fn main() {
    let program = polyflow_workloads::by_name("mcf").unwrap().program;
    let trace = execute_window(&program, WINDOW).unwrap().trace;
    let analysis = ProgramAnalysis::analyze(&program);
    let ss = MachineConfig::superscalar();
    let pf = MachineConfig::hpca07();

    bench("interpreter_50k", || {
        black_box(execute_window(black_box(&program), WINDOW).unwrap())
    });
    bench("prepare_trace_50k", || {
        black_box(PreparedTrace::new(black_box(&trace), &ss))
    });

    let prep_ss = PreparedTrace::new(&trace, &ss);
    bench("simulate_superscalar_50k", || {
        black_box(simulate(black_box(&prep_ss), &ss, &mut NoSpawn))
    });

    let prep_pf = PreparedTrace::new(&trace, &pf);
    bench("simulate_postdoms_50k", || {
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        black_box(simulate(black_box(&prep_pf), &pf, &mut src))
    });
    bench("reconv_train_50k", || {
        black_box(train_on_trace(black_box(&trace), ReconvConfig::default()))
    });
}
