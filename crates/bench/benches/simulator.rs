//! Criterion microbenchmarks of the dynamic path: functional execution,
//! trace preparation, and the cycle model under the superscalar and the
//! full postdominator policy (on a reduced mcf window).

use criterion::{criterion_group, criterion_main, Criterion};
use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::execute_window;
use polyflow_reconv::{train_on_trace, ReconvConfig};
use polyflow_sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};
use std::hint::black_box;

const WINDOW: u64 = 50_000;

fn bench_simulator(c: &mut Criterion) {
    let program = polyflow_workloads::by_name("mcf").unwrap().program;
    let trace = execute_window(&program, WINDOW).unwrap().trace;
    let analysis = ProgramAnalysis::analyze(&program);
    let ss = MachineConfig::superscalar();
    let pf = MachineConfig::hpca07();

    c.bench_function("interpreter_50k", |b| {
        b.iter(|| black_box(execute_window(black_box(&program), WINDOW).unwrap()))
    });
    c.bench_function("prepare_trace_50k", |b| {
        b.iter(|| black_box(PreparedTrace::new(black_box(&trace), &ss)))
    });

    let prep_ss = PreparedTrace::new(&trace, &ss);
    c.bench_function("simulate_superscalar_50k", |b| {
        b.iter(|| black_box(simulate(black_box(&prep_ss), &ss, &mut NoSpawn)))
    });

    let prep_pf = PreparedTrace::new(&trace, &pf);
    c.bench_function("simulate_postdoms_50k", |b| {
        b.iter(|| {
            let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
            black_box(simulate(black_box(&prep_pf), &pf, &mut src))
        })
    });
    c.bench_function("reconv_train_50k", |b| {
        b.iter(|| black_box(train_on_trace(black_box(&trace), ReconvConfig::default())))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
