//! Criterion microbenchmarks of the static analyses: CFG construction,
//! dominators/postdominators, control dependence, loop detection, and
//! spawn-point extraction — on `gcc`, the largest stand-in.

use criterion::{criterion_group, criterion_main, Criterion};
use polyflow_cfg::{Cfg, ControlDeps, DomTree, LoopForest};
use polyflow_core::{Policy, ProgramAnalysis};
use std::hint::black_box;

fn bench_analyses(c: &mut Criterion) {
    let program = polyflow_workloads::by_name("gcc").unwrap().program;
    let main_fn = program.functions()[0].clone();
    let cfg = Cfg::build(&program, &main_fn);
    let dom = DomTree::dominators(&cfg);
    let pdom = DomTree::postdominators(&cfg);

    c.bench_function("cfg_build_all", |b| {
        b.iter(|| black_box(Cfg::build_all(black_box(&program))))
    });
    c.bench_function("dominators", |b| {
        b.iter(|| black_box(DomTree::dominators(black_box(&cfg))))
    });
    c.bench_function("postdominators", |b| {
        b.iter(|| black_box(DomTree::postdominators(black_box(&cfg))))
    });
    c.bench_function("control_deps", |b| {
        b.iter(|| black_box(ControlDeps::compute(black_box(&cfg), black_box(&pdom))))
    });
    c.bench_function("loop_forest", |b| {
        b.iter(|| black_box(LoopForest::compute(black_box(&cfg), black_box(&dom))))
    });
    c.bench_function("program_analysis_full", |b| {
        b.iter(|| black_box(ProgramAnalysis::analyze(black_box(&program))))
    });

    let analysis = ProgramAnalysis::analyze(&program);
    c.bench_function("spawn_table_postdoms", |b| {
        b.iter(|| black_box(analysis.spawn_table(black_box(Policy::Postdoms))))
    });
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
