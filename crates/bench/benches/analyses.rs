//! Microbenchmarks of the static analyses: CFG construction,
//! dominators/postdominators, control dependence, loop detection,
//! dataflow (liveness/reaching defs), and spawn-point extraction — on
//! `gcc`, the largest stand-in.
//!
//! Plain `std::time::Instant` harness (`harness = false`); the workspace
//! builds hermetically, so no criterion. Run with
//! `cargo bench -p polyflow-bench --bench analyses`.

use polyflow_bench::stopwatch::bench;
use polyflow_cfg::{Cfg, ControlDeps, DomTree, LoopForest};
use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_dataflow::{LiveSets, ReachingDefs};
use std::hint::black_box;

fn main() {
    let program = polyflow_workloads::by_name("gcc").unwrap().program;
    let main_fn = program.functions()[0].clone();
    let cfg = Cfg::build(&program, &main_fn);
    let dom = DomTree::dominators(&cfg);
    let pdom = DomTree::postdominators(&cfg);

    bench("cfg_build_all", || {
        black_box(Cfg::build_all(black_box(&program)))
    });
    bench("dominators", || {
        black_box(DomTree::dominators(black_box(&cfg)))
    });
    bench("postdominators", || {
        black_box(DomTree::postdominators(black_box(&cfg)))
    });
    bench("control_deps", || {
        black_box(ControlDeps::compute(black_box(&cfg), black_box(&pdom)))
    });
    bench("loop_forest", || {
        black_box(LoopForest::compute(black_box(&cfg), black_box(&dom)))
    });
    bench("liveness", || {
        black_box(LiveSets::compute(black_box(&program), black_box(&cfg)))
    });
    bench("reaching_defs", || {
        black_box(ReachingDefs::compute(black_box(&program), black_box(&cfg)))
    });
    bench("program_analysis_full", || {
        black_box(ProgramAnalysis::analyze(black_box(&program)))
    });

    let analysis = ProgramAnalysis::analyze(&program);
    bench("spawn_table_postdoms", || {
        black_box(analysis.spawn_table(black_box(Policy::Postdoms)))
    });
}
