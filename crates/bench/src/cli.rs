//! Shared command-line parsing for the figure binaries.
//!
//! Every grid-style binary (`fig05`…`fig12`, `ablations`,
//! `headline_claims`, `reconv_accuracy`, `lint`) accepts the same shape
//! of command line — optional flags plus positional workload names — and
//! historically each one re-derived it from `std::env::args` with subtly
//! different rules: an unrecognized `--flag` silently became a workload
//! filter entry that matched nothing, so `--hlep` ran the full 12-workload
//! grid instead of erroring. This module centralizes the grammar:
//!
//! * known flags are declared per binary ([`Spec::flags`]);
//! * unknown flags are **rejected** with a usage message and exit 2;
//! * positional arguments are validated against
//!   [`polyflow_workloads::names`] (unknown workloads exit 2 too);
//! * every binary answers `--help`/`-h` with a consistent usage page.
//!
//! The actual *consumption* of `--jobs` and `--max-cycles` stays where it
//! always was ([`crate::resolve_max_cycles`], [`pool::resolve_jobs`]);
//! this module only validates and routes. `--` separates flags from
//! positionals (everything after it is a workload name).
//!
//! [`pool::resolve_jobs`]: crate::pool::resolve_jobs

use std::process::exit;

/// One flag a binary accepts.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// The flag itself, including dashes (`"--jobs"`).
    pub name: &'static str,
    /// Placeholder for the flag's value (`Some("N")`), or `None` for a
    /// boolean flag.
    pub value: Option<&'static str>,
    /// One-line description for the usage page.
    pub help: &'static str,
}

/// `--jobs N`: worker threads for the sweep pool.
pub const JOBS: Flag = Flag {
    name: "--jobs",
    value: Some("N"),
    help: "worker threads (default: available CPUs; also POLYFLOW_JOBS)",
};

/// `--max-cycles N`: the per-run cycle budget watchdog.
pub const MAX_CYCLES: Flag = Flag {
    name: "--max-cycles",
    value: Some("N"),
    help: "per-run cycle budget (default: unlimited; also POLYFLOW_MAX_CYCLES)",
};

/// `--csv`: machine-readable output instead of the aligned table.
pub const CSV: Flag = Flag {
    name: "--csv",
    value: None,
    help: "emit CSV instead of the aligned table",
};

/// `--asm PATH`: load a runtime `.asm` workload (repeatable).
pub const ASM: Flag = Flag {
    name: "--asm",
    value: Some("PATH"),
    help: "run PATH as a workload (repeatable; with no bundled names \
           listed, only --asm workloads run)",
};

/// A binary's command-line grammar.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Binary name (for the usage line).
    pub name: &'static str,
    /// One-line description of what the binary does.
    pub about: &'static str,
    /// The flags this binary accepts (beyond `--help`).
    pub flags: &'static [Flag],
    /// Whether positional workload names are accepted.
    pub takes_workloads: bool,
}

/// Parsed arguments: the validated workload filter plus boolean flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional workload names (empty = all workloads).
    pub filter: Vec<String>,
    /// True if `--csv` was passed (and accepted by the spec).
    pub csv: bool,
    /// `--asm PATH` runtime-workload files, in command-line order.
    pub asm: Vec<String>,
}

/// Renders the usage page for `spec`.
pub fn usage(spec: &Spec) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n\n", spec.name, spec.about));
    out.push_str(&format!(
        "Usage: {} [flags]{}\n\nFlags:\n",
        spec.name,
        if spec.takes_workloads {
            " [workload ...]"
        } else {
            ""
        }
    ));
    let mut rows: Vec<(String, &str)> = spec
        .flags
        .iter()
        .map(|f| {
            let lhs = match f.value {
                Some(v) => format!("{} {v}", f.name),
                None => f.name.to_string(),
            };
            (lhs, f.help)
        })
        .collect();
    rows.push(("--help".to_string(), "print this help and exit"));
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (lhs, help) in rows {
        out.push_str(&format!("  {lhs:<width$}  {help}\n"));
    }
    if spec.takes_workloads {
        out.push_str(&format!(
            "\nWorkloads (default: all):\n  {}\n",
            polyflow_workloads::names().join(" ")
        ));
    }
    out
}

/// Parses the process's command line against `spec`.
///
/// `--help`/`-h` prints the usage page and exits 0. An unknown flag, a
/// missing flag value, a malformed numeric value, or an unknown workload
/// name prints the problem plus the usage page to stderr and exits 2 —
/// nothing runs on a command line the binary does not fully understand.
pub fn parse(spec: &Spec) -> Args {
    parse_from(spec, std::env::args().skip(1))
}

/// [`parse`] over an explicit argument iterator (testable; exits are
/// routed through [`try_parse`]).
pub fn parse_from(spec: &Spec, args: impl Iterator<Item = String>) -> Args {
    match try_parse(spec, args) {
        Ok(Parsed::Args(a)) => a,
        Ok(Parsed::HelpRequested) => {
            print!("{}", usage(spec));
            exit(0);
        }
        Err(e) => {
            eprintln!("{}: {e}\n\n{}", spec.name, usage(spec));
            exit(2);
        }
    }
}

/// Outcome of a successful [`try_parse`].
#[derive(Debug)]
pub enum Parsed {
    /// The parsed arguments.
    Args(Args),
    /// `--help` was requested; the caller should print usage and exit 0.
    HelpRequested,
}

/// The fallible core of [`parse`]: returns the parsed arguments, a help
/// request, or a description of what was wrong with the command line.
pub fn try_parse(spec: &Spec, args: impl Iterator<Item = String>) -> Result<Parsed, String> {
    let mut out = Args::default();
    let mut args = args.peekable();
    let mut positional_only = false;
    while let Some(a) = args.next() {
        if positional_only {
            push_workload(spec, &mut out, &a)?;
            continue;
        }
        if a == "--" {
            positional_only = true;
            continue;
        }
        if a == "--help" || a == "-h" {
            return Ok(Parsed::HelpRequested);
        }
        if a.starts_with('-') {
            let (name, inline_value) = match a.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (a.clone(), None),
            };
            let Some(flag) = spec.flags.iter().find(|f| f.name == name) else {
                return Err(format!("unknown flag `{name}`"));
            };
            match (flag.value, inline_value) {
                (None, None) => {
                    if flag.name == "--csv" {
                        out.csv = true;
                    }
                }
                (None, Some(_)) => {
                    return Err(format!("flag `{name}` takes no value"));
                }
                (Some(placeholder), inline) => {
                    let v = match inline {
                        Some(v) => v,
                        None => args
                            .next()
                            .ok_or_else(|| format!("flag `{name}` requires a {placeholder}"))?,
                    };
                    if flag.name == "--asm" {
                        // Path-valued: carried for `prepare_selection`.
                        out.asm.push(v);
                    } else if v.parse::<u64>().is_err() {
                        return Err(format!("flag `{name}` requires a number, got `{v}`"));
                    }
                }
            }
        } else {
            push_workload(spec, &mut out, &a)?;
        }
    }
    Ok(Parsed::Args(out))
}

fn push_workload(spec: &Spec, out: &mut Args, name: &str) -> Result<(), String> {
    if !spec.takes_workloads {
        return Err(format!("unexpected argument `{name}`"));
    }
    if !polyflow_workloads::names().contains(&name) {
        return Err(format!(
            "unknown workload `{name}` (one of: {})",
            polyflow_workloads::names().join(", ")
        ));
    }
    out.filter.push(name.to_string());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: Spec = Spec {
        name: "figtest",
        about: "unit-test spec",
        flags: &[JOBS, MAX_CYCLES, CSV],
        takes_workloads: true,
    };

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn accepts_known_flags_and_workloads() {
        let Parsed::Args(a) = try_parse(
            &SPEC,
            args(&["--jobs", "2", "--max-cycles=500", "--csv", "twolf", "gzip"]),
        )
        .unwrap() else {
            panic!("not a help request")
        };
        assert_eq!(a.filter, vec!["twolf", "gzip"]);
        assert!(a.csv);
    }

    #[test]
    fn rejects_unknown_flags() {
        let e = try_parse(&SPEC, args(&["--hlep"])).unwrap_err();
        assert!(e.contains("unknown flag `--hlep`"), "{e}");
        let e = try_parse(&SPEC, args(&["--jobs=2", "--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate"), "{e}");
    }

    #[test]
    fn rejects_unknown_workloads_and_bad_values() {
        let e = try_parse(&SPEC, args(&["eon"])).unwrap_err();
        assert!(e.contains("unknown workload `eon`"), "{e}");
        let e = try_parse(&SPEC, args(&["--jobs"])).unwrap_err();
        assert!(e.contains("requires a N"), "{e}");
        let e = try_parse(&SPEC, args(&["--jobs", "many"])).unwrap_err();
        assert!(e.contains("requires a number"), "{e}");
        let e = try_parse(&SPEC, args(&["--csv=1"])).unwrap_err();
        assert!(e.contains("takes no value"), "{e}");
    }

    #[test]
    fn asm_flag_carries_paths_in_order() {
        let spec = Spec {
            flags: &[JOBS, ASM],
            ..SPEC
        };
        let Parsed::Args(a) =
            try_parse(&spec, args(&["--asm", "a.asm", "twolf", "--asm=dir/b.asm"])).unwrap()
        else {
            panic!("not a help request")
        };
        assert_eq!(a.asm, vec!["a.asm", "dir/b.asm"]);
        assert_eq!(a.filter, vec!["twolf"]);
        // Paths are not subject to the numeric-value check.
        assert!(try_parse(&spec, args(&["--asm", "not-a-number.asm"])).is_ok());
    }

    #[test]
    fn help_is_signalled_not_fatal() {
        assert!(matches!(
            try_parse(&SPEC, args(&["--help"])).unwrap(),
            Parsed::HelpRequested
        ));
        assert!(matches!(
            try_parse(&SPEC, args(&["-h", "twolf"])).unwrap(),
            Parsed::HelpRequested
        ));
    }

    #[test]
    fn double_dash_separates_positionals() {
        let Parsed::Args(a) = try_parse(&SPEC, args(&["--", "mcf"])).unwrap() else {
            panic!("not a help request")
        };
        assert_eq!(a.filter, vec!["mcf"]);
    }

    #[test]
    fn workloadless_spec_rejects_positionals() {
        let spec = Spec {
            takes_workloads: false,
            ..SPEC
        };
        let e = try_parse(&spec, args(&["twolf"])).unwrap_err();
        assert!(e.contains("unexpected argument"), "{e}");
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage(&SPEC);
        for f in SPEC.flags {
            assert!(u.contains(f.name), "usage must document {}", f.name);
        }
        assert!(u.contains("--help"));
        assert!(u.contains("twolf"), "workload list is part of the page");
    }
}
