//! A tiny wall-clock micro-benchmark harness.
//!
//! The workspace builds hermetically (no criterion), so the `[[bench]]`
//! targets are plain `fn main()` programs built on this module: warm up,
//! pick an iteration count targeting a fixed measurement budget, then
//! report min/median/mean over repeated batches. Numbers are indicative,
//! not statistically rigorous — good enough to catch order-of-magnitude
//! regressions in the analyses and the cycle model.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);
/// Batches the budget is split into (median is taken across these).
const BATCHES: usize = 10;

/// Times `f` and prints one aligned result line.
///
/// The closure's return value is returned from the last invocation so
/// callers can keep it alive (preventing the optimizer from deleting the
/// work; combine with `std::hint::black_box` at the call site).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> T {
    // Warm-up and calibration: how many iterations fit one batch?
    let start = Instant::now();
    let mut calib_iters: u32 = 0;
    while start.elapsed() < MEASURE_BUDGET / (BATCHES as u32 * 5) || calib_iters == 0 {
        std::hint::black_box(f());
        calib_iters += 1;
        if calib_iters >= 1 << 20 {
            break;
        }
    }
    let per_iter = start.elapsed() / calib_iters;
    let batch_iters = ((MEASURE_BUDGET.as_nanos() / BATCHES as u128)
        .saturating_div(per_iter.as_nanos().max(1)))
    .clamp(1, 1 << 24) as u32;

    let mut samples: Vec<Duration> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..batch_iters {
            std::hint::black_box(f());
        }
        samples.push(t.elapsed() / batch_iters);
    }
    samples.sort();
    let min = samples[0];
    let median = samples[BATCHES / 2];
    let mean = samples.iter().sum::<Duration>() / BATCHES as u32;
    println!(
        "{name:<28} min {:>12} median {:>12} mean {:>12} ({batch_iters} iters x {BATCHES})",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
    f()
}

/// The `p`-th percentile (0–100) of a latency sample by the
/// nearest-rank method. The slice is sorted in place; an empty sample
/// yields zero. Used by the `loadgen` report (p50/p90/p99).
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Formats a duration at the scale-appropriate unit (ns/us/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_closure_value() {
        let mut n = 0u64;
        let out = bench("smoke", || {
            n += 1;
            n
        });
        assert!(out > 0);
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut s: Vec<Duration> = (1..=100).rev().map(Duration::from_micros).collect();
        assert_eq!(percentile(&mut s, 50.0), Duration::from_micros(50));
        assert_eq!(percentile(&mut s, 99.0), Duration::from_micros(99));
        assert_eq!(percentile(&mut s, 100.0), Duration::from_micros(100));
        assert_eq!(percentile(&mut s, 0.0), Duration::from_micros(1));
        assert_eq!(percentile(&mut [], 50.0), Duration::ZERO);
        let mut one = [Duration::from_millis(7)];
        assert_eq!(percentile(&mut one, 99.0), Duration::from_millis(7));
    }

    #[test]
    fn durations_format_by_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
