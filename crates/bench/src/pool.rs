//! Re-export of the work-stealing pool.
//!
//! The pool started life here, owned by the sweep harness. When the
//! SCC-parallel dataflow solver (`polyflow_dataflow::parallel`) needed to
//! schedule over the same deques, the implementation moved to the
//! bottom-layer [`polyflow_pool`] crate (bench depends on core depends on
//! dataflow, so dataflow cannot reach back up to bench). This module
//! keeps every historical `polyflow_bench::pool::*` path working.

pub use polyflow_pool::{parallel_map, resolve_jobs, StealDeque};
