//! Regenerates Figure 11: the loss in percent speedup (normalized to the
//! superscalar) when one spawn category is excluded from the full
//! postdominator set. Positive loss = the excluded category mattered.
//!
//! Usage: `fig11_exclusions [--jobs N] [--max-cycles N] [workload ...]`
//! (default: all 12).

use polyflow_bench::sweep::{sweep, Cell};
use polyflow_bench::{cli, prepare_selection};
use polyflow_core::Policy;

const SPEC: cli::Spec = cli::Spec {
    name: "fig11_exclusions",
    about: "Regenerates Figure 11: the loss in percent speedup when one \
            spawn category is excluded from the full postdominator set",
    flags: &[cli::JOBS, cli::MAX_CYCLES, cli::ASM],
    takes_workloads: true,
};

fn main() {
    let workloads = prepare_selection(&cli::parse(&SPEC));
    let policies = Policy::figure11();

    let cells: Vec<Cell> = [Cell::Baseline, Cell::Static(Policy::Postdoms)]
        .into_iter()
        .chain(policies.iter().map(|&p| Cell::Static(p)))
        .collect();
    let (grid, report) = sweep("fig11_exclusions", &workloads, &cells);

    println!("== Figure 11: loss in speedup vs full postdominator set (percentage points) ==");
    print!("{:<12}", "benchmark");
    for p in policies {
        print!(" {:>22}", p.name());
    }
    println!();
    let mut sums = [0.0f64; 4];
    let mut counts = [0usize; 4];
    for (w, row) in workloads.iter().zip(&grid) {
        let base = &row[0];
        let full = row[1].speedup_percent_over(base);
        print!("{:<12}", w.name);
        for (i, r) in row[2..].iter().enumerate() {
            let without = r.speedup_percent_over(base);
            // Loss normalized to superscalar IPC, as in the paper: the
            // drop in speedup percentage points. NaN = a failed cell.
            let loss = full - without;
            if loss.is_nan() {
                print!(" {:>22}", "FAILED");
            } else {
                sums[i] += loss;
                counts[i] += 1;
                print!(" {loss:>21.1}%");
            }
        }
        println!();
    }
    print!("{:<12}", "Average");
    for (s, n) in sums.iter().zip(counts) {
        if n == 0 {
            print!(" {:>22}", "FAILED");
        } else {
            print!(" {:>21.1}%", s / n as f64);
        }
    }
    println!();
    println!();
    println!(
        "(Paper: vpr.route loses 29% without loopFT; vortex 56% without procFT;\n\
         perlbmk 21% and mcf 16% without hammocks; crafty/mcf/perlbmk drop without\n\
         \"other\". Small negative losses are possible: restricting the spawn set\n\
         occasionally helps a benchmark that is receptive to one kind, §4.3.)"
    );
    report.emit();
    if polyflow_bench::sweep::report_failures(&grid) {
        std::process::exit(1);
    }
}
