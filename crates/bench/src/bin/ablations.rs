//! Ablation studies of the design choices DESIGN.md calls out: the spawn
//! distance cap, the divert release delay, the spawn overhead, the
//! profitability feedback, the two-task fetch port, and the task count.
//!
//! Each ablation runs the `postdoms` policy on a representative subset
//! and reports the average speedup over the (unchanged) superscalar. The
//! whole variant grid executes on the sweep engine's worker pool; every
//! variant shares one prepared trace per workload (the ablations only
//! vary task geometry, never the branch predictors).
//!
//! Usage: `ablations [--jobs N] [workload ...]` (default: a 4-benchmark
//! subset).

use polyflow_bench::sweep::{report_failures, run_grid_with};
use polyflow_bench::{pool, PreparedWorkload};
use polyflow_core::Policy;
use polyflow_sim::{
    try_simulate_with, DependenceMode, HintCacheSource, MachineConfig, SimError, SimScratch,
    StaticSpawnSource,
};

/// One ablation row: a machine-config variant, or the hint-cache capacity
/// model layered on the unmodified Figure 8 config.
enum Variant {
    Config(Box<MachineConfig>),
    HintCache(usize),
}

fn run_variant(
    w: &PreparedWorkload,
    v: &Variant,
    scratch: &mut SimScratch,
) -> Result<polyflow_sim::SimResult, SimError> {
    let inner = StaticSpawnSource::new(w.analysis.spawn_table(Policy::Postdoms));
    match v {
        Variant::Config(cfg) => {
            let mut src = inner;
            try_simulate_with(&w.prepared(cfg), cfg, &mut src, scratch)
        }
        Variant::HintCache(entries) => {
            let cfg = MachineConfig::hpca07();
            let mut src = HintCacheSource::new(inner, *entries, 4);
            try_simulate_with(&w.prepared(&cfg), &cfg, &mut src, scratch)
        }
    }
}

const SPEC: polyflow_bench::cli::Spec = polyflow_bench::cli::Spec {
    name: "ablations",
    about: "Ablation studies of the design choices DESIGN.md calls out, \
            as average postdoms speedup over the unchanged superscalar",
    flags: &[
        polyflow_bench::cli::JOBS,
        polyflow_bench::cli::MAX_CYCLES,
        polyflow_bench::cli::ASM,
    ],
    takes_workloads: true,
};

fn main() {
    let mut args = polyflow_bench::cli::parse(&SPEC);
    if args.filter.is_empty() && args.asm.is_empty() {
        args.filter = ["mcf", "vortex", "twolf", "crafty"]
            .map(String::from)
            .to_vec();
    }
    let workloads = polyflow_bench::prepare_selection(&args);
    let base_cfg = MachineConfig::hpca07();

    // Build the full variant list up front (labels carry the exact column
    // formatting of the report), then run the whole (workload × variant)
    // grid in one parallel sweep.
    let mut rows: Vec<(String, Variant)> = Vec::new();
    let cfg_row = |label: String, cfg: MachineConfig| (label, Variant::Config(Box::new(cfg)));
    rows.push(cfg_row(
        "baseline config:                      ".to_string(),
        base_cfg.clone(),
    ));
    for dist in [64, 128, 320, 1024, 4096] {
        rows.push(cfg_row(
            format!("max_spawn_distance = {dist:<5}           "),
            MachineConfig {
                max_spawn_distance: dist,
                ..base_cfg.clone()
            },
        ));
    }
    for delay in [0, 3, 6, 12, 24] {
        rows.push(cfg_row(
            format!("divert_release_delay = {delay:<3}           "),
            MachineConfig {
                divert_release_delay: delay,
                ..base_cfg.clone()
            },
        ));
    }
    for overhead in [0, 3, 8, 16] {
        rows.push(cfg_row(
            format!("spawn_overhead_cycles = {overhead:<3}          "),
            MachineConfig {
                spawn_overhead_cycles: overhead,
                ..base_cfg.clone()
            },
        ));
    }
    for feedback in [true, false] {
        rows.push(cfg_row(
            format!("profitability_feedback = {feedback:<5}      "),
            MachineConfig {
                profitability_feedback: feedback,
                ..base_cfg.clone()
            },
        ));
    }
    for ports in [1, 2, 4] {
        rows.push(cfg_row(
            format!("fetch_tasks_per_cycle = {ports}            "),
            MachineConfig {
                fetch_tasks_per_cycle: ports,
                ..base_cfg.clone()
            },
        ));
    }
    // Hint-cache capacity (the paper idealizes this; §3.2): how many
    // 8-byte hint entries does control-equivalent spawning need?
    for entries in [16usize, 64, 256, 1024] {
        rows.push((
            format!("hint_cache_entries = {entries:<5}          "),
            Variant::HintCache(entries),
        ));
    }
    for mode in [DependenceMode::OracleSync, DependenceMode::StoreSet] {
        rows.push(cfg_row(
            format!("memory_dependence = {mode:<10?}       "),
            MachineConfig {
                memory_dependence: mode,
                ..base_cfg.clone()
            },
        ));
    }
    for any in [false, true] {
        rows.push(cfg_row(
            format!("spawn_from_any_task = {any:<5}         "),
            MachineConfig {
                spawn_from_any_task: any,
                ..base_cfg.clone()
            },
        ));
    }
    for (rob, reclaim) in [(512, false), (128, false), (128, true)] {
        rows.push(cfg_row(
            format!("rob = {rob:<4} reclamation = {reclaim:<5}     "),
            MachineConfig {
                rob_entries: rob,
                rob_reclamation: reclaim,
                ..base_cfg.clone()
            },
        ));
    }
    for tasks in [2, 4, 8, 16] {
        rows.push(cfg_row(
            format!("max_tasks = {tasks:<2}                       "),
            MachineConfig {
                max_tasks: tasks,
                ..base_cfg.clone()
            },
        ));
    }

    // Cell 0 is the shared superscalar baseline; cell i+1 is rows[i].
    let cells: Vec<usize> = (0..=rows.len()).collect();
    let (grid, report) = run_grid_with(
        "ablations",
        &workloads,
        &cells,
        pool::resolve_jobs(),
        |w, &ci, scratch| {
            if ci == 0 {
                w.try_run_baseline_with(scratch)
            } else {
                run_variant(w, &rows[ci - 1].1, scratch)
            }
        },
        |&ci| {
            if ci == 0 {
                "baseline".to_string()
            } else {
                rows[ci - 1].0.trim().trim_end_matches(':').to_string()
            }
        },
    );

    println!("== Ablations (postdoms policy, avg speedup % over superscalar) ==");
    for (ci, (label, _)) in rows.iter().enumerate() {
        let mut total = 0.0;
        for row in &grid {
            total += row[ci + 1].speedup_percent_over(&row[0]);
        }
        let avg = total / workloads.len() as f64;
        if avg.is_nan() {
            println!("{label}FAILED");
        } else {
            println!("{label}{avg:6.1}%");
        }
    }
    report.emit();
    if report_failures(&grid) {
        std::process::exit(1);
    }
}
