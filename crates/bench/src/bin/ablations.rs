//! Ablation studies of the design choices DESIGN.md calls out: the spawn
//! distance cap, the divert release delay, the spawn overhead, the
//! profitability feedback, the two-task fetch port, and the task count.
//!
//! Each ablation runs the `postdoms` policy on a representative subset
//! and reports the average speedup over the (unchanged) superscalar.
//!
//! Usage: `ablations [workload ...]` (default: a 4-benchmark subset).

use polyflow_bench::PreparedWorkload;
use polyflow_core::Policy;
use polyflow_sim::{
    simulate, DependenceMode, HintCacheSource, MachineConfig, NoSpawn, PreparedTrace,
    StaticSpawnSource,
};

fn avg_speedup(workloads: &[PreparedWorkload], pf: &MachineConfig) -> f64 {
    let ss = MachineConfig::superscalar();
    let mut total = 0.0;
    for w in workloads {
        let prep = PreparedTrace::new(&w.trace, &ss);
        let base = simulate(&prep, &ss, &mut NoSpawn);
        let prep = PreparedTrace::new(&w.trace, pf);
        let mut src = StaticSpawnSource::new(w.analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, pf, &mut src);
        total += r.speedup_percent_over(&base);
    }
    total / workloads.len() as f64
}

fn main() {
    let mut filter = polyflow_bench::cli_filter();
    if filter.is_empty() {
        filter = ["mcf", "vortex", "twolf", "crafty"]
            .map(String::from)
            .to_vec();
    }
    let workloads = polyflow_bench::prepare_all(&filter);
    let base_cfg = MachineConfig::hpca07();

    println!("== Ablations (postdoms policy, avg speedup % over superscalar) ==");
    println!(
        "baseline config:                      {:6.1}%",
        avg_speedup(&workloads, &base_cfg)
    );

    for dist in [64, 128, 320, 1024, 4096] {
        let cfg = MachineConfig {
            max_spawn_distance: dist,
            ..base_cfg.clone()
        };
        println!(
            "max_spawn_distance = {dist:<5}           {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for delay in [0, 3, 6, 12, 24] {
        let cfg = MachineConfig {
            divert_release_delay: delay,
            ..base_cfg.clone()
        };
        println!(
            "divert_release_delay = {delay:<3}           {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for overhead in [0, 3, 8, 16] {
        let cfg = MachineConfig {
            spawn_overhead_cycles: overhead,
            ..base_cfg.clone()
        };
        println!(
            "spawn_overhead_cycles = {overhead:<3}          {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for feedback in [true, false] {
        let cfg = MachineConfig {
            profitability_feedback: feedback,
            ..base_cfg.clone()
        };
        println!(
            "profitability_feedback = {feedback:<5}      {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for ports in [1, 2, 4] {
        let cfg = MachineConfig {
            fetch_tasks_per_cycle: ports,
            ..base_cfg.clone()
        };
        println!(
            "fetch_tasks_per_cycle = {ports}            {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    // Hint-cache capacity (the paper idealizes this; §3.2): how many
    // 8-byte hint entries does control-equivalent spawning need?
    for entries in [16usize, 64, 256, 1024] {
        let ss = MachineConfig::superscalar();
        let mut total = 0.0;
        for w in &workloads {
            let prep = PreparedTrace::new(&w.trace, &ss);
            let base = simulate(&prep, &ss, &mut NoSpawn);
            let prep = PreparedTrace::new(&w.trace, &base_cfg);
            let inner = StaticSpawnSource::new(w.analysis.spawn_table(Policy::Postdoms));
            let mut src = HintCacheSource::new(inner, entries, 4);
            let r = simulate(&prep, &base_cfg, &mut src);
            total += r.speedup_percent_over(&base);
        }
        println!(
            "hint_cache_entries = {entries:<5}          {:6.1}%",
            total / workloads.len() as f64
        );
    }
    for mode in [DependenceMode::OracleSync, DependenceMode::StoreSet] {
        let cfg = MachineConfig {
            memory_dependence: mode,
            ..base_cfg.clone()
        };
        println!(
            "memory_dependence = {mode:<10?}       {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for any in [false, true] {
        let cfg = MachineConfig {
            spawn_from_any_task: any,
            ..base_cfg.clone()
        };
        println!(
            "spawn_from_any_task = {any:<5}         {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for (rob, reclaim) in [(512, false), (128, false), (128, true)] {
        let cfg = MachineConfig {
            rob_entries: rob,
            rob_reclamation: reclaim,
            ..base_cfg.clone()
        };
        println!(
            "rob = {rob:<4} reclamation = {reclaim:<5}     {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
    for tasks in [2, 4, 8, 16] {
        let cfg = MachineConfig {
            max_tasks: tasks,
            ..base_cfg.clone()
        };
        println!(
            "max_tasks = {tasks:<2}                       {:6.1}%",
            avg_speedup(&workloads, &cfg)
        );
    }
}
