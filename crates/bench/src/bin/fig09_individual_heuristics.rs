//! Regenerates Figure 9: speedup of each individual heuristic spawn
//! policy (loop, loopFT, procFT, hammock, other, postdoms) over the
//! equivalent-resource superscalar, with superscalar IPCs per benchmark.
//!
//! Usage: `fig09_individual_heuristics [--jobs N] [--max-cycles N] [--csv]
//! [workload ...]`
//! (default: all 12 workloads, one worker per available CPU).

use polyflow_bench::sweep::{figure9_cells, sweep};
use polyflow_bench::{cli, prepare_selection, print_speedup_csv, print_speedup_table};
use polyflow_core::Policy;

const SPEC: cli::Spec = cli::Spec {
    name: "fig09_individual_heuristics",
    about: "Regenerates Figure 9: speedup of each individual heuristic \
            spawn policy over the equivalent-resource superscalar",
    flags: &[cli::JOBS, cli::MAX_CYCLES, cli::ASM, cli::CSV],
    takes_workloads: true,
};

fn main() {
    let args = cli::parse(&SPEC);
    let workloads = prepare_selection(&args);
    let columns: Vec<String> = Policy::figure9().iter().map(|p| p.name()).collect();

    let cells = figure9_cells();
    let (grid, report) = sweep("fig09_individual_heuristics", &workloads, &cells);
    let rows: Vec<(String, f64, Vec<f64>)> = workloads
        .iter()
        .zip(&grid)
        .map(|(w, row)| {
            let base = &row[0];
            let speedups: Vec<f64> = row[1..]
                .iter()
                .map(|r| r.speedup_percent_over(base))
                .collect();
            (w.name.to_string(), base.ipc(), speedups)
        })
        .collect();
    if args.csv {
        print_speedup_csv(&rows, &columns);
    } else {
        print_speedup_table(
            "Figure 9: individual heuristic policies (speedup % over superscalar)",
            &rows,
            &columns,
        );
    }
    report.emit();
    if polyflow_bench::sweep::report_failures(&grid) {
        std::process::exit(1);
    }
}
