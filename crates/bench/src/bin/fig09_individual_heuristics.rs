//! Regenerates Figure 9: speedup of each individual heuristic spawn
//! policy (loop, loopFT, procFT, hammock, other, postdoms) over the
//! equivalent-resource superscalar, with superscalar IPCs per benchmark.
//!
//! Usage: `fig09_individual_heuristics [workload ...]` (default: all 12).

use polyflow_bench::{
    cli_filter, csv_requested, prepare_all, print_speedup_csv, print_speedup_table,
};
use polyflow_core::Policy;

fn main() {
    let workloads = prepare_all(&cli_filter());
    let policies = Policy::figure9();
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    let mut rows = Vec::new();
    for w in &workloads {
        let base = w.run_baseline();
        let speedups: Vec<f64> = policies
            .iter()
            .map(|&p| w.run_static(p).speedup_percent_over(&base))
            .collect();
        rows.push((w.name.to_string(), base.ipc(), speedups));
        eprintln!("  [{}] done", w.name);
    }
    if csv_requested() {
        print_speedup_csv(&rows, &columns);
        return;
    }
    print_speedup_table(
        "Figure 9: individual heuristic policies (speedup % over superscalar)",
        &rows,
        &columns,
    );
}
