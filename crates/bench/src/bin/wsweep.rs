//! Workload-space sweep: runs hundreds of *generated* programs through
//! both policies and reports, per distribution bucket, how much
//! speculative parallelization helps and how well the dynamic
//! reconvergence predictor tracks the compiler's immediate
//! postdominators. Where the figure binaries answer "what happens on
//! these 12 benchmarks", `wsweep` answers "what happens across a
//! *distribution* of program shapes" — branch-dense, loop-nested,
//! call-heavy, irreducible, memory-bound, and mixed
//! ([`GenDist::BUCKETS`]).
//!
//! Usage: `wsweep [--programs N] [--seed S] [--jobs N] [--csv]`
//!
//! * `--programs N` — programs per bucket (default 50).
//! * `--seed S`     — base seed, decimal or 0x-hex (default 1).
//! * `--jobs N`     — worker threads (default: all cores).
//! * `--csv`        — per-program rows instead of the bucket table.
//!
//! Output is **byte-deterministic**: it depends only on `--programs`,
//! `--seed`, and `--csv` — never on `--jobs`, wall-clock, or host. CI
//! diffs `--jobs 1` against `--jobs 2` to hold that line.
//!
//! [`GenDist::BUCKETS`]: polyflow_bench::fuzz::GenDist::BUCKETS

use polyflow_bench::fuzz::{parse_seed, random_program_with, GenDist, FUZZ_MAX_CYCLES, WINDOW};
use polyflow_bench::sweep::{run_cell_with_config, Cell};
use polyflow_bench::{pool, PreparedWorkload};
use polyflow_core::{Policy, SpawnKind};
use polyflow_reconv::{train_on_trace, ReconvConfig};
use polyflow_sim::{MachineConfig, SimScratch};
use polyflow_workloads::Workload;
use std::collections::HashMap;

/// Everything one generated program contributes to its bucket.
struct ProgramRow {
    bucket: &'static str,
    seed: u64,
    /// `None` if the program failed to prepare or either cell failed —
    /// recorded (deterministically) rather than aborting the sweep.
    outcome: Option<Outcome>,
    error: String,
}

struct Outcome {
    speedup: f64,
    /// Spawn points whose reconvergence the predictor got exactly right,
    /// got wrong, or never predicted.
    exact: usize,
    wrong: usize,
    none: usize,
    dyn_exact: u64,
    dyn_total: u64,
}

impl Outcome {
    fn static_pct(&self) -> f64 {
        let total = (self.exact + self.wrong + self.none).max(1);
        100.0 * self.exact as f64 / total as f64
    }

    fn dyn_pct(&self) -> f64 {
        100.0 * self.dyn_exact as f64 / self.dyn_total.max(1) as f64
    }
}

fn run_one(bucket: &'static str, seed: u64, dist: &GenDist) -> ProgramRow {
    let fail = |error: String| ProgramRow {
        bucket,
        seed,
        outcome: None,
        error,
    };
    let program = random_program_with(seed, dist);
    let w = match PreparedWorkload::try_prepare(Workload {
        name: format!("{bucket}-{seed:#x}"),
        program,
        window: WINDOW,
    }) {
        Ok(w) => w,
        Err(e) => return fail(e),
    };

    let mut base_cfg = MachineConfig::superscalar();
    base_cfg.max_cycles = FUZZ_MAX_CYCLES;
    let mut poly_cfg = MachineConfig::hpca07();
    poly_cfg.max_cycles = FUZZ_MAX_CYCLES;
    let mut scratch = SimScratch::default();
    let baseline = match run_cell_with_config(&w, Cell::Baseline, &base_cfg, &mut scratch) {
        Ok(r) => r,
        Err(e) => return fail(format!("baseline failed: {e}")),
    };
    let postdoms =
        match run_cell_with_config(&w, Cell::Static(Policy::Postdoms), &poly_cfg, &mut scratch) {
            Ok(r) => r,
            Err(e) => return fail(format!("postdoms failed: {e}")),
        };

    // Same ground truth and training as `reconv_accuracy`: compiler
    // postdominator targets for branch/jr spawn points vs. what a
    // predictor trained on this program's own trace reconstructs.
    let truth: HashMap<_, _> = w
        .analysis
        .candidates()
        .iter()
        .filter(|sp| {
            matches!(
                sp.kind,
                SpawnKind::Hammock | SpawnKind::LoopFallThrough | SpawnKind::Other
            )
        })
        .map(|sp| (sp.trigger, sp.target))
        .collect();
    let predictor = train_on_trace(w.trace(), ReconvConfig::default());
    let pc_index = w.pc_index();
    let mut out = Outcome {
        speedup: baseline.cycles as f64 / postdoms.cycles.max(1) as f64,
        exact: 0,
        wrong: 0,
        none: 0,
        dyn_exact: 0,
        dyn_total: 0,
    };
    for (&trigger, &target) in &truth {
        let weight = pc_index.count(trigger) as u64;
        out.dyn_total += weight;
        match predictor.predict(trigger) {
            Some(p) if p == target => {
                out.exact += 1;
                out.dyn_exact += weight;
            }
            Some(_) => out.wrong += 1,
            None => out.none += 1,
        }
    }
    ProgramRow {
        bucket,
        seed,
        outcome: Some(out),
        error: String::new(),
    }
}

/// Histogram bins for per-program static-exact percentage.
const BINS: [(&str, f64, f64); 4] = [
    ("0-50%", 0.0, 50.0),
    ("50-75%", 50.0, 75.0),
    ("75-90%", 75.0, 90.0),
    ("90-100%", 90.0, 100.0),
];

fn bucket_summary(bucket: &str, rows: &[&ProgramRow]) -> String {
    let ok: Vec<&Outcome> = rows.iter().filter_map(|r| r.outcome.as_ref()).collect();
    if ok.is_empty() {
        return format!("{bucket:<12} {:>5}  (no program completed)", rows.len());
    }
    let mut speedups: Vec<f64> = ok.iter().map(|o| o.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let mut hist = [0usize; BINS.len()];
    for o in &ok {
        let p = o.static_pct();
        // Upper-inclusive last bin so 100% lands in 90-100%.
        let idx = BINS
            .iter()
            .position(|&(_, lo, hi)| p >= lo && p < hi)
            .unwrap_or(BINS.len() - 1);
        hist[idx] += 1;
    }
    let dyn_mean = ok.iter().map(|o| o.dyn_pct()).sum::<f64>() / ok.len() as f64;
    format!(
        "{bucket:<12} {:>5} {:>7.3} {:>7.3} {:>7.3}   {:>5} {:>6} {:>6} {:>7}   {:>8.1}%",
        ok.len(),
        mean,
        speedups[0],
        speedups[speedups.len() - 1],
        hist[0],
        hist[1],
        hist[2],
        hist[3],
        dyn_mean
    )
}

fn main() {
    let mut programs: u64 = 50;
    let mut seed0: u64 = 1;
    let mut jobs: usize = pool::resolve_jobs();
    let mut csv = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--programs" => match args.next().and_then(|v| parse_seed(&v)) {
                Some(n) if n > 0 => programs = n,
                _ => usage("--programs needs a positive count"),
            },
            "--seed" => match args.next().and_then(|v| parse_seed(&v)) {
                Some(s) => seed0 = s,
                None => usage("--seed needs a value"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => usage("--jobs needs a positive count"),
            },
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!(
                    "wsweep — distribution-bucketed generated-workload sweep\n\n\
                     Usage: wsweep [--programs N] [--seed S] [--jobs N] [--csv]"
                );
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    // Every (bucket, seed) pair is an independent task; `parallel_map`
    // preserves input order, so the report is identical at any `--jobs`.
    let mut tasks: Vec<(&'static str, u64, &'static GenDist)> = Vec::new();
    for (name, dist) in &GenDist::BUCKETS {
        for i in 0..programs {
            tasks.push((name, seed0.wrapping_add(i), dist));
        }
    }
    let rows = pool::parallel_map(tasks, jobs, |_, (bucket, seed, dist)| {
        run_one(bucket, seed, dist)
    });

    if csv {
        println!("bucket,seed,speedup,static_exact_pct,dyn_weighted_pct,error");
        for r in &rows {
            match &r.outcome {
                Some(o) => println!(
                    "{},{:#x},{:.6},{:.2},{:.2},",
                    r.bucket,
                    r.seed,
                    o.speedup,
                    o.static_pct(),
                    o.dyn_pct()
                ),
                None => println!("{},{:#x},,,,{}", r.bucket, r.seed, r.error),
            }
        }
        return;
    }

    println!("== Generated-workload sweep: postdoms vs baseline by distribution bucket ==");
    println!(
        "({programs} programs/bucket, base seed {seed0:#x}; speedup = baseline cycles / postdoms cycles;\n\
         accuracy histogram bins programs by exact static reconvergence-prediction rate)"
    );
    println!();
    println!(
        "{:<12} {:>5} {:>7} {:>7} {:>7}   {:>5} {:>6} {:>6} {:>7}   {:>9}",
        "bucket", "n", "mean", "min", "max", "0-50", "50-75", "75-90", "90-100", "dyn-mean"
    );
    let mut failures = 0usize;
    for (name, _) in &GenDist::BUCKETS {
        let bucket_rows: Vec<&ProgramRow> = rows.iter().filter(|r| r.bucket == *name).collect();
        failures += bucket_rows.iter().filter(|r| r.outcome.is_none()).count();
        println!("{}", bucket_summary(name, &bucket_rows));
    }
    if failures > 0 {
        println!();
        println!("{failures} program(s) failed; rerun with --csv for per-seed detail");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("wsweep: {msg}\nusage: wsweep [--programs N] [--seed S] [--jobs N] [--csv]");
    std::process::exit(2);
}
