//! Static verifier over the bundled workloads.
//!
//! Runs every check in `polyflow_core::verify` — unreachable blocks,
//! undefined register uses, malformed terminators, irreducible loops, the
//! immediate-postdominator cross-check against the set-based reference,
//! and spawn-table legality — over each bundled workload, and prints a
//! hint-capacity report: spawn targets whose statically predicted live-in
//! set exceeds the hint entry's register slots (§3.1).
//!
//! The dataflow solves behind the lint pass run on the SCC-parallel
//! solver (DESIGN.md §12); `--jobs`/`POLYFLOW_JOBS` picks the worker
//! count and each workload row reports solve wall-clock, split into the
//! per-function problems (liveness + reaching defs over every CFG) and
//! the whole-program supergraph liveness. Results are bit-identical at
//! every worker count — timing is the only thing `--jobs` changes.
//!
//! Exit status is 0 iff no workload produced a diagnostic; hint-capacity
//! overflow is a report, not an error (the hardware degrades gracefully).
//!
//! Usage: `lint [--jobs N] [workload...]` (default: all workloads)

use std::time::Instant;

use polyflow_bench::stopwatch::fmt_duration;
use polyflow_cfg::Cfg;
use polyflow_core::{verify, ProgramAnalysis, VerifyOptions};
use polyflow_dataflow::{EntryDefs, LiveSets, ReachingDefs};
use polyflow_sim::MachineConfig;

const SPEC: polyflow_bench::cli::Spec = polyflow_bench::cli::Spec {
    name: "lint",
    about: "Static verifier over the bundled workloads (exit 0 iff no \
            diagnostics), with a hint-capacity pressure report",
    flags: &[polyflow_bench::cli::JOBS, polyflow_bench::cli::ASM],
    takes_workloads: true,
};

fn main() {
    let args = polyflow_bench::cli::parse(&SPEC);
    let jobs = polyflow_bench::pool::resolve_jobs();
    let mut workloads: Vec<_> = if args.asm.is_empty() || !args.filter.is_empty() {
        polyflow_workloads::all()
            .into_iter()
            .filter(|w| args.filter.is_empty() || args.filter.contains(&w.name))
            .collect()
    } else {
        Vec::new()
    };
    for path in &args.asm {
        match polyflow_workloads::from_asm_file(path) {
            Ok(w) => workloads.push(w),
            Err(e) => {
                eprintln!("cannot load workload `{path}`: {e}");
                std::process::exit(2);
            }
        }
    }

    let opts = VerifyOptions {
        hint_register_slots: MachineConfig::hpca07().hint_register_slots,
        ..VerifyOptions::default()
    };
    let mut total_diags = 0usize;
    let mut total_overflows = 0usize;

    println!("lint: {jobs} solver job(s)");
    for w in &workloads {
        // Per-function solves: every problem the intraprocedural analyses
        // pose (liveness plus reaching defs under both entry policies).
        let fn_start = Instant::now();
        let cfgs = Cfg::build_all(&w.program);
        for cfg in &cfgs {
            let _ = LiveSets::compute(&w.program, cfg);
            for entry in [EntryDefs::All, EntryDefs::Strict] {
                let _ = ReachingDefs::compute_with(&w.program, cfg, entry);
            }
        }
        let fn_solve = fn_start.elapsed();

        // The supergraph solve rides inside the whole-program analysis.
        let sg_start = Instant::now();
        let analysis = ProgramAnalysis::analyze_with_jobs(&w.program, jobs);
        let sg_solve = sg_start.elapsed();

        let report = verify(&w.program, &analysis, &opts);

        let overflows: Vec<_> = report.hint_overflows().collect();
        println!(
            "{:<10} {:>5} insts {:>4} spawn points {:>3} diagnostics {:>3} hint overflows \
             fn-solve {:>9} supergraph {:>9}",
            w.name,
            w.program.len(),
            analysis.candidates().len(),
            report.diagnostics.len(),
            overflows.len(),
            fmt_duration(fn_solve),
            fmt_duration(sg_solve),
        );
        for d in &report.diagnostics {
            println!("  {d}");
        }
        for h in &overflows {
            let regs: Vec<String> = h.live_in.iter().map(|r| r.to_string()).collect();
            println!(
                "  [hint-capacity] {} needs {} live-in regs ({}) > {} slots",
                h.spawn,
                h.live_in.len(),
                regs.join(","),
                h.slots,
            );
        }
        total_diags += report.diagnostics.len();
        total_overflows += overflows.len();
    }

    println!(
        "\n{} workloads: {} diagnostics, {} hint-capacity overflows",
        workloads.len(),
        total_diags,
        total_overflows,
    );
    if total_diags > 0 {
        std::process::exit(1);
    }
}
