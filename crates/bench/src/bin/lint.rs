//! Static verifier over the bundled workloads.
//!
//! Runs every check in `polyflow_core::verify` — unreachable blocks,
//! undefined register uses, malformed terminators, irreducible loops, the
//! immediate-postdominator cross-check against the set-based reference,
//! and spawn-table legality — over each bundled workload, and prints a
//! hint-capacity report: spawn targets whose statically predicted live-in
//! set exceeds the hint entry's register slots (§3.1).
//!
//! Exit status is 0 iff no workload produced a diagnostic; hint-capacity
//! overflow is a report, not an error (the hardware degrades gracefully).
//!
//! Usage: `lint [workload...]` (default: all workloads)

use polyflow_core::{verify, ProgramAnalysis, VerifyOptions};
use polyflow_sim::MachineConfig;

const SPEC: polyflow_bench::cli::Spec = polyflow_bench::cli::Spec {
    name: "lint",
    about: "Static verifier over the bundled workloads (exit 0 iff no \
            diagnostics), with a hint-capacity pressure report",
    flags: &[],
    takes_workloads: true,
};

fn main() {
    let filter = polyflow_bench::cli::parse(&SPEC).filter;
    let workloads: Vec<_> = polyflow_workloads::all()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|f| f == w.name))
        .collect();

    let opts = VerifyOptions {
        hint_register_slots: MachineConfig::hpca07().hint_register_slots,
        ..VerifyOptions::default()
    };
    let mut total_diags = 0usize;
    let mut total_overflows = 0usize;

    for w in &workloads {
        let analysis = ProgramAnalysis::analyze(&w.program);
        let report = verify(&w.program, &analysis, &opts);

        let overflows: Vec<_> = report.hint_overflows().collect();
        println!(
            "{:<10} {:>5} insts {:>4} spawn points {:>3} diagnostics {:>3} hint overflows",
            w.name,
            w.program.len(),
            analysis.candidates().len(),
            report.diagnostics.len(),
            overflows.len(),
        );
        for d in &report.diagnostics {
            println!("  {d}");
        }
        for h in &overflows {
            let regs: Vec<String> = h.live_in.iter().map(|r| r.to_string()).collect();
            println!(
                "  [hint-capacity] {} needs {} live-in regs ({}) > {} slots",
                h.spawn,
                h.live_in.len(),
                regs.join(","),
                h.slots,
            );
        }
        total_diags += report.diagnostics.len();
        total_overflows += overflows.len();
    }

    println!(
        "\n{} workloads: {} diagnostics, {} hint-capacity overflows",
        workloads.len(),
        total_diags,
        total_overflows,
    );
    if total_diags > 0 {
        std::process::exit(1);
    }
}
