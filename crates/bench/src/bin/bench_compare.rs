//! Diffs two `BENCH_sweep.json` perf-trajectory files.
//!
//! Reads the baseline and candidate reports written by the sweep engine
//! (`SweepReport::to_json`), prints the overall throughput ratio and the
//! largest per-cell movements, and exits 0 regardless — the CI step that
//! runs it is informational, so noisy containers cannot fail a build.
//! Pass `--min-speedup X` to turn it into a gate: exit 1 if
//! `candidate.cells_per_second / baseline.cells_per_second < X`.
//!
//! Usage: `bench_compare [--min-speedup X] [--top N] BASELINE.json CANDIDATE.json`
//!
//! The parser is a deliberately small scanner over the known report
//! shape (the workspace takes no serde dependency): it extracts
//! `"cells_per_second": <num>` and the `{"cell": "...", "seconds": N}`
//! rows, and ignores everything else.

use std::process::exit;

#[derive(Debug, Default)]
struct Report {
    cells_per_second: f64,
    cells: Vec<(String, f64)>,
}

/// Extracts the first JSON number following `"<key>":` in `text`.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string following `"<key>":` in `text` (no escapes — cell
/// labels are `workload/policy` identifiers).
fn scan_string(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn parse_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cells_per_second = scan_number(&text, "cells_per_second")
        .ok_or_else(|| format!("{path}: no \"cells_per_second\" field"))?;
    let mut cells = Vec::new();
    // Each per-cell row is one `{"cell": "...", "seconds": N}` object.
    for chunk in text.split('{').skip(1) {
        if let (Some(label), Some(secs)) =
            (scan_string(chunk, "cell"), scan_number(chunk, "seconds"))
        {
            cells.push((label, secs));
        }
    }
    Ok(Report {
        cells_per_second,
        cells,
    })
}

fn usage() -> ! {
    eprintln!(
        "Usage: bench_compare [--min-speedup X] [--top N] BASELINE.json CANDIDATE.json\n\n\
         Diffs two BENCH_sweep.json files. Informational by default \
         (exit 0); --min-speedup X exits 1 when the overall throughput \
         ratio falls below X."
    );
    exit(2);
}

fn main() {
    let mut min_speedup: Option<f64> = None;
    let mut top = 5usize;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => usage(),
            "--min-speedup" => match args.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_speedup = Some(x),
                None => usage(),
            },
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => usage(),
            },
            _ if a.starts_with('-') => usage(),
            _ => paths.push(a),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        usage();
    };
    let (base, cand) = match (parse_report(base_path), parse_report(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            exit(2);
        }
    };

    let ratio = cand.cells_per_second / base.cells_per_second.max(1e-9);
    println!(
        "throughput: {:.3} -> {:.3} cells/sec ({:.2}x)",
        base.cells_per_second, cand.cells_per_second, ratio
    );

    // Per-cell movements, matched by label (cells present in only one
    // report are skipped — grids may differ across revisions).
    let mut moves: Vec<(f64, String, f64, f64)> = Vec::new();
    for (label, b) in &base.cells {
        if let Some((_, c)) = cand.cells.iter().find(|(l, _)| l == label) {
            moves.push((c / b.max(1e-9), label.clone(), *b, *c));
        }
    }
    println!(
        "matched {} of {} baseline cells against {} candidate cells",
        moves.len(),
        base.cells.len(),
        cand.cells.len()
    );
    moves.sort_by(|a, b| a.0.total_cmp(&b.0));
    if !moves.is_empty() {
        println!("largest slowdowns (candidate seconds / baseline seconds):");
        for (r, label, b, c) in moves.iter().rev().take(top) {
            println!("  {label}: {b:.3}s -> {c:.3}s ({r:.2}x)");
        }
        println!("largest speedups:");
        for (r, label, b, c) in moves.iter().take(top) {
            println!("  {label}: {b:.3}s -> {c:.3}s ({r:.2}x)");
        }
    }

    if let Some(min) = min_speedup {
        if ratio < min {
            eprintln!("bench_compare: throughput ratio {ratio:.3} below required {min}");
            exit(1);
        }
    }
}
