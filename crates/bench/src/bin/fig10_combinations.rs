//! Regenerates Figure 10: combinations of heuristics (loop + loopFT,
//! loopFT + procFT, loop + procFT + loopFT) versus full postdominator
//! spawning, as speedup over the superscalar.
//!
//! Usage: `fig10_combinations [workload ...]` (default: all 12).

use polyflow_bench::{
    cli_filter, csv_requested, prepare_all, print_speedup_csv, print_speedup_table,
};
use polyflow_core::Policy;

fn main() {
    let workloads = prepare_all(&cli_filter());
    let policies = Policy::figure10();
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    let mut rows = Vec::new();
    for w in &workloads {
        let base = w.run_baseline();
        let speedups: Vec<f64> = policies
            .iter()
            .map(|&p| w.run_static(p).speedup_percent_over(&base))
            .collect();
        rows.push((w.name.to_string(), base.ipc(), speedups));
        eprintln!("  [{}] done", w.name);
    }
    if csv_requested() {
        print_speedup_csv(&rows, &columns);
        return;
    }
    print_speedup_table(
        "Figure 10: combinations of heuristics (speedup % over superscalar)",
        &rows,
        &columns,
    );
    // The paper's headline: postdoms beats the best combination by ~33%.
    let n = rows.len() as f64;
    let avg: Vec<f64> = (0..columns.len())
        .map(|i| rows.iter().map(|r| r.2[i]).sum::<f64>() / n)
        .collect();
    let best_combo = avg[..3].iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "postdoms average {:.1}% vs best combination {:.1}% => {:.0}% more speedup",
        avg[3],
        best_combo,
        100.0 * (avg[3] - best_combo) / best_combo.max(1e-9)
    );
}
