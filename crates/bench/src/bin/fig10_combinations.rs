//! Regenerates Figure 10: combinations of heuristics (loop + loopFT,
//! loopFT + procFT, loop + procFT + loopFT) versus full postdominator
//! spawning, as speedup over the superscalar.
//!
//! Usage: `fig10_combinations [--jobs N] [--max-cycles N] [--csv]
//! [workload ...]`
//! (default: all 12).

use polyflow_bench::sweep::{sweep, Cell};
use polyflow_bench::{cli, prepare_selection, print_speedup_csv, print_speedup_table};
use polyflow_core::Policy;

const SPEC: cli::Spec = cli::Spec {
    name: "fig10_combinations",
    about: "Regenerates Figure 10: combinations of heuristics versus full \
            postdominator spawning, as speedup over the superscalar",
    flags: &[cli::JOBS, cli::MAX_CYCLES, cli::ASM, cli::CSV],
    takes_workloads: true,
};

fn main() {
    let args = cli::parse(&SPEC);
    let workloads = prepare_selection(&args);
    let policies = Policy::figure10();
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    let cells: Vec<Cell> = std::iter::once(Cell::Baseline)
        .chain(policies.iter().map(|&p| Cell::Static(p)))
        .collect();
    let (grid, report) = sweep("fig10_combinations", &workloads, &cells);
    let rows: Vec<(String, f64, Vec<f64>)> = workloads
        .iter()
        .zip(&grid)
        .map(|(w, row)| {
            let base = &row[0];
            let speedups: Vec<f64> = row[1..]
                .iter()
                .map(|r| r.speedup_percent_over(base))
                .collect();
            (w.name.to_string(), base.ipc(), speedups)
        })
        .collect();
    if args.csv {
        print_speedup_csv(&rows, &columns);
        report.emit();
        if polyflow_bench::sweep::report_failures(&grid) {
            std::process::exit(1);
        }
        return;
    }
    print_speedup_table(
        "Figure 10: combinations of heuristics (speedup % over superscalar)",
        &rows,
        &columns,
    );
    // The paper's headline: postdoms beats the best combination by ~33%.
    let n = rows.len() as f64;
    let avg: Vec<f64> = (0..columns.len())
        .map(|i| rows.iter().map(|r| r.2[i]).sum::<f64>() / n)
        .collect();
    let best_combo = avg[..3].iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "postdoms average {:.1}% vs best combination {:.1}% => {:.0}% more speedup",
        avg[3],
        best_combo,
        100.0 * (avg[3] - best_combo) / best_combo.max(1e-9)
    );
    report.emit();
    if polyflow_bench::sweep::report_failures(&grid) {
        std::process::exit(1);
    }
}
