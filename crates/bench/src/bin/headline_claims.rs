//! Checks the paper's headline claims (§1, §6) against this
//! reproduction's measurements:
//!
//! 1. Control-equivalent spawning achieves, on average, **more than double
//!    the speedup of the best individual heuristic** (Figure 9).
//! 2. It achieves **~33% more speedup than the best heuristic
//!    combination** (Figure 10).
//! 3. Control-equivalent spawning either outperforms or comes close to the
//!    best individual heuristic on each benchmark (§4.1).

use polyflow_bench::sweep::{sweep, Cell};
use polyflow_bench::{cli, prepare_selection};
use polyflow_core::Policy;

const SPEC: cli::Spec = cli::Spec {
    name: "headline_claims",
    about: "Checks the paper's headline claims (§1/§6) against this \
            reproduction's measurements",
    flags: &[cli::JOBS, cli::MAX_CYCLES, cli::ASM],
    takes_workloads: true,
};

fn main() {
    let workloads = prepare_selection(&cli::parse(&SPEC));
    let individual = Policy::figure9();
    let combos = Policy::figure10();

    // One grid covers both figures; `postdoms` (the last entry of each
    // policy list) is simulated once and reused for both averages.
    let cells: Vec<Cell> = std::iter::once(Cell::Baseline)
        .chain(individual.iter().map(|&p| Cell::Static(p)))
        .chain(combos[..combos.len() - 1].iter().map(|&p| Cell::Static(p)))
        .collect();
    let (grid, report) = sweep("headline_claims", &workloads, &cells);

    let n = workloads.len() as f64;
    let mut avg_individual = vec![0.0; individual.len()];
    let mut avg_combo = vec![0.0; combos.len()];
    let mut per_bench_ok = 0usize;

    for row in &grid {
        let base = &row[0];
        let speedups: Vec<f64> = row[1..=individual.len()]
            .iter()
            .map(|r| r.speedup_percent_over(base))
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            avg_individual[i] += s / n;
        }
        // Claim 3: postdoms ≥ best heuristic − small tolerance.
        let postdoms = speedups[individual.len() - 1];
        let best_heuristic = speedups[..individual.len() - 1]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        if postdoms >= best_heuristic - 5.0 {
            per_bench_ok += 1;
        }
        for (i, r) in row[individual.len() + 1..].iter().enumerate() {
            avg_combo[i] += r.speedup_percent_over(base) / n;
        }
        avg_combo[combos.len() - 1] += postdoms / n;
    }

    let postdoms_avg = avg_individual[individual.len() - 1];
    let best_ind = avg_individual[..individual.len() - 1]
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    let best_combo = avg_combo[..combos.len() - 1]
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);

    println!("== Headline claims (paper §1/§6 vs this reproduction) ==");
    println!(
        "1. postdoms avg {postdoms_avg:.1}% vs best individual heuristic {best_ind:.1}% \
         => ratio {:.2}x (paper: >2x) {}",
        postdoms_avg / best_ind.max(1e-9),
        if postdoms_avg > 2.0 * best_ind {
            "PASS"
        } else {
            "MISS"
        }
    );
    // Claim 2 is checked for *direction only* (postdoms must beat the
    // best combination at all); the paper's ~33% margin does not
    // reproduce on these synthetic stand-ins and the gap is annotated
    // explicitly instead of being silently folded into a PASS (see
    // EXPERIMENTS.md "Headline claims" for why the magnitude deviates).
    let margin = 100.0 * (postdoms_avg - best_combo) / best_combo.max(1e-9);
    println!(
        "2. postdoms avg {postdoms_avg:.1}% vs best combination {best_combo:.1}% \
         => {margin:.0}% more (paper: ~33%; gap {:.0}pp, magnitude NOT reproduced \
         -- see EXPERIMENTS.md) {}",
        margin - 33.0,
        if postdoms_avg > best_combo {
            "PASS[direction-only]"
        } else {
            "MISS"
        }
    );
    println!(
        "3. postdoms >= best individual heuristic (within tolerance) on \
         {per_bench_ok}/{} benchmarks {}",
        workloads.len(),
        if per_bench_ok * 10 >= workloads.len() * 9 {
            "PASS"
        } else {
            "MISS"
        }
    );
    report.emit();
    if polyflow_bench::sweep::report_failures(&grid) {
        std::process::exit(1);
    }
}
