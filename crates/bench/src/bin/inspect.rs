//! Annotated disassembly of a workload: the listing with each spawn
//! trigger marked with its target and classification, plus per-function
//! analysis summaries (blocks, loops, branches without postdominators).
//!
//! Usage: `inspect <workload> [function]`

use polyflow_core::ProgramAnalysis;
use polyflow_isa::Pc;
use std::collections::HashMap;

fn main() {
    let mut positional = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "inspect — annotated disassembly of a workload\n\n\
                     Usage: inspect <workload> [function]\n\n\
                     Workloads: {}",
                    polyflow_workloads::names().join(" ")
                );
                return;
            }
            "--" => {}
            other if other.starts_with('-') => {
                eprintln!("inspect: unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
            other => positional.push(other.to_string()),
        }
    }
    let name = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "twolf".into());
    let function_filter = positional.get(1).cloned();
    let Some(w) = polyflow_workloads::by_name(&name) else {
        eprintln!(
            "unknown workload `{name}`; one of {:?}",
            polyflow_workloads::NAMES
        );
        std::process::exit(2);
    };
    let analysis = ProgramAnalysis::analyze(&w.program);
    let spawns: HashMap<Pc, String> = analysis
        .candidates()
        .iter()
        .map(|sp| (sp.trigger, format!("<= spawn {} [{}]", sp.target, sp.kind)))
        .collect();

    for f in analysis.functions() {
        let fname = &f.cfg.function().name;
        if let Some(filter) = &function_filter {
            if fname != filter {
                continue;
            }
        }
        println!(
            "\n{fname}: {} blocks, {} loops, {} spawn candidates",
            f.cfg.len(),
            f.loops.len(),
            f.candidates().len()
        );
        for block in f.cfg.blocks() {
            let loop_note = f
                .loops
                .innermost(block.id)
                .map(|l| format!(" (loop depth {})", l.depth))
                .unwrap_or_default();
            let ipd = match f.pdom.idom(block.id) {
                Some(p) => format!("{p}"),
                None => "exit".into(),
            };
            println!("  {}{} ipostdom={}", block.id, loop_note, ipd);
            for i in block.start.index()..block.end.index() {
                let pc = Pc::new(i as u32);
                let note = spawns.get(&pc).map(String::as_str).unwrap_or("");
                println!("    {pc}: {:<28} {note}", w.program.inst(pc).to_string());
            }
        }
    }
    let d = analysis.static_distribution();
    println!("\nstatic spawn distribution: {d}");
}
