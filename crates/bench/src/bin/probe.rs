//! Diagnostic probe: detailed per-policy statistics for one workload
//! (the reconvergence predictor plus every Figure 9 policy).
//!
//! Usage: `probe [workload]` (default: crafty).

use polyflow_bench::PreparedWorkload;
use polyflow_core::Policy;

const SPEC: polyflow_bench::cli::Spec = polyflow_bench::cli::Spec {
    name: "probe",
    about: "Diagnostic probe: detailed per-policy statistics for one \
            workload (default: crafty)",
    flags: &[],
    takes_workloads: true,
};

fn main() {
    let filter = polyflow_bench::cli::parse(&SPEC).filter;
    let name = filter.first().cloned().unwrap_or_else(|| "crafty".into());
    let w = polyflow_workloads::by_name(&name).expect("cli validated the name");
    let pw = PreparedWorkload::prepare(w);
    let base = pw.run_baseline();
    println!(
        "{name}: {} instrs, baseline IPC {:.2}, {} cond mispredicts, {} indirect, \
         l1i misses {}, l1d misses {}, l2 misses {}",
        base.instructions,
        base.ipc(),
        base.branch_mispredicts,
        base.indirect_mispredicts,
        base.l1i_misses,
        base.l1d_misses,
        base.l2_misses
    );
    let dist = pw.analysis.static_distribution();
    println!("static spawn candidates: {dist}");
    {
        let r = pw.run_reconv();
        println!(
            "{:>10}: speedup {:6.1}%  IPC {:.2}  spawns {:6} (PFT {} O {})  rej dist {} ctx {} unprofit {}  diverted {}  maxtasks {}",
            "rec_pred",
            r.speedup_percent_over(&base),
            r.ipc(),
            r.total_spawns(),
            r.spawns.proc_ft,
            r.spawns.other,
            r.spawns_rejected_distance,
            r.spawns_rejected_contexts,
            r.spawns_rejected_unprofitable,
            r.diverted,
            r.max_live_tasks
        );
    }
    for policy in Policy::figure9() {
        let r = pw.run_static(policy);
        println!(
            "{:>10}: speedup {:6.1}%  IPC {:.2}  spawns {:6} (L {} LFT {} PFT {} H {} O {})  \
             rej dist {} ctx {} unprofit {}  diverted {}  maxtasks {}",
            policy.name(),
            r.speedup_percent_over(&base),
            r.ipc(),
            r.total_spawns(),
            r.spawns.loop_spawns,
            r.spawns.loop_ft,
            r.spawns.proc_ft,
            r.spawns.hammocks,
            r.spawns.other,
            r.spawns_rejected_distance,
            r.spawns_rejected_contexts,
            r.spawns_rejected_unprofitable,
            r.diverted,
            r.max_live_tasks
        );
    }
}
