//! Regenerates Figure 5: the static distribution of control-equivalent
//! task types (percentage of LoopFT / ProcFT / Hammock / Other spawn
//! points per benchmark, with the total static spawn count atop each bar).
//!
//! Usage: `fig05_static_distribution [workload ...]` (default: all 12).

use polyflow_bench::{cli, prepare_selection};
use polyflow_core::SpawnKind;

const SPEC: cli::Spec = cli::Spec {
    name: "fig05_static_distribution",
    about: "Regenerates Figure 5: the static distribution of \
            control-equivalent task types per benchmark",
    flags: &[cli::JOBS, cli::ASM],
    takes_workloads: true,
};

fn main() {
    let workloads = prepare_selection(&cli::parse(&SPEC));
    println!("== Figure 5: static distribution of control-equivalent task types ==");
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>7} {:>7}",
        "benchmark", "LoopFT%", "ProcFT%", "Hammock%", "Other%", "total"
    );
    for w in &workloads {
        let d = w.analysis.static_distribution();
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>7}",
            w.name,
            d.percent(SpawnKind::LoopFallThrough),
            d.percent(SpawnKind::ProcFallThrough),
            d.percent(SpawnKind::Hammock),
            d.percent(SpawnKind::Other),
            d.total_postdom()
        );
    }
    println!();
    println!(
        "(Paper: hammocks, loop fall-throughs and procedure fall-throughs are all\n\
         important task types; \"other\" is a small fraction, largely indirect jumps;\n\
         static totals range from 381 [mcf] to 13 707 [gcc] — our stand-ins are\n\
         kernels, so totals are smaller but gcc remains the largest.)"
    );
}
