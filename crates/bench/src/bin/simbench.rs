//! Per-workload simulator throughput benchmark.
//!
//! Runs the superscalar baseline and the combined-postdominator policy
//! over each bundled workload on one thread, repeats the pair
//! `--repeat` times, and reports the best wall-clock per workload as
//! cells/sec together with the cycle-skip telemetry (how much of the
//! simulated time the event-driven core fast-forwarded). `--json` emits
//! a machine-readable report for trend tracking (`bench_compare` diffs
//! two such files only loosely — this report carries per-workload rows,
//! `BENCH_sweep.json` carries per-cell rows).
//!
//! Usage: `simbench [--repeat N] [--max-cycles N] [--asm PATH] [--json] [workload ...]`

use polyflow_bench::sweep::{run_cell_with_config_opts, Cell};
use polyflow_bench::{cli, polyflow_config, prepare_selection, resolve_max_cycles};
use polyflow_core::Policy;
use polyflow_sim::{MachineConfig, SimOptions, SimScratch};
use std::time::Instant;

const REPEAT: cli::Flag = cli::Flag {
    name: "--repeat",
    value: Some("N"),
    help: "timing repetitions per workload, best kept (default: 3)",
};

const JSON: cli::Flag = cli::Flag {
    name: "--json",
    value: None,
    help: "emit a machine-readable JSON report instead of the table",
};

const SPEC: cli::Spec = cli::Spec {
    name: "simbench",
    about: "Per-workload simulator throughput (cells/sec) with cycle-skip \
            telemetry",
    flags: &[REPEAT, cli::MAX_CYCLES, cli::ASM, JSON],
    takes_workloads: true,
};

/// Re-scans the command line for the flags `cli::parse` validated but
/// does not carry (the same pattern as `resolve_max_cycles`).
fn scan_args() -> (u32, bool) {
    let mut repeat = 3u32;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--repeat" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                repeat = n;
            }
        } else if let Some(n) = a.strip_prefix("--repeat=").and_then(|v| v.parse().ok()) {
            repeat = n;
        } else if a == "--json" {
            json = true;
        }
    }
    (repeat.max(1), json)
}

struct Row {
    workload: String,
    cells: usize,
    best_seconds: f64,
    executed_cycles: u64,
    skipped_cycles: u64,
}

impl Row {
    fn cells_per_second(&self) -> f64 {
        self.cells as f64 / self.best_seconds.max(1e-9)
    }

    fn skip_fraction(&self) -> f64 {
        let total = self.executed_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }
}

fn main() {
    let args = cli::parse(&SPEC);
    let (repeat, json) = scan_args();
    let workloads = prepare_selection(&args);

    let mut ss_cfg = MachineConfig::superscalar();
    ss_cfg.max_cycles = resolve_max_cycles();
    let pf_cfg = polyflow_config();
    let cells = [
        (Cell::Baseline, ss_cfg),
        (Cell::Static(Policy::Postdoms), pf_cfg),
    ];

    let mut scratch = SimScratch::default();
    let mut rows = Vec::with_capacity(workloads.len());
    let mut failed = false;
    for w in &workloads {
        // Warm the lazy prepared-trace caches so the timed reps measure
        // simulation, not trace preparation.
        for (_, cfg) in &cells {
            let _ = w.prepared(cfg);
        }
        let mut best = f64::INFINITY;
        let mut executed = 0u64;
        let mut skipped = 0u64;
        for _ in 0..repeat {
            let t0 = Instant::now();
            executed = 0;
            skipped = 0;
            for (cell, cfg) in &cells {
                match run_cell_with_config_opts(w, *cell, cfg, &mut scratch, SimOptions::default())
                {
                    Ok((_, telemetry)) => {
                        executed += telemetry.executed_cycles;
                        skipped += telemetry.skipped_cycles;
                    }
                    Err(e) => {
                        eprintln!("[simbench] FAILED {}/{}: {e}", w.name, cell.label());
                        failed = true;
                    }
                }
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        rows.push(Row {
            workload: w.name.clone(),
            cells: cells.len(),
            best_seconds: best,
            executed_cycles: executed,
            skipped_cycles: skipped,
        });
    }

    let total_cells: usize = rows.iter().map(|r| r.cells).sum();
    let total_seconds: f64 = rows.iter().map(|r| r.best_seconds).sum();
    let total_cps = total_cells as f64 / total_seconds.max(1e-9);
    if json {
        println!("{}", to_json(&rows, repeat, total_cps));
    } else {
        println!("== simbench: best of {repeat} rep(s), 1 worker ==");
        println!(
            "{:<12} {:>10} {:>12} {:>16} {:>16} {:>8}",
            "workload", "seconds", "cells/sec", "executed_cycles", "skipped_cycles", "skip%"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10.3} {:>12.1} {:>16} {:>16} {:>7.1}%",
                r.workload,
                r.best_seconds,
                r.cells_per_second(),
                r.executed_cycles,
                r.skipped_cycles,
                r.skip_fraction() * 100.0
            );
        }
        println!("total: {total_cells} cells, {total_seconds:.3} s ({total_cps:.1} cells/sec)");
    }
    if failed {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace takes no serde dependency).
fn to_json(rows: &[Row], repeat: u32, total_cps: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"simbench\",\n");
    out.push_str(&format!("  \"repeat\": {repeat},\n"));
    out.push_str(&format!("  \"total_cells_per_second\": {total_cps:.3},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"cells\": {}, \"best_seconds\": {:.6}, \
             \"cells_per_second\": {:.3}, \"executed_cycles\": {}, \
             \"skipped_cycles\": {}, \"skip_fraction\": {:.4}}}{comma}\n",
            r.workload,
            r.cells,
            r.best_seconds,
            r.cells_per_second(),
            r.executed_cycles,
            r.skipped_cycles,
            r.skip_fraction()
        ));
    }
    out.push_str("  ]\n}");
    out
}
