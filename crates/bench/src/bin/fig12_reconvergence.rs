//! Regenerates Figure 12: spawning from the dynamic reconvergence
//! predictor (trained online on the retirement stream, §4.4) versus
//! compiler-generated immediate postdominators.
//!
//! Usage: `fig12_reconvergence [--jobs N] [--max-cycles N] [--csv]
//! [workload ...]`
//! (default: all 12).

use polyflow_bench::sweep::{sweep, Cell};
use polyflow_bench::{cli, prepare_selection, print_speedup_csv, print_speedup_table};
use polyflow_core::Policy;

const SPEC: cli::Spec = cli::Spec {
    name: "fig12_reconvergence",
    about: "Regenerates Figure 12: spawning from the dynamic reconvergence \
            predictor versus compiler-generated immediate postdominators",
    flags: &[cli::JOBS, cli::MAX_CYCLES, cli::ASM, cli::CSV],
    takes_workloads: true,
};

fn main() {
    let args = cli::parse(&SPEC);
    let workloads = prepare_selection(&args);
    let columns = vec!["rec_pred".to_string(), "postdoms".to_string()];

    let cells = [Cell::Baseline, Cell::Reconv, Cell::Static(Policy::Postdoms)];
    let (grid, report) = sweep("fig12_reconvergence", &workloads, &cells);
    let rows: Vec<(String, f64, Vec<f64>)> = workloads
        .iter()
        .zip(&grid)
        .map(|(w, row)| {
            let base = &row[0];
            let rec = row[1].speedup_percent_over(base);
            let pd = row[2].speedup_percent_over(base);
            (w.name.to_string(), base.ipc(), vec![rec, pd])
        })
        .collect();
    if args.csv {
        print_speedup_csv(&rows, &columns);
        report.emit();
        if polyflow_bench::sweep::report_failures(&grid) {
            std::process::exit(1);
        }
        return;
    }
    print_speedup_table(
        "Figure 12: reconvergence-predictor spawning vs compiler postdominators",
        &rows,
        &columns,
    );
    println!();
    println!(
        "(Paper: the dynamic scheme gets close to the compiler-aided system but lags\n\
         appreciably on crafty, mcf and twolf — warm-up effects plus reconvergences\n\
         the forward-analysis predictor cannot learn, §4.4.)"
    );
    report.emit();
    if polyflow_bench::sweep::report_failures(&grid) {
        std::process::exit(1);
    }
}
