//! Explains one run: where every cycle-slot went, per bucket and per
//! task, and where the speedup over the superscalar baseline came from.
//!
//! Usage: `explain <workload> [policy] [--json] [--events <path>]
//! [--top N] [--width N]`, or `explain --asm <path> [policy] ...` to
//! explain a runtime-loaded `.asm` workload instead of a bundled name.
//!
//! * `policy` — any of `superscalar`, `loop`, `loopFT`, `procFT`,
//!   `hammock`, `other`, `postdoms` (default `postdoms`).
//! * `--json` — emit the baseline and policy [`SimResult`]s (including
//!   the full cycle account) as JSON instead of tables.
//! * `--events <path>` — additionally stream the run's structured event
//!   trace as JSON Lines to `path`.
//! * `--top N` — rows in the per-task table (default 10).
//! * `--width N` — timeline chart width (default 100).
//!
//! The speedup decomposition is exact: the baseline accounts one slot per
//! cycle and the PolyFlow machine `contexts` slots per cycle, so
//! comparing the baseline's bucket cycles against the run's per-context
//! average makes the per-bucket deltas sum to exactly the cycles saved.

use polyflow_bench::{parse_policy, PreparedWorkload, POLICY_NAMES};
use polyflow_core::Policy;
use polyflow_sim::{timeline, Bucket, JsonlSink, NullSink, SimResult};

struct Options {
    workload: String,
    asm: Option<String>,
    policy: Policy,
    json: bool,
    events: Option<String>,
    top: usize,
    width: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: String::new(),
        asm: None,
        policy: Policy::Postdoms,
        json: false,
        events: None,
        top: 10,
        width: 100,
    };
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--" => {} // cargo-run argument separator
            "--help" | "-h" => {
                println!(
                    "explain — per-bucket cycle accounting for one run\n\n\
                     Usage: explain <workload|--asm path> [policy] [--json] \
                     [--events <path>] [--top N] [--width N]\n\n\
                     Policies: {POLICY_NAMES:?} (default postdoms)"
                );
                std::process::exit(0);
            }
            "--json" => opts.json = true,
            "--asm" => {
                opts.asm = Some(args.next().ok_or("--asm requires a path")?);
            }
            "--events" => {
                opts.events = Some(args.next().ok_or("--events requires a path")?);
            }
            "--top" => {
                let v = args.next().ok_or("--top requires a count")?;
                opts.top = v.parse().map_err(|_| format!("bad --top value `{v}`"))?;
            }
            "--width" => {
                let v = args.next().ok_or("--width requires a column count")?;
                opts.width = v.parse().map_err(|_| format!("bad --width value `{v}`"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    if opts.asm.is_none() {
        opts.workload = positional.next().ok_or("missing <workload>")?;
    }
    if let Some(p) = positional.next() {
        opts.policy = parse_policy(&p)
            .ok_or_else(|| format!("unknown policy `{p}`; one of {POLICY_NAMES:?}"))?;
    }
    Ok(opts)
}

fn main() {
    let mut opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("explain: {e}");
            eprintln!(
                "usage: explain <workload> [policy] [--json] [--events <path>] \
                 [--top N] [--width N]"
            );
            std::process::exit(2);
        }
    };
    let w = match &opts.asm {
        Some(path) => match polyflow_workloads::from_asm_file(path) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("explain: cannot load workload `{path}`: {e}");
                std::process::exit(1);
            }
        },
        None => match polyflow_workloads::by_name(&opts.workload) {
            Some(w) => w,
            None => {
                eprintln!(
                    "unknown workload `{}`; one of {:?}",
                    opts.workload,
                    polyflow_workloads::NAMES
                );
                std::process::exit(1);
            }
        },
    };
    let pw = match PreparedWorkload::try_prepare(w) {
        Ok(pw) => pw,
        Err(e) => {
            eprintln!("explain: {e}");
            std::process::exit(1);
        }
    };
    opts.workload = pw.name.clone();
    let baseline = pw.run_traced(Policy::None, &mut NullSink);
    let run = match &opts.events {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => std::io::BufWriter::new(f),
                Err(e) => {
                    eprintln!("explain: cannot create {path}: {e}");
                    std::process::exit(1);
                }
            };
            let mut sink = JsonlSink::new(file);
            let r = pw.run_traced(opts.policy, &mut sink);
            eprintln!("wrote {} events to {path}", sink.written());
            r
        }
        None => pw.run_traced(opts.policy, &mut NullSink),
    };

    if opts.json {
        print_json(&opts, &baseline, &run);
    } else {
        print_tables(&opts, &baseline, &run);
    }
}

fn print_json(opts: &Options, baseline: &SimResult, run: &SimResult) {
    println!("{{");
    println!("\"workload\": \"{}\",", opts.workload);
    println!("\"policy\": \"{}\",", opts.policy.name());
    println!(
        "\"speedup_percent\": {:.2},",
        run.speedup_percent_over(baseline)
    );
    print!("\"baseline\": {},", baseline.to_json());
    print!("\"run\": {}", run.to_json());
    println!("}}");
}

fn print_tables(opts: &Options, baseline: &SimResult, run: &SimResult) {
    let policy = opts.policy.name();
    println!(
        "== {} under {policy}: {} instrs ==",
        opts.workload, run.instructions
    );
    println!(
        "baseline (superscalar): {:>9} cycles  IPC {:.2}",
        baseline.cycles,
        baseline.ipc()
    );
    println!(
        "{policy:<22}: {:>9} cycles  IPC {:.2}  speedup {:+.1}%",
        run.cycles,
        run.ipc(),
        run.speedup_percent_over(baseline)
    );
    println!(
        "{} spawns, {} squashes, {} diverted, max {} live tasks",
        run.total_spawns(),
        run.squashes,
        run.diverted,
        run.max_live_tasks
    );

    // Bucket table: baseline cycles vs the run's per-context average.
    // Both columns sum to their run's cycle count, so the deltas sum to
    // exactly the cycles saved.
    let contexts = run.account.contexts.max(1);
    println!("\n-- cycle account (per context; deltas sum to cycles saved) --");
    println!(
        "{:<16} {:>12} {:>7} {:>12} {:>7} {:>12}",
        "bucket", "baseline", "%", policy, "%", "delta"
    );
    let mut rows: Vec<(Bucket, f64)> = Bucket::ALL
        .iter()
        .map(|&b| {
            let base = baseline.account.bucket(b) as f64 / baseline.account.contexts.max(1) as f64;
            let here = run.account.bucket(b) as f64 / contexts as f64;
            (b, base - here)
        })
        .collect();
    for &(b, delta) in &rows {
        println!(
            "{:<16} {:>12.0} {:>6.1}% {:>12.0} {:>6.1}% {:>+12.0}",
            b.label(),
            baseline.account.bucket(b) as f64 / baseline.account.contexts.max(1) as f64,
            baseline.account.percent(b),
            run.account.bucket(b) as f64 / contexts as f64,
            run.account.percent(b),
            delta
        );
    }
    let saved: f64 = rows.iter().map(|(_, d)| d).sum();
    println!(
        "{:<16} {:>12} {:>7} {:>12} {:>7} {:>+12.0}  (= {} - {})",
        "total", baseline.cycles, "", run.cycles, "", saved, baseline.cycles, run.cycles
    );

    // Top-N speedup sources.
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\n-- where did the speedup come from (top {}) --", opts.top);
    for (b, delta) in rows.iter().take(opts.top) {
        if *delta <= 0.0 {
            continue;
        }
        println!(
            "{:>+10.0} cycles  {}  ({:.1}% of baseline time)",
            delta,
            b.label(),
            100.0 * delta / baseline.cycles.max(1) as f64
        );
    }

    // Per-task accounts, largest first.
    let mut tasks: Vec<(usize, &polyflow_sim::TaskAccount)> =
        run.account.tasks.iter().enumerate().collect();
    tasks.sort_by_key(|(_, t)| std::cmp::Reverse(t.total()));
    println!(
        "\n-- per-task cycle accounts (top {} of {}) --",
        opts.top,
        tasks.len()
    );
    println!(
        "{:<5} {:<9} {:>9} {:>10} {:>10} {:>9}  dominant stall",
        "task", "kind", "spawn@", "slots", "retire", "stalled"
    );
    for (uid, t) in tasks.iter().take(opts.top) {
        let kind = t
            .kind
            .map(|k| k.to_string())
            .unwrap_or_else(|| "initial".into());
        let dominant = Bucket::ALL
            .iter()
            .filter(|b| b.is_stall())
            .max_by_key(|b| t.buckets[b.index()])
            .filter(|b| t.buckets[b.index()] > 0)
            .map(|b| format!("{} ({})", b.label(), t.buckets[b.index()]))
            .unwrap_or_else(|| "-".into());
        println!(
            "{uid:<5} {kind:<9} {:>9} {:>10} {:>10} {:>9}  {dominant}",
            t.spawn_cycle,
            t.total(),
            t.buckets[Bucket::Retire.index()],
            t.stalled()
        );
    }

    // The Figure-4 chart.
    println!("\n-- task timeline (Figure 4) --");
    print!("{}", timeline::render(run, opts.width));
    print!("{}", timeline::summary(run));
}
