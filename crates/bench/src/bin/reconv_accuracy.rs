//! Measures how well the dynamic reconvergence predictor reconstructs
//! compiler-computed immediate postdominators (the question behind §4.4
//! and Figure 12): per benchmark, the fraction of conditional-branch and
//! indirect-jump spawn points whose reconvergence is predicted exactly,
//! predicted differently, or not predicted at all — weighted statically
//! and dynamically.
//!
//! Usage: `reconv_accuracy [--jobs N] [workload ...]` (default: all 12).

use polyflow_bench::{cli, pool, prepare_selection, PreparedWorkload};
use polyflow_core::SpawnKind;
use polyflow_reconv::{train_on_trace, ReconvConfig};
use std::collections::HashMap;

fn accuracy_row(w: &PreparedWorkload) -> String {
    // Ground truth: branch/jr spawn points from the static analysis.
    let truth: HashMap<_, _> = w
        .analysis
        .candidates()
        .iter()
        .filter(|sp| {
            matches!(
                sp.kind,
                SpawnKind::Hammock | SpawnKind::LoopFallThrough | SpawnKind::Other
            )
        })
        .map(|sp| (sp.trigger, sp.target))
        .collect();
    let predictor = train_on_trace(w.trace(), ReconvConfig::default());
    // Dynamic weights: how often each trigger executes.
    let pc_index = w.pc_index();

    let (mut exact, mut wrong, mut none) = (0usize, 0usize, 0usize);
    let (mut dyn_exact, mut dyn_total) = (0u64, 0u64);
    for (&trigger, &target) in &truth {
        let weight = pc_index.count(trigger) as u64;
        dyn_total += weight;
        match predictor.predict(trigger) {
            Some(p) if p == target => {
                exact += 1;
                dyn_exact += weight;
            }
            Some(_) => wrong += 1,
            None => none += 1,
        }
    }
    let total = truth.len().max(1);
    format!(
        "{:<12} {:>7} {:>7} {:>7} {:>8.1}% {:>13.1}%",
        w.name,
        exact,
        wrong,
        none,
        100.0 * exact as f64 / total as f64,
        100.0 * dyn_exact as f64 / dyn_total.max(1) as f64
    )
}

fn main() {
    const SPEC: cli::Spec = cli::Spec {
        name: "reconv_accuracy",
        about: "Measures how well the dynamic reconvergence predictor \
                reconstructs compiler-computed immediate postdominators",
        flags: &[cli::JOBS, cli::ASM],
        takes_workloads: true,
    };
    let workloads = prepare_selection(&cli::parse(&SPEC));
    println!("== Reconvergence-predictor accuracy vs immediate postdominators ==");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>9} {:>14}",
        "benchmark", "exact", "wrong", "none", "static%", "dyn-weighted%"
    );
    // Each benchmark's predictor training replays its whole trace; fan
    // the rows out across the pool and print them in order.
    let refs: Vec<&PreparedWorkload> = workloads.iter().collect();
    let rows = pool::parallel_map(refs, pool::resolve_jobs(), |_, w| accuracy_row(w));
    for row in rows {
        println!("{row}");
    }
    println!();
    println!(
        "(Paper §4.4: \"the reconvergence predictor approximates the immediate\n\
         postdominator information with reasonable accuracy\"; the misses are\n\
         warm-up plus reconvergences that a forward analysis cannot identify —\n\
         chiefly loop-exit branches whose fall-through only commits long after\n\
         the branch.)"
    );
}
