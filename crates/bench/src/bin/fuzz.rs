//! Differential fuzzing / fault-injection driver (see
//! `polyflow_bench::fuzz`). Hermetic and reproducible: every case derives
//! from an explicit [`SplitMix64`] seed, so a reported failure replays
//! with `fuzz --seed <S> [--faults]`.
//!
//! Usage: `fuzz [--seeds N] [--seed S] [--faults] [--shapes N] [--replay FILE]`
//!
//! * `--seeds N`  — number of consecutive seeds to run (default 64).
//! * `--seed S`   — first seed, decimal or 0x-hex (default 1).
//! * `--faults`   — additionally apply every trace-corruption operator
//!   to each seed's trace and require typed errors, never panics.
//! * `--shapes N` — instead run the CFG-shape-controlled dataflow mode:
//!   N seeds × every shape, differentially checking the SCC-parallel
//!   solver against the sequential oracle at jobs 1/2/4.
//! * `--replay F` — replay a regression corpus file instead
//!   (`<seed> <differential|faults|shape:<label>>` per line) and ignore
//!   `--seeds`.
//!
//! Exits nonzero if any seed fails; each failure prints with its seed.
//!
//! [`SplitMix64`]: polyflow_isa::rng::SplitMix64

use polyflow_bench::fuzz::{fuzz_range, fuzz_shapes, parse_seed, replay_corpus, FuzzReport};

fn main() {
    let mut seeds: u64 = 64;
    let mut seed0: u64 = 1;
    let mut faults = false;
    let mut shapes: Option<u64> = None;
    let mut replay: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => match args.next().and_then(|v| parse_seed(&v)) {
                Some(n) => seeds = n,
                None => usage("--seeds needs a count"),
            },
            "--seed" => match args.next().and_then(|v| parse_seed(&v)) {
                Some(s) => seed0 = s,
                None => usage("--seed needs a value"),
            },
            "--faults" => faults = true,
            "--shapes" => match args.next().and_then(|v| parse_seed(&v)) {
                Some(n) => shapes = Some(n),
                None => usage("--shapes needs a count"),
            },
            "--help" | "-h" => {
                println!(
                    "fuzz — differential fuzzing / fault-injection driver\n\n\
                     Usage: fuzz [--seeds N] [--seed S] [--faults] [--shapes N] [--replay FILE]"
                );
                std::process::exit(0);
            }
            "--replay" => match args.next() {
                Some(p) => replay = Some(p),
                None => usage("--replay needs a file"),
            },
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let mode = match (&replay, &shapes, faults) {
        (Some(_), _, _) => "corpus replay",
        (None, Some(_), _) => "cfg shapes vs oracle",
        (None, None, true) => "differential + faults",
        (None, None, false) => "differential",
    };
    let report: FuzzReport = if let Some(path) = replay {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read corpus {path}: {e}")));
        replay_corpus(&text).unwrap_or_else(|e| fail(&format!("corpus {path}: {e}")))
    } else if let Some(n) = shapes {
        fuzz_shapes(seed0, n)
    } else {
        fuzz_range(seed0, seeds, faults)
    };

    for f in &report.failures {
        eprintln!("[fuzz] FAIL {f}");
    }
    println!(
        "fuzz: {} seed{} run ({mode}), {} failure{}",
        report.seeds_run,
        if report.seeds_run == 1 { "" } else { "s" },
        report.failures.len(),
        if report.failures.len() == 1 { "" } else { "s" },
    );
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    fail(&format!(
        "{msg}\nusage: fuzz [--seeds N] [--seed S] [--faults] [--shapes N] [--replay FILE]"
    ))
}

fn fail(msg: &str) -> ! {
    eprintln!("fuzz: {msg}");
    std::process::exit(2);
}
