//! Prints the simulated machine configuration — the paper's Figure 8
//! pipeline-parameter table — as actually used by the simulator.

use polyflow_sim::MachineConfig;

const SPEC: polyflow_bench::cli::Spec = polyflow_bench::cli::Spec {
    name: "fig08_config",
    about: "Prints the simulated machine configuration (the paper's \
            Figure 8 pipeline-parameter table)",
    flags: &[],
    takes_workloads: false,
};

fn main() {
    polyflow_bench::cli::parse(&SPEC);
    let c = MachineConfig::hpca07();
    println!("== Figure 8: pipeline parameters ==");
    let rows: Vec<(&str, String)> = vec![
        ("Pipeline Width", format!("{} instrs/cycle", c.width)),
        (
            "Branch Predictor",
            format!(
                "{} Kbit gshare, {} bits of global history",
                (1usize << c.gshare_index_bits) * 2 / 1024,
                c.gshare_history_bits
            ),
        ),
        (
            "Misprediction Penalty",
            format!("At least {} cycles", c.misprediction_penalty),
        ),
        (
            "Reorder Buffer",
            format!("{} entries, dynamically shared", c.rob_entries),
        ),
        (
            "Scheduler",
            format!("{} entries, dynamically shared", c.scheduler_entries),
        ),
        (
            "Functional Units",
            format!("{} identical general purpose units", c.fn_units),
        ),
        (
            "L1 I-Cache",
            format!(
                "{}Kbytes, {}-way set assoc., {} byte lines, {} cycle miss",
                c.l1i.size_bytes / 1024,
                c.l1i.ways,
                c.l1i.line_bytes,
                c.l1_miss_latency
            ),
        ),
        (
            "L1 D-Cache",
            format!(
                "{}Kbytes, {}-way set assoc., {} byte lines, {} cycle miss",
                c.l1d.size_bytes / 1024,
                c.l1d.ways,
                c.l1d.line_bytes,
                c.l1_miss_latency
            ),
        ),
        (
            "L2 Cache",
            format!(
                "{}Kbytes, {}-way set assoc., {} byte lines, {} cycle miss",
                c.l2.size_bytes / 1024,
                c.l2.ways,
                c.l2.line_bytes,
                c.l2_miss_latency
            ),
        ),
        (
            "Divert Queue",
            format!("{} entries, dynamically shared", c.divert_entries),
        ),
        ("Tasks", format!("{}", c.max_tasks)),
    ];
    for (k, v) in rows {
        println!("{k:<24} {v}");
    }
    println!();
    println!("Model-specific parameters (see DESIGN.md):");
    println!(
        "  max spawn distance       {} instructions",
        c.max_spawn_distance
    );
    println!(
        "  min spawn distance       {} instructions",
        c.min_spawn_distance
    );
    println!(
        "  divert release delay     {} cycles",
        c.divert_release_delay
    );
    println!(
        "  spawn overhead           {} cycles",
        c.spawn_overhead_cycles
    );
    println!("  profitability feedback   {}", c.profitability_feedback);
}
