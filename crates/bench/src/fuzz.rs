//! Differential fuzzing and fault injection for the whole pipeline.
//!
//! Two modes, both driven by a fixed-seed [`SplitMix64`] stream so every
//! failure reproduces from its seed alone (hermetic — no system entropy):
//!
//! * **Differential** ([`fuzz_one`]): generate a random-but-well-formed
//!   structured program, require the static verifier to accept it, then
//!   cross-check every independent path through the pipeline — batch
//!   interpretation vs. single-stepping (architectural state and trace
//!   must agree exactly), assembler round-trip (`to_asm` →
//!   `parse_program` → identical trace), trace validation, and the cycle
//!   model under both the superscalar baseline and `postdoms` PolyFlow
//!   configurations (full retirement and the
//!   `sum(buckets) == cycles × contexts` ledger invariant).
//!
//! * **Fault injection** ([`Fault`], [`inject_and_check`]): corrupt the
//!   known-good trace with one operator per [`TraceError`] class — bit
//!   flips on successor PCs, dropped/bogus effective addresses, flipped
//!   taken bits, mid-trace halts, tail truncation, out-of-program PCs,
//!   and instruction substitution — and assert the corruption surfaces
//!   as the *expected* structured error from the appropriate validation
//!   tier, and that nothing panics.
//!
//! * **CFG shapes** ([`fuzz_shape_one`]): generate a dataflow problem
//!   whose condensation targets a chosen SCC count/size distribution —
//!   chains, diamond ladders, irreducible two-entry loops, giant single
//!   SCCs, wide DAGs — and differentially check the SCC-parallel
//!   `solve_parallel` against the sequential oracle at jobs 1/2/4
//!   (corpus mode `shape:<label>`).
//!
//! The `fuzz` binary drives all modes; `corpus/fuzz_corpus.txt` is the
//! checked-in regression corpus replayed by CI and the `fuzz_replay`
//! integration test.

use polyflow_core::{verify, Policy, ProgramAnalysis, VerifyOptions};
use polyflow_dataflow::oracle::{self, CfgShape};
use polyflow_isa::rng::SplitMix64;
use polyflow_isa::{
    execute_window, parse_program, to_asm, AluOp, Cond, Inst, InstClass, Interpreter, Pc, Program,
    ProgramBuilder, Reg, Trace, TraceError,
};
use polyflow_sim::{
    try_simulate, MachineConfig, NoSpawn, PreparedTrace, SimError, StaticSpawnSource,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Interpreter step budget per generated program (every generated
/// program halts well inside it).
pub const WINDOW: u64 = 120_000;

/// Cycle budget for the fuzz simulations: generous for any `WINDOW`-sized
/// trace, but a hard stop if the machine ever livelocks on a generated
/// program.
pub const FUZZ_MAX_CYCLES: u64 = 4_000_000;

/// Distribution knobs for the structured-program generator: relative
/// statement weights plus structural bounds. [`random_program`] draws
/// from [`GenDist::mixed`]; the `wsweep` mode sweeps every named bucket
/// in [`GenDist::BUCKETS`] to measure how speedup and
/// reconvergence-predictor accuracy respond to control-flow character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenDist {
    /// Weight of straight-line ALU runs.
    pub work: u32,
    /// Weight of data-dependent if-else hammocks (branch density).
    pub hammock: u32,
    /// Weight of counted inner loops.
    pub looped: u32,
    /// Of 16 generated loops, how many carry a second nested level
    /// (loop depth 2).
    pub nest_rate: u32,
    /// Weight of call sites (fanned out across `callees` leaves).
    pub call: u32,
    /// Distinct leaf callees call sites target (1..=4).
    pub callees: u32,
    /// Weight of bounded two-entry loop regions — cycles a forward pass
    /// can enter at either of two blocks, i.e. irreducible control flow.
    pub irreducible: u32,
    /// Weight of memory statements: shared read-modify-write and
    /// unrolled array-walk reductions.
    pub memory: u32,
    /// Statement-list length bounds (min, max) past the fixed prologue.
    pub stmts: (u32, u32),
}

impl GenDist {
    /// A bit of everything — the default differential-fuzzing diet.
    /// Irreducible regions are excluded here: the fuzz harness demands
    /// verify-clean programs and the verifier (correctly) diagnoses
    /// irreducible loops. The dedicated [`GenDist::irreducible`] bucket
    /// stresses the simulator with them instead.
    pub const fn mixed() -> GenDist {
        GenDist {
            work: 3,
            hammock: 3,
            looped: 2,
            nest_rate: 4,
            call: 2,
            callees: 2,
            irreducible: 0,
            memory: 3,
            stmts: (1, 6),
        }
    }

    /// Dense data-dependent branching (crafty-like).
    pub const fn branchy() -> GenDist {
        GenDist {
            work: 1,
            hammock: 8,
            looped: 1,
            nest_rate: 0,
            call: 1,
            callees: 1,
            irreducible: 0,
            memory: 1,
            stmts: (4, 10),
        }
    }

    /// Deep counted loops with frequent nesting (gzip/bzip2-like).
    pub const fn loopy() -> GenDist {
        GenDist {
            work: 1,
            hammock: 1,
            looped: 8,
            nest_rate: 10,
            call: 0,
            callees: 1,
            irreducible: 0,
            memory: 1,
            stmts: (3, 8),
        }
    }

    /// Call-heavy with wide leaf fan-out (vortex/gap-like).
    pub const fn calls() -> GenDist {
        GenDist {
            work: 1,
            hammock: 1,
            looped: 1,
            nest_rate: 0,
            call: 8,
            callees: 4,
            irreducible: 0,
            memory: 1,
            stmts: (4, 10),
        }
    }

    /// Irreducible-region-heavy: stresses every analysis that assumes
    /// reducible loops.
    pub const fn irreducible() -> GenDist {
        GenDist {
            work: 1,
            hammock: 1,
            looped: 1,
            nest_rate: 0,
            call: 0,
            callees: 1,
            irreducible: 6,
            memory: 1,
            stmts: (2, 6),
        }
    }

    /// Memory-op-dominated: shared traffic plus array reductions
    /// (mcf-like).
    pub const fn memory() -> GenDist {
        GenDist {
            work: 1,
            hammock: 1,
            looped: 1,
            nest_rate: 0,
            call: 0,
            callees: 1,
            irreducible: 0,
            memory: 8,
            stmts: (4, 10),
        }
    }

    /// The named distribution buckets the `wsweep` mode reports by.
    pub const BUCKETS: [(&'static str, GenDist); 6] = [
        ("branchy", GenDist::branchy()),
        ("loopy", GenDist::loopy()),
        ("calls", GenDist::calls()),
        ("irreducible", GenDist::irreducible()),
        ("memory", GenDist::memory()),
        ("mixed", GenDist::mixed()),
    ];
}

/// One structured statement of a generated program (mirrors the shapes
/// the paper's heuristics target: straight-line work, hammocks, counted
/// loops, calls, irreducible regions, and memory traffic).
#[derive(Debug, Clone, Copy)]
enum Stmt {
    Work(u8),
    Hammock(u8, u8),
    Loop { iters: u8, body: u8, nested: bool },
    Call(u8),
    Shared,
    ArrayWalk(u8),
    TwoEntryLoop { iters: u8 },
}

fn random_stmt(rng: &mut SplitMix64, d: &GenDist) -> Stmt {
    let total = d.work + d.hammock + d.looped + d.call + d.irreducible + d.memory;
    if total == 0 {
        return Stmt::Work(1 + rng.below(7) as u8);
    }
    let mut roll = rng.below(total as u64) as u32;
    let mut take = |w: u32| {
        if roll < w {
            true
        } else {
            roll -= w;
            false
        }
    };
    if take(d.work) {
        Stmt::Work(1 + rng.below(7) as u8)
    } else if take(d.hammock) {
        Stmt::Hammock(1 + rng.below(5) as u8, 1 + rng.below(5) as u8)
    } else if take(d.looped) {
        Stmt::Loop {
            iters: 1 + rng.below(4) as u8,
            body: 1 + rng.below(4) as u8,
            nested: rng.below(16) < d.nest_rate as u64,
        }
    } else if take(d.call) {
        Stmt::Call(rng.below(d.callees.clamp(1, 4) as u64) as u8)
    } else if take(d.irreducible) {
        Stmt::TwoEntryLoop {
            iters: 2 + rng.below(5) as u8,
        }
    } else if rng.below(2) == 0 {
        Stmt::Shared
    } else {
        Stmt::ArrayWalk(1 + rng.below(7) as u8)
    }
}

/// [`random_program_with`] under the [`GenDist::mixed`] distribution —
/// the seed-only entry point the differential corpus replays.
pub fn random_program(seed: u64) -> Program {
    random_program_with(seed, &GenDist::mixed())
}

/// Generates the seed's program under `dist`: a bounded outer loop
/// around a weighted statement list whose fixed prologue always contains
/// one load/store pair, one hammock (an unconditional `jmp`), and one
/// call/return pair — so every fault-injection operator has an
/// applicable site no matter how the weights are skewed.
pub fn random_program_with(seed: u64, dist: &GenDist) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut stmts = vec![Stmt::Shared, Stmt::Hammock(2, 3), Stmt::Call(0)];
    let (lo, hi) = dist.stmts;
    let extra = lo + rng.index((hi.max(lo) - lo + 1) as usize) as u32;
    for _ in 0..extra {
        stmts.push(random_stmt(&mut rng, dist));
    }
    let outer = rng.range_i64(4, 24);
    let callees = dist.callees.clamp(1, 4) as usize;
    // Only leaves with a call site are emitted (a function nothing calls
    // would be dead code, which the verifier rightly rejects).
    let mut used = [false; 4];
    for s in &stmts {
        if let Stmt::Call(k) = *s {
            used[k as usize % callees] = true;
        }
    }

    let mut b = ProgramBuilder::new();
    let data = b.alloc_data(&[0xABCD_1234_5678_9EFF]);
    let shared = b.alloc_data(&[1]);
    let array: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
    let array = b.alloc_data(&array);
    b.begin_function("main");
    let top = b.fresh_label("outer");
    b.li(Reg::R9, 0);
    b.li(Reg::R20, data as i64);
    b.li(Reg::R21, shared as i64);
    b.li(Reg::R22, array as i64);
    b.bind_label(top);
    b.load(Reg::R11, Reg::R20, 0);
    b.alu(AluOp::Xor, Reg::R11, Reg::R11, Reg::R9);
    for (si, s) in stmts.iter().enumerate() {
        match *s {
            Stmt::Work(n) => {
                for _ in 0..n {
                    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
                }
            }
            Stmt::Hammock(t, e) => {
                let els = b.fresh_label("els");
                let join = b.fresh_label("join");
                b.alui(AluOp::Srl, Reg::R13, Reg::R11, (si % 48) as i64);
                b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
                b.br_imm(Cond::Eq, Reg::R13, 0, els);
                for _ in 0..t {
                    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                }
                b.jmp(join);
                b.bind_label(els);
                for _ in 0..e {
                    b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
                }
                b.bind_label(join);
            }
            Stmt::Loop {
                iters,
                body,
                nested,
            } => {
                let ltop = b.fresh_label("ltop");
                b.li(Reg::R5, 0);
                b.bind_label(ltop);
                for _ in 0..body {
                    b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
                }
                if nested {
                    let itop = b.fresh_label("itop");
                    b.li(Reg::R14, 0);
                    b.bind_label(itop);
                    b.alui(AluOp::Add, Reg::R15, Reg::R15, 1);
                    b.alui(AluOp::Add, Reg::R14, Reg::R14, 1);
                    b.br_imm(Cond::Lt, Reg::R14, body as i64, itop);
                }
                b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
                b.br_imm(Cond::Lt, Reg::R5, iters as i64, ltop);
            }
            Stmt::Call(k) => {
                b.alui(AluOp::Add, Reg::SP, Reg::SP, -8);
                b.store(Reg::RA, Reg::SP, 0);
                b.call(&leaf_name(k as usize % callees));
                b.load(Reg::RA, Reg::SP, 0);
                b.alui(AluOp::Add, Reg::SP, Reg::SP, 8);
            }
            Stmt::Shared => {
                b.load(Reg::R7, Reg::R21, 0);
                b.alui(AluOp::Mul, Reg::R7, Reg::R7, 3);
                b.store(Reg::R7, Reg::R21, 0);
            }
            Stmt::ArrayWalk(n) => {
                for i in 0..n.min(8) {
                    b.load(Reg::R17, Reg::R22, 8 * i as i64);
                    b.alu(AluOp::Add, Reg::R18, Reg::R18, Reg::R17);
                }
                b.store(Reg::R18, Reg::R22, 0);
            }
            Stmt::TwoEntryLoop { iters } => {
                // A cycle with two entries: the fall-through edge enters
                // at `l1`, the branch enters mid-cycle at `l2`, and the
                // counted back edge returns to `l1` — irreducible, but
                // bounded by the counter either way.
                let l1 = b.fresh_label("ie1");
                let l2 = b.fresh_label("ie2");
                b.li(Reg::R23, 0);
                b.alui(AluOp::Srl, Reg::R13, Reg::R11, (si % 48) as i64);
                b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
                b.br_imm(Cond::Eq, Reg::R13, 0, l2);
                b.bind_label(l1);
                b.alui(AluOp::Add, Reg::R24, Reg::R24, 1);
                b.bind_label(l2);
                b.alui(AluOp::Add, Reg::R25, Reg::R25, 1);
                b.alui(AluOp::Add, Reg::R23, Reg::R23, 1);
                b.br_imm(Cond::Lt, Reg::R23, iters as i64, l1);
            }
        }
    }
    b.alui(AluOp::Add, Reg::R9, Reg::R9, 1);
    b.br_imm(Cond::Lt, Reg::R9, outer, top);
    b.halt();
    b.end_function();
    for (k, _) in used.iter().enumerate().filter(|(_, u)| **u) {
        b.begin_function(&leaf_name(k));
        b.alui(AluOp::Add, Reg::R26, Reg::R26, 1);
        b.alui(AluOp::Mul, Reg::R26, Reg::R26, 5 + 2 * k as i64);
        b.ret();
        b.end_function();
    }
    b.build().expect("generated program is structurally valid")
}

fn leaf_name(k: usize) -> String {
    if k == 0 {
        "leaf".to_string()
    } else {
        format!("leaf{k}")
    }
}

/// One trace-corruption operator, one per [`TraceError`] class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Rewrite an entry's `next_pc` off the actual successor.
    Discontinuity,
    /// Drop the effective address of a load or store.
    DropMemAddr,
    /// Attach a bogus effective address to an ALU entry.
    BogusMemAddr,
    /// Mark a non-control entry taken.
    TakenAlu,
    /// Mark an unconditional transfer not-taken.
    NotTakenJump,
    /// Overwrite a mid-trace entry's instruction with `halt`.
    MidHalt,
    /// Drop the final (halt) entry.
    TruncateTail,
    /// Point the first entry's `pc` outside the program text.
    BogusPc,
    /// Perturb an immediate so the recorded instruction no longer
    /// matches the program text (structurally invisible).
    InstSwap,
}

impl Fault {
    /// Every operator, in a fixed order (the fault mode applies them
    /// all, so coverage does not depend on the seed).
    pub const ALL: [Fault; 9] = [
        Fault::Discontinuity,
        Fault::DropMemAddr,
        Fault::BogusMemAddr,
        Fault::TakenAlu,
        Fault::NotTakenJump,
        Fault::MidHalt,
        Fault::TruncateTail,
        Fault::BogusPc,
        Fault::InstSwap,
    ];
}

/// Picks a random index of `trace` satisfying `pred`, or None.
fn pick_index(
    trace: &Trace,
    rng: &mut SplitMix64,
    pred: impl Fn(usize, InstClass) -> bool,
) -> Option<usize> {
    let hits: Vec<usize> = trace
        .entries()
        .iter()
        .enumerate()
        .filter(|(i, e)| pred(*i, e.class()))
        .map(|(i, _)| i)
        .collect();
    if hits.is_empty() {
        None
    } else {
        Some(hits[rng.index(hits.len())])
    }
}

/// Applies `fault` to `trace`, returning the corrupted index (None if the
/// trace offers no applicable site — impossible for [`random_program`]
/// traces except in principle).
fn inject(
    trace: &mut Trace,
    fault: Fault,
    program: &Program,
    rng: &mut SplitMix64,
) -> Option<usize> {
    let len = trace.len();
    if len < 3 {
        return None;
    }
    match fault {
        Fault::Discontinuity => {
            // Not the final entry: the chain check needs a successor.
            let i = rng.index(len - 1);
            let actual = trace.entry(i + 1).pc;
            trace.entries_mut()[i].next_pc = actual.next();
            Some(i)
        }
        Fault::DropMemAddr => {
            let i = pick_index(trace, rng, |_, c| {
                matches!(c, InstClass::Load | InstClass::Store)
            })?;
            trace.entries_mut()[i].mem_addr = None;
            Some(i)
        }
        Fault::BogusMemAddr => {
            let i = pick_index(trace, rng, |_, c| c == InstClass::Alu)?;
            trace.entries_mut()[i].mem_addr = Some(rng.next_u64());
            Some(i)
        }
        Fault::TakenAlu => {
            let i = pick_index(trace, rng, |_, c| c == InstClass::Alu)?;
            trace.entries_mut()[i].taken = true;
            Some(i)
        }
        Fault::NotTakenJump => {
            let i = pick_index(trace, rng, |_, c| {
                matches!(c, InstClass::Jump | InstClass::Call | InstClass::Ret)
            })?;
            trace.entries_mut()[i].taken = false;
            Some(i)
        }
        Fault::MidHalt => {
            // An ALU entry strictly before the end becomes a halt; the
            // structural pass flags it before any class-specific check.
            let i = pick_index(trace, rng, |i, c| c == InstClass::Alu && i + 1 < len)?;
            trace.entries_mut()[i].inst = Inst::Halt;
            Some(i)
        }
        Fault::TruncateTail => {
            trace.truncate(len - 1);
            Some(len - 1)
        }
        Fault::BogusPc => {
            // Entry 0: its pc participates in no predecessor's chain
            // check, so the corruption is structurally invisible and only
            // the program-relative tier can catch it.
            trace.entries_mut()[0].pc = Pc::new(program.len() as u32 + 100);
            Some(0)
        }
        Fault::InstSwap => {
            let i = pick_index(trace, rng, |_, c| c == InstClass::Alu)?;
            let e = &mut trace.entries_mut()[i];
            e.inst = match e.inst {
                Inst::AluI { op, rd, rs, imm } => Inst::AluI {
                    op,
                    rd,
                    rs,
                    imm: imm.wrapping_add(1),
                },
                Inst::Li { rd, imm } => Inst::Li {
                    rd,
                    imm: imm.wrapping_add(1),
                },
                Inst::Alu { op, rd, rs, rt } => Inst::AluI {
                    op,
                    rd,
                    rs,
                    imm: rt.index() as i64,
                },
                other => other,
            };
            Some(i)
        }
    }
}

/// Corrupts a clone of `trace` with `fault` and checks that the
/// corruption surfaces as the expected structured error — and that no
/// tier of the pipeline (validation, trace preparation, simulation)
/// panics on the corrupted input.
pub fn inject_and_check(
    program: &Program,
    trace: &Trace,
    fault: Fault,
    rng: &mut SplitMix64,
) -> Result<(), String> {
    let mut corrupted = trace.clone();
    let Some(idx) = inject(&mut corrupted, fault, program, rng) else {
        return Err(format!("{fault:?}: no applicable site in the trace"));
    };

    let fail = |msg: String| Err(format!("{fault:?} at entry {idx}: {msg}"));

    // Tier 1: the targeted validator must report the expected class.
    let structural = corrupted.validate();
    match fault {
        Fault::Discontinuity => {
            if !matches!(structural, Err(TraceError::Discontinuity { index, .. }) if index == idx) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::DropMemAddr => {
            if structural != Err(TraceError::MissingMemAddr { index: idx }) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::BogusMemAddr => {
            if structural != Err(TraceError::UnexpectedMemAddr { index: idx }) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::TakenAlu => {
            if structural != Err(TraceError::TakenNonControl { index: idx }) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::NotTakenJump => {
            if structural != Err(TraceError::NotTakenUnconditional { index: idx }) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::MidHalt => {
            if structural != Err(TraceError::HaltNotLast { index: idx }) {
                return fail(format!("validate() returned {structural:?}"));
            }
        }
        Fault::TruncateTail => {
            // A truncated trace is a legal *window*; only the
            // completeness tier flags it.
            if structural.is_err() {
                return fail(format!("validate() returned {structural:?}"));
            }
            match corrupted.validate_complete() {
                Err(TraceError::Truncated { .. }) => {}
                other => return fail(format!("validate_complete() returned {other:?}")),
            }
        }
        Fault::BogusPc => {
            if structural.is_err() {
                return fail(format!("validate() returned {structural:?}"));
            }
            match corrupted.validate_against(program) {
                Err(TraceError::PcOutOfProgram { index, .. }) if index == idx => {}
                other => return fail(format!("validate_against() returned {other:?}")),
            }
        }
        Fault::InstSwap => {
            if structural.is_err() {
                return fail(format!("validate() returned {structural:?}"));
            }
            match corrupted.validate_against(program) {
                Err(TraceError::InstMismatch { index, .. }) if index == idx => {}
                other => return fail(format!("validate_against() returned {other:?}")),
            }
        }
    }

    // Tier 2: feeding the corrupted trace to the simulator must never
    // panic; structurally-detectable corruption must come back as
    // `SimError::MalformedTrace`.
    let structurally_bad = structural.is_err();
    let analysis = ProgramAnalysis::analyze(program);
    for multitask in [false, true] {
        let mut cfg = if multitask {
            MachineConfig::hpca07()
        } else {
            MachineConfig::superscalar()
        };
        cfg.max_cycles = FUZZ_MAX_CYCLES;
        let table = analysis.spawn_table(Policy::Postdoms);
        let sim = catch_unwind(AssertUnwindSafe(|| {
            let prepared = PreparedTrace::new(&corrupted, &cfg);
            if multitask {
                let mut src = StaticSpawnSource::new(table.clone());
                try_simulate(&prepared, &cfg, &mut src)
            } else {
                try_simulate(&prepared, &cfg, &mut NoSpawn)
            }
        }));
        match sim {
            Err(_) => return fail("simulator panicked on corrupted trace".to_string()),
            Ok(Err(SimError::MalformedTrace(_))) if structurally_bad => {}
            Ok(other) if structurally_bad => {
                return fail(format!(
                    "expected SimError::MalformedTrace, got {:?}",
                    other.map(|r| r.cycles)
                ));
            }
            // Structurally-clean corruption (truncation, program-relative
            // faults) may simulate; it just must not panic.
            Ok(_) => {}
        }
    }
    Ok(())
}

/// Runs the full differential check for one seed; in `faults` mode,
/// additionally applies every fault operator to the seed's trace.
/// Returns a description of the first divergence found.
pub fn fuzz_one(seed: u64, faults: bool) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| fuzz_one_inner(seed, faults)))
        .unwrap_or_else(|p| {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(format!("panicked: {msg}"))
        })
        .map_err(|e| format!("seed {seed:#x}: {e}"))
}

fn fuzz_one_inner(seed: u64, faults: bool) -> Result<(), String> {
    let program = random_program(seed);

    // The static verifier must accept every generated program.
    let analysis = ProgramAnalysis::analyze(&program);
    let report = verify(&program, &analysis, &VerifyOptions::default());
    if !report.is_clean() {
        return Err(format!(
            "verifier rejected generated program: {} diagnostics",
            report.diagnostics.len()
        ));
    }

    // Differential 1: batch run vs. single-stepping. Architectural state
    // and the retirement trace must agree exactly.
    let mut batch = Interpreter::new(&program);
    let run = batch
        .run(WINDOW)
        .map_err(|e| format!("batch interpreter failed: {e}"))?;
    if !run.halted {
        return Err(format!("program did not halt in {WINDOW} steps"));
    }
    let mut stepper = Interpreter::new(&program);
    let mut stepped = Trace::new();
    while !stepper.is_halted() {
        match stepper.step() {
            Ok(Some(e)) => stepped.push(e),
            Ok(None) => break,
            Err(e) => return Err(format!("stepping interpreter failed: {e}")),
        }
        if stepped.len() as u64 > WINDOW {
            return Err("stepping interpreter overran the window".to_string());
        }
    }
    if run.trace.entries() != stepped.entries() {
        return Err(format!(
            "batch and stepped traces diverge (len {} vs {})",
            run.trace.len(),
            stepped.len()
        ));
    }
    for r in Reg::ALL {
        if batch.reg(r) != stepper.reg(r) {
            return Err(format!(
                "architectural divergence at {r:?}: {:#x} vs {:#x}",
                batch.reg(r),
                stepper.reg(r)
            ));
        }
    }
    for e in run.trace.entries() {
        if let Some(addr) = e.mem_addr {
            if batch.memory().read(addr) != stepper.memory().read(addr) {
                return Err(format!("memory divergence at address {addr:#x}"));
            }
        }
    }

    // Differential 2: the assembler round-trip is a byte-identical
    // *program* identity (every instruction, function, jump table, data
    // word, and the name), not merely trace-preserving.
    let text = to_asm(&program);
    let reparsed = parse_program(&text).map_err(|e| format!("round-trip parse failed: {e}"))?;
    if reparsed != program {
        return Err("assembler round-trip changed the program".to_string());
    }
    let rerun = execute_window(&reparsed, WINDOW)
        .map_err(|e| format!("round-tripped program failed: {e}"))?;
    if rerun.trace.entries() != run.trace.entries() {
        return Err("assembler round-trip changed the trace".to_string());
    }

    // The emitted trace passes every validation tier.
    run.trace
        .validate_against(&program)
        .map_err(|e| format!("emitted trace failed validation: {e}"))?;
    run.trace
        .validate_complete()
        .map_err(|e| format!("emitted trace failed completeness: {e}"))?;

    // Cycle model: full retirement and a balanced ledger under both
    // machine geometries.
    for multitask in [false, true] {
        let mut cfg = if multitask {
            MachineConfig::hpca07()
        } else {
            MachineConfig::superscalar()
        };
        cfg.max_cycles = FUZZ_MAX_CYCLES;
        let prepared = PreparedTrace::new(&run.trace, &cfg);
        let label = if multitask { "postdoms" } else { "baseline" };
        let result = if multitask {
            let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
            try_simulate(&prepared, &cfg, &mut src)
        } else {
            try_simulate(&prepared, &cfg, &mut NoSpawn)
        }
        .map_err(|e| format!("{label} simulation failed: {e}"))?;
        if result.instructions as usize != run.trace.len() {
            return Err(format!(
                "{label}: retired {} of {} instructions",
                result.instructions,
                run.trace.len()
            ));
        }
        if result.account.total_slots() != result.cycles * cfg.contexts() {
            return Err(format!(
                "{label}: ledger imbalance: {} slots != {} cycles × {} contexts",
                result.account.total_slots(),
                result.cycles,
                cfg.contexts()
            ));
        }
    }

    // Fault mode: every operator, every seed.
    if faults {
        let mut rng = SplitMix64::new(seed ^ 0xFA17);
        for fault in Fault::ALL {
            inject_and_check(&program, &run.trace, fault, &mut rng)?;
        }
    }
    Ok(())
}

/// Outcome of a multi-seed fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// One line per failing seed (already prefixed with the seed).
    pub failures: Vec<String>,
}

/// Fuzzes seeds `seed0 .. seed0 + count`, collecting every failure.
pub fn fuzz_range(seed0: u64, count: u64, faults: bool) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in seed0..seed0.saturating_add(count) {
        report.seeds_run += 1;
        if let Err(e) = fuzz_one(seed, faults) {
            report.failures.push(e);
        }
    }
    report
}

/// Worker counts every CFG-shape case is differentially checked at.
pub const SHAPE_JOBS: [usize; 3] = [1, 2, 4];

/// The CFG-shape-controlled generator mode: builds one dataflow problem
/// whose condensation targets the shape's SCC count/size distribution
/// (`polyflow_dataflow::oracle::random_problem`), asserts the
/// distribution was hit, and differentially checks `solve_parallel`
/// against the sequential oracle at [`SHAPE_JOBS`]. Panics inside the
/// solver surface as failures, never aborts.
pub fn fuzz_shape_one(seed: u64, shape: CfgShape) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| fuzz_shape_inner(seed, shape)))
        .unwrap_or_else(|p| {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(format!("panicked: {msg}"))
        })
        .map_err(|e| format!("seed {seed:#x} shape {}: {e}", shape.label()))
}

fn fuzz_shape_inner(seed: u64, shape: CfgShape) -> Result<(), String> {
    let p = oracle::random_problem(seed, shape);
    // The generator's contract: the shape controls the SCC distribution.
    let cond = polyflow_dataflow::scc::condense(&p.succs);
    let biggest = cond.members.iter().map(Vec::len).max().unwrap_or(0);
    match shape {
        CfgShape::Chain | CfgShape::Diamond | CfgShape::WideDag => {
            if cond.cyclic.iter().any(|&c| c) {
                return Err(format!("{} produced a cyclic component", shape.label()));
            }
        }
        CfgShape::GiantScc => {
            if cond.len() != 1 {
                return Err(format!("giant-scc produced {} components", cond.len()));
            }
        }
        CfgShape::Irreducible => {
            if biggest < 2 {
                return Err("irreducible produced no multi-node component".to_string());
            }
        }
        CfgShape::Mixed => {}
    }
    oracle::check_against_oracle(&p.as_problem(), &SHAPE_JOBS)
}

/// Runs every [`CfgShape`] over `count` consecutive seeds.
pub fn fuzz_shapes(seed0: u64, count: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    for seed in seed0..seed0.saturating_add(count) {
        for shape in CfgShape::ALL {
            report.seeds_run += 1;
            if let Err(e) = fuzz_shape_one(seed, shape) {
                report.failures.push(e);
            }
        }
    }
    report
}

/// Replays a regression corpus: one `<seed> <mode>` pair per line, where
/// mode is `differential`, `faults`, or `shape:<label>` for the
/// CFG-shape-controlled dataflow mode (`#` comments and blank lines
/// ignored; seeds decimal or `0x`-hex). Returns the report, or the
/// first parse error.
pub fn replay_corpus(text: &str) -> Result<FuzzReport, String> {
    let mut report = FuzzReport::default();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let seed_tok = parts
            .next()
            .ok_or_else(|| format!("line {}: empty", ln + 1))?;
        let seed = parse_seed(seed_tok)
            .ok_or_else(|| format!("line {}: bad seed `{seed_tok}`", ln + 1))?;
        let result = match parts.next() {
            Some("faults") => fuzz_one(seed, true),
            Some("differential") | None => fuzz_one(seed, false),
            Some(mode) => {
                if let Some(label) = mode.strip_prefix("shape:") {
                    let shape = CfgShape::from_label(label)
                        .ok_or_else(|| format!("line {}: bad shape `{label}`", ln + 1))?;
                    fuzz_shape_one(seed, shape)
                } else {
                    return Err(format!("line {}: bad mode `{mode}`", ln + 1));
                }
            }
        };
        report.seeds_run += 1;
        if let Err(e) = result {
            report.failures.push(e);
        }
    }
    Ok(report)
}

/// Parses a decimal or `0x`-prefixed hex seed.
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_seed_passes_differential_and_faults() {
        fuzz_one(0x7357, true).unwrap();
    }

    #[test]
    fn every_fault_operator_finds_a_site() {
        let program = random_program(0x5eed);
        let run = execute_window(&program, WINDOW).unwrap();
        let mut rng = SplitMix64::new(0xFA17);
        for fault in Fault::ALL {
            inject_and_check(&program, &run.trace, fault, &mut rng)
                .unwrap_or_else(|e| panic!("{fault:?}: {e}"));
        }
    }

    /// Every distribution bucket generates programs that halt inside the
    /// window, round-trip byte-identically through the assembler, and
    /// (for the irreducible bucket) actually contain an irreducible
    /// region often enough to matter.
    #[test]
    fn every_bucket_generates_runnable_programs() {
        for (name, dist) in GenDist::BUCKETS {
            for seed in 0..8u64 {
                let p = random_program_with(seed, &dist);
                let run = execute_window(&p, WINDOW)
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
                assert!(run.halted, "{name} seed {seed} did not halt");
                let p2 = parse_program(&to_asm(&p))
                    .unwrap_or_else(|e| panic!("{name} seed {seed}: reparse: {e}"));
                assert_eq!(p, p2, "{name} seed {seed} drifted through the text format");
            }
        }
    }

    /// The knobs bite: the branchy bucket generates more conditional
    /// branches than the loopy bucket generates on the same seeds, and
    /// the calls bucket reaches more callees than mixed.
    #[test]
    fn distribution_knobs_shift_the_instruction_mix() {
        let count = |dist: &GenDist, pred: &dyn Fn(InstClass) -> bool| -> usize {
            (0..16u64)
                .map(|seed| {
                    let p = random_program_with(seed, dist);
                    p.insts().iter().filter(|i| pred(i.class())).count()
                })
                .sum()
        };
        // Hammocks are the only statements that emit an unconditional
        // `jmp` to a join, so the jump count isolates branch density
        // from loop back-edges (which are also conditional branches).
        let is_join_jump = |c: InstClass| c == InstClass::Jump;
        let branchy = count(&GenDist::branchy(), &is_join_jump);
        let loopy_joins = count(&GenDist::loopy(), &is_join_jump);
        assert!(
            branchy > loopy_joins,
            "branchy bucket must out-hammock loopy ({branchy} vs {loopy_joins})"
        );
        let is_mem = |c: InstClass| matches!(c, InstClass::Load | InstClass::Store);
        let memory = count(&GenDist::memory(), &is_mem);
        let branchy_mem = count(&GenDist::branchy(), &is_mem);
        assert!(
            memory > branchy_mem,
            "memory bucket must out-load branchy ({memory} vs {branchy_mem})"
        );
        let call_fanout = (0..16u64)
            .map(|s| random_program_with(s, &GenDist::calls()).functions().len())
            .max()
            .unwrap();
        assert!(
            call_fanout >= 3,
            "calls bucket reaches several leaves (saw {call_fanout} functions)"
        );
    }

    #[test]
    fn corpus_parser_accepts_all_modes_and_comments() {
        let report =
            replay_corpus("# comment\n\n0x7357 faults\n3 differential\n4\n5 shape:chain\n")
                .unwrap();
        assert_eq!(report.seeds_run, 4);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(replay_corpus("zzz faults").is_err());
        assert!(replay_corpus("1 sideways").is_err());
        assert!(replay_corpus("1 shape:zigzag").is_err());
    }

    #[test]
    fn shape_mode_passes_every_shape() {
        let report = fuzz_shapes(0x5eed, 2);
        assert_eq!(report.seeds_run, 2 * CfgShape::ALL.len() as u64);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("10"), Some(10));
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
