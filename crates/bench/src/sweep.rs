//! The parallel (workload × policy) sweep engine.
//!
//! Every figure binary is a grid of independent simulator runs. This
//! module executes such grids on the work-stealing pool ([`crate::pool`])
//! with per-worker [`SimScratch`] reuse, collects results into
//! deterministic `[workload][cell]` order (byte-identical output at any
//! `--jobs`), and reports per-cell wall-clock: a cells/sec throughput
//! line on stderr plus a `BENCH_sweep.json` perf-trajectory file
//! (override the path with `POLYFLOW_BENCH_JSON`; set it empty or to `0`
//! to disable).

use crate::{pool, PreparedWorkload};
use polyflow_core::Policy;
use polyflow_sim::{SimResult, SimScratch};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// One cell of a figure's (workload × policy) grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// The equivalent-resource superscalar baseline.
    Baseline,
    /// One static spawn policy on the PolyFlow machine.
    Static(Policy),
    /// The dynamic reconvergence-predictor source (§4.4).
    Reconv,
}

impl Cell {
    /// Short label used in the timing report.
    pub fn label(&self) -> String {
        match self {
            Cell::Baseline => "baseline".to_string(),
            Cell::Static(p) => p.name(),
            Cell::Reconv => "rec_pred".to_string(),
        }
    }
}

/// Timing record of one executed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's name (conventionally the figure binary's).
    pub name: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the whole grid.
    pub wall: Duration,
    /// Per-cell label and wall-clock, in deterministic grid order.
    pub cells: Vec<(String, Duration)>,
}

impl SweepReport {
    /// Grid throughput in cells per second of wall-clock.
    pub fn cells_per_second(&self) -> f64 {
        self.cells.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Prints the throughput line to stderr and writes the JSON report
    /// (unless disabled via `POLYFLOW_BENCH_JSON`).
    pub fn emit(&self) {
        eprintln!(
            "[sweep] {}: {} cells in {} on {} worker{} ({:.1} cells/sec)",
            self.name,
            self.cells.len(),
            crate::stopwatch::fmt_duration(self.wall),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.cells_per_second(),
        );
        let path = match std::env::var("POLYFLOW_BENCH_JSON") {
            Ok(v) if v.is_empty() || v == "0" => return,
            Ok(v) => v,
            Err(_) => "BENCH_sweep.json".to_string(),
        };
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("[sweep] wrote {path}"),
            Err(e) => eprintln!("[sweep] could not write {path}: {e}"),
        }
    }

    /// Renders the report as JSON (hand-rolled — the workspace takes no
    /// serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!(
            "  \"wall_seconds\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cells_per_second\": {:.3},\n",
            self.cells_per_second()
        ));
        out.push_str("  \"cell_seconds\": [\n");
        for (i, (label, d)) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"seconds\": {:.6}}}{comma}\n",
                escape(label),
                d.as_secs_f64()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

thread_local! {
    /// One reusable simulation arena per worker thread (the main thread
    /// counts as a worker when `jobs == 1`).
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::default());
}

/// Runs an arbitrary `(workload × cell)` grid on the pool and returns
/// results grouped as `[workload][cell]`, plus the timing report.
///
/// `run` executes one cell; it receives the worker's reusable
/// [`SimScratch`]. `label` names a cell for the report. Cells are
/// independent, so any interleaving is allowed — results are reassembled
/// in grid order, making the caller's output identical for every `jobs`.
pub fn run_grid_with<C, F, L>(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[C],
    jobs: usize,
    run: F,
    label: L,
) -> (Vec<Vec<SimResult>>, SweepReport)
where
    C: Sync,
    F: Fn(&PreparedWorkload, &C, &mut SimScratch) -> SimResult + Sync,
    L: Fn(&C) -> String,
{
    let grid: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..cells.len()).map(move |ci| (wi, ci)))
        .collect();
    let started = Instant::now();
    let timed = pool::parallel_map(grid, jobs, |_, (wi, ci)| {
        let t0 = Instant::now();
        let r = SCRATCH.with(|s| run(&workloads[wi], &cells[ci], &mut s.borrow_mut()));
        (r, t0.elapsed())
    });
    let wall = started.elapsed();
    let mut cell_times = Vec::with_capacity(timed.len());
    let mut results: Vec<Vec<SimResult>> = Vec::with_capacity(workloads.len());
    let mut it = timed.into_iter();
    for w in workloads {
        let mut row = Vec::with_capacity(cells.len());
        for c in cells {
            let (r, d) = it.next().expect("one result per grid cell");
            cell_times.push((format!("{}/{}", w.name, label(c)), d));
            row.push(r);
        }
        results.push(row);
    }
    let report = SweepReport {
        name: name.to_string(),
        jobs,
        wall,
        cells: cell_times,
    };
    (results, report)
}

/// Runs the standard figure grid (`cells` per workload) with the
/// process-wide worker count ([`pool::resolve_jobs`]).
pub fn sweep(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[Cell],
) -> (Vec<Vec<SimResult>>, SweepReport) {
    sweep_with_jobs(name, workloads, cells, pool::resolve_jobs())
}

/// [`sweep`] with an explicit worker count.
pub fn sweep_with_jobs(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[Cell],
    jobs: usize,
) -> (Vec<Vec<SimResult>>, SweepReport) {
    run_grid_with(
        name,
        workloads,
        cells,
        jobs,
        |w, cell, scratch| match cell {
            Cell::Baseline => w.run_baseline_with(scratch),
            Cell::Static(p) => w.run_static_with(*p, scratch),
            Cell::Reconv => w.run_reconv_with(scratch),
        },
        Cell::label,
    )
}

/// The Figure 9 grid: baseline plus every individual-heuristic policy.
/// Shared by the figure binary and the determinism test.
pub fn figure9_cells() -> Vec<Cell> {
    std::iter::once(Cell::Baseline)
        .chain(Policy::figure9().iter().map(|&p| Cell::Static(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = SweepReport {
            name: "unit \"test\"".to_string(),
            jobs: 3,
            wall: Duration::from_millis(1500),
            cells: vec![
                ("a/baseline".to_string(), Duration::from_millis(700)),
                ("a/loop".to_string(), Duration::from_millis(800)),
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"name\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("\"cells\": 2"));
        assert!(json.contains("\"wall_seconds\": 1.500000"));
        assert!(json.contains("{\"cell\": \"a/loop\", \"seconds\": 0.800000}"));
        assert!(!json.contains(",\n  ]"), "no trailing comma in array");
        assert!(!json.contains(",\n}"), "no trailing comma in object");
    }

    #[test]
    fn figure9_grid_has_baseline_plus_policies() {
        let cells = figure9_cells();
        assert_eq!(cells[0], Cell::Baseline);
        assert_eq!(cells.len(), 1 + Policy::figure9().len());
    }
}
