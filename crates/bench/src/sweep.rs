//! The parallel (workload × policy) sweep engine.
//!
//! Every figure binary is a grid of independent simulator runs. This
//! module executes such grids on the work-stealing pool ([`crate::pool`])
//! with per-worker [`SimScratch`] reuse, collects results into
//! deterministic `[workload][cell]` order (byte-identical output at any
//! `--jobs`), and reports per-cell wall-clock: a cells/sec throughput
//! line on stderr plus a `BENCH_sweep.json` perf-trajectory file
//! (override the path with `POLYFLOW_BENCH_JSON`; set it empty or to `0`
//! to disable).
//!
//! # Fault isolation
//!
//! Each cell runs inside [`std::panic::catch_unwind`] with one bounded
//! retry, so a panicking or erroring cell degrades to
//! [`CellOutcome::Failed`] instead of killing the whole sweep: the
//! surviving cells complete, the figure renders the dead cell as
//! `FAILED`, and the binary exits nonzero ([`report_failures`]). Grid
//! order — and therefore output — stays deterministic at any worker
//! count. Setting `POLYFLOW_FAULT_CELL=<workload>/<label>` makes exactly
//! that cell panic deliberately (the CI degradation check).

use crate::{pool, PreparedWorkload};
use polyflow_core::Policy;
use polyflow_reconv::ReconvConfig;
use polyflow_sim::{
    try_simulate_opts, MachineConfig, NoSpawn, NullSink, ReconvSpawnSource, SimError, SimOptions,
    SimResult, SimScratch, SimTelemetry, StaticSpawnSource,
};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// One cell of a figure's (workload × policy) grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// The equivalent-resource superscalar baseline.
    Baseline,
    /// One static spawn policy on the PolyFlow machine.
    Static(Policy),
    /// The dynamic reconvergence-predictor source (§4.4).
    Reconv,
}

impl Cell {
    /// Short label used in the timing report.
    pub fn label(&self) -> String {
        match self {
            Cell::Baseline => "baseline".to_string(),
            Cell::Static(p) => p.name(),
            Cell::Reconv => "rec_pred".to_string(),
        }
    }
}

/// What one grid cell produced: a simulation result, or a structured
/// record of why the cell died (typed simulator error, or a caught
/// panic). A failed cell never aborts the sweep.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell simulated to completion (boxed: a [`SimResult`] is much
    /// larger than the failure record).
    Ok(Box<SimResult>),
    /// The cell failed on every attempt; the rest of the grid completed.
    Failed {
        /// Workload name (the grid row).
        workload: String,
        /// Cell label (the grid column).
        cell: String,
        /// The rendered [`SimError`] or the panic payload.
        payload: String,
        /// Attempts made (1 for a typed error, which is deterministic;
        /// up to 2 for a panic, which gets one retry).
        attempts: u32,
    },
}

impl CellOutcome {
    /// The simulation result, if the cell succeeded.
    pub fn result(&self) -> Option<&SimResult> {
        match self {
            CellOutcome::Ok(r) => Some(r.as_ref()),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// True if the cell died.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// Instructions per cycle, or NaN for a failed cell (rendered as
    /// `FAILED` by the table/CSV printers).
    pub fn ipc(&self) -> f64 {
        self.result().map_or(f64::NAN, SimResult::ipc)
    }

    /// Speedup in percent over `base`, or NaN if either cell failed.
    pub fn speedup_percent_over(&self, base: &CellOutcome) -> f64 {
        match (self.result(), base.result()) {
            (Some(r), Some(b)) => r.speedup_percent_over(b),
            _ => f64::NAN,
        }
    }
}

/// Prints every failed cell of a finished grid to stderr and returns
/// whether any failed — the figure binary should then exit nonzero.
pub fn report_failures(grid: &[Vec<CellOutcome>]) -> bool {
    let mut any = false;
    for outcome in grid.iter().flatten() {
        if let CellOutcome::Failed {
            workload,
            cell,
            payload,
            attempts,
        } = outcome
        {
            any = true;
            eprintln!(
                "[sweep] FAILED cell {workload}/{cell} after {attempts} attempt(s): {payload}"
            );
        }
    }
    any
}

/// Timing record of one executed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's name (conventionally the figure binary's).
    pub name: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the whole grid.
    pub wall: Duration,
    /// Per-cell label and wall-clock, in deterministic grid order.
    pub cells: Vec<(String, Duration)>,
}

impl SweepReport {
    /// Grid throughput in cells per second of wall-clock.
    pub fn cells_per_second(&self) -> f64 {
        self.cells.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Prints the throughput line to stderr and writes the JSON report
    /// (unless disabled via `POLYFLOW_BENCH_JSON`).
    pub fn emit(&self) {
        eprintln!(
            "[sweep] {}: {} cells in {} on {} worker{} ({:.1} cells/sec)",
            self.name,
            self.cells.len(),
            crate::stopwatch::fmt_duration(self.wall),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.cells_per_second(),
        );
        let path = match std::env::var("POLYFLOW_BENCH_JSON") {
            Ok(v) if v.is_empty() || v == "0" => return,
            Ok(v) => v,
            Err(_) => "BENCH_sweep.json".to_string(),
        };
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("[sweep] wrote {path}"),
            Err(e) => eprintln!("[sweep] could not write {path}: {e}"),
        }
    }

    /// Renders the report as JSON (hand-rolled — the workspace takes no
    /// serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"cells\": {},\n", self.cells.len()));
        out.push_str(&format!(
            "  \"wall_seconds\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cells_per_second\": {:.3},\n",
            self.cells_per_second()
        ));
        out.push_str("  \"cell_seconds\": [\n");
        for (i, (label, d)) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"seconds\": {:.6}}}{comma}\n",
                escape(label),
                d.as_secs_f64()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

thread_local! {
    /// One reusable simulation arena per worker thread (the main thread
    /// counts as a worker when `jobs == 1`).
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::default());
}

/// True if the environment asks this exact cell (`workload/label`) to
/// panic deliberately — the CI hook proving a dead cell degrades the
/// sweep instead of aborting it.
fn deliberate_fault(full_label: &str) -> bool {
    std::env::var("POLYFLOW_FAULT_CELL").is_ok_and(|v| v == full_label)
}

/// Renders a caught panic payload (`&str` and `String` payloads carry the
/// panic message; anything else is opaque).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic budget per cell: one retry after a caught panic (a transient
/// failure gets a second chance; a deterministic one fails both times
/// and the outcome records both attempts).
const MAX_ATTEMPTS: u32 = 2;

/// Runs one cell under panic isolation. Typed errors are deterministic
/// properties of the (workload, cell) pair, so they fail immediately;
/// panics get one retry.
fn run_cell<C, F>(w: &PreparedWorkload, c: &C, cell_label: &str, run: &F) -> CellOutcome
where
    F: Fn(&PreparedWorkload, &C, &mut SimScratch) -> Result<SimResult, SimError> + Sync,
{
    let full_label = format!("{}/{}", w.name, cell_label);
    let mut attempts = 0;
    loop {
        attempts += 1;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                !deliberate_fault(&full_label),
                "deliberate fault injected via POLYFLOW_FAULT_CELL={full_label}"
            );
            SCRATCH.with(|s| {
                let mut s = s.borrow_mut();
                // Pre-size the per-instruction arenas so the dominant
                // allocations happen once per worker, not during the run.
                s.reserve(w.trace().len());
                run(w, c, &mut s)
            })
        }));
        let payload = match caught {
            Ok(Ok(r)) => return CellOutcome::Ok(Box::new(r)),
            Ok(Err(e)) => e.to_string(),
            Err(p) if attempts < MAX_ATTEMPTS => {
                drop(p); // the default hook already printed it; retry once
                continue;
            }
            Err(p) => payload_string(p),
        };
        return CellOutcome::Failed {
            workload: w.name.to_string(),
            cell: cell_label.to_string(),
            payload,
            attempts,
        };
    }
}

/// Runs an arbitrary `(workload × cell)` grid on the pool and returns
/// per-cell outcomes grouped as `[workload][cell]`, plus the timing
/// report.
///
/// `run` executes one cell; it receives the worker's reusable
/// [`SimScratch`]. `label` names a cell for the report. Cells are
/// independent, so any interleaving is allowed — results are reassembled
/// in grid order, making the caller's output identical for every `jobs`.
/// A cell that panics or returns a [`SimError`] becomes
/// [`CellOutcome::Failed`] without disturbing its neighbours.
pub fn run_grid_with<C, F, L>(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[C],
    jobs: usize,
    run: F,
    label: L,
) -> (Vec<Vec<CellOutcome>>, SweepReport)
where
    C: Sync,
    F: Fn(&PreparedWorkload, &C, &mut SimScratch) -> Result<SimResult, SimError> + Sync,
    L: Fn(&C) -> String,
{
    let labels: Vec<String> = cells.iter().map(&label).collect();
    let grid: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..cells.len()).map(move |ci| (wi, ci)))
        .collect();
    let started = Instant::now();
    let timed = pool::parallel_map(grid, jobs, |_, (wi, ci)| {
        let t0 = Instant::now();
        let r = run_cell(&workloads[wi], &cells[ci], &labels[ci], &run);
        (r, t0.elapsed())
    });
    let wall = started.elapsed();
    let mut cell_times = Vec::with_capacity(timed.len());
    let mut results: Vec<Vec<CellOutcome>> = Vec::with_capacity(workloads.len());
    let mut it = timed.into_iter();
    for w in workloads {
        let mut row = Vec::with_capacity(cells.len());
        for l in &labels {
            let (r, d) = it.next().expect("one result per grid cell");
            cell_times.push((format!("{}/{}", w.name, l), d));
            row.push(r);
        }
        results.push(row);
    }
    let report = SweepReport {
        name: name.to_string(),
        jobs,
        wall,
        cells: cell_times,
    };
    (results, report)
}

/// Runs a *ragged* batch — an explicit list of `(workload, cell)` pairs
/// rather than a full cross product — on the pool, with the same fault
/// isolation and determinism guarantees as [`run_grid_with`]: outcomes
/// come back in input order, each pair ran exactly once, and a panicking
/// or erroring pair degrades to [`CellOutcome::Failed`] without touching
/// its neighbours.
///
/// This is the execution primitive of the `polyflow-serve` micro-batcher:
/// a coalesced request batch is rarely a rectangle (each client asks for
/// its own workload × policy × config cell), but every pair is still an
/// independent simulator run, so the batch executes as one pool dispatch.
/// `W` is anything that borrows a [`PreparedWorkload`] (`Arc` in the
/// server, plain references in tests).
pub fn run_batch_with<W, C, F, L>(
    name: &str,
    items: &[(W, C)],
    jobs: usize,
    run: F,
    label: L,
) -> (Vec<CellOutcome>, SweepReport)
where
    W: AsRef<PreparedWorkload> + Sync,
    C: Sync,
    F: Fn(&PreparedWorkload, &C, &mut SimScratch) -> Result<SimResult, SimError> + Sync,
    L: Fn(&C) -> String,
{
    let labels: Vec<String> = items.iter().map(|(_, c)| label(c)).collect();
    let started = Instant::now();
    let indices: Vec<usize> = (0..items.len()).collect();
    let timed = pool::parallel_map(indices, jobs, |_, i| {
        let (w, c) = &items[i];
        let t0 = Instant::now();
        let r = run_cell(w.as_ref(), c, &labels[i], &run);
        (r, t0.elapsed())
    });
    let wall = started.elapsed();
    let mut outcomes = Vec::with_capacity(timed.len());
    let mut cell_times = Vec::with_capacity(timed.len());
    for (i, (r, d)) in timed.into_iter().enumerate() {
        cell_times.push((format!("{}/{}", items[i].0.as_ref().name, labels[i]), d));
        outcomes.push(r);
    }
    let report = SweepReport {
        name: name.to_string(),
        jobs,
        wall,
        cells: cell_times,
    };
    (outcomes, report)
}

/// Runs one cell under an **explicit** machine configuration, unlike the
/// `try_run_*` methods which use the process-wide figure configs. This is
/// the single execution path behind every `polyflow-serve` request — the
/// server's batcher and the offline verifier both call it, so "served
/// result ≡ offline result" reduces to the simulator's own determinism.
/// Prepared traces are still shared through
/// [`PreparedWorkload::prepared`], keyed by the config's predictor key.
pub fn run_cell_with_config(
    w: &PreparedWorkload,
    cell: Cell,
    cfg: &MachineConfig,
    scratch: &mut SimScratch,
) -> Result<SimResult, SimError> {
    run_cell_with_config_opts(w, cell, cfg, scratch, SimOptions::default()).map(|(r, _)| r)
}

/// [`run_cell_with_config`] with explicit [`SimOptions`], additionally
/// returning the run's [`SimTelemetry`] (stepped vs fast-forwarded
/// cycles). The options never change the result — this is the `simbench`
/// measurement path, where the skip split is part of the report.
pub fn run_cell_with_config_opts(
    w: &PreparedWorkload,
    cell: Cell,
    cfg: &MachineConfig,
    scratch: &mut SimScratch,
    opts: SimOptions,
) -> Result<(SimResult, SimTelemetry), SimError> {
    let prepared = w.prepared(cfg);
    scratch.reserve(w.trace().len());
    match cell {
        Cell::Baseline => {
            try_simulate_opts(&prepared, cfg, &mut NoSpawn, scratch, &mut NullSink, opts)
        }
        Cell::Static(p) => {
            let mut src = StaticSpawnSource::new(w.analysis.spawn_table(p));
            try_simulate_opts(&prepared, cfg, &mut src, scratch, &mut NullSink, opts)
        }
        Cell::Reconv => {
            let mut src = ReconvSpawnSource::new(ReconvConfig::default());
            try_simulate_opts(&prepared, cfg, &mut src, scratch, &mut NullSink, opts)
        }
    }
}

/// Runs the standard figure grid (`cells` per workload) with the
/// process-wide worker count ([`pool::resolve_jobs`]).
pub fn sweep(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[Cell],
) -> (Vec<Vec<CellOutcome>>, SweepReport) {
    sweep_with_jobs(name, workloads, cells, pool::resolve_jobs())
}

/// [`sweep`] with an explicit worker count.
pub fn sweep_with_jobs(
    name: &str,
    workloads: &[PreparedWorkload],
    cells: &[Cell],
    jobs: usize,
) -> (Vec<Vec<CellOutcome>>, SweepReport) {
    run_grid_with(
        name,
        workloads,
        cells,
        jobs,
        |w, cell, scratch| match cell {
            Cell::Baseline => w.try_run_baseline_with(scratch),
            Cell::Static(p) => w.try_run_static_with(*p, scratch),
            Cell::Reconv => w.try_run_reconv_with(scratch),
        },
        Cell::label,
    )
}

/// The Figure 9 grid: baseline plus every individual-heuristic policy.
/// Shared by the figure binary and the determinism test.
pub fn figure9_cells() -> Vec<Cell> {
    std::iter::once(Cell::Baseline)
        .chain(Policy::figure9().iter().map(|&p| Cell::Static(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = SweepReport {
            name: "unit \"test\"".to_string(),
            jobs: 3,
            wall: Duration::from_millis(1500),
            cells: vec![
                ("a/baseline".to_string(), Duration::from_millis(700)),
                ("a/loop".to_string(), Duration::from_millis(800)),
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"name\": \"unit \\\"test\\\"\""));
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("\"cells\": 2"));
        assert!(json.contains("\"wall_seconds\": 1.500000"));
        assert!(json.contains("{\"cell\": \"a/loop\", \"seconds\": 0.800000}"));
        assert!(!json.contains(",\n  ]"), "no trailing comma in array");
        assert!(!json.contains(",\n}"), "no trailing comma in object");
    }

    #[test]
    fn figure9_grid_has_baseline_plus_policies() {
        let cells = figure9_cells();
        assert_eq!(cells[0], Cell::Baseline);
        assert_eq!(cells.len(), 1 + Policy::figure9().len());
    }

    #[test]
    fn failed_outcomes_render_as_nan_and_report() {
        let failed = CellOutcome::Failed {
            workload: "gzip".to_string(),
            cell: "postdoms".to_string(),
            payload: "deliberate".to_string(),
            attempts: 2,
        };
        assert!(failed.is_failed());
        assert!(failed.result().is_none());
        assert!(failed.ipc().is_nan());
        let ok = CellOutcome::Ok(Box::default());
        assert!(!ok.is_failed());
        assert!(failed.speedup_percent_over(&ok).is_nan());
        assert!(ok.speedup_percent_over(&failed).is_nan());

        assert!(report_failures(&[vec![ok, failed]]));
        assert!(!report_failures(&[vec![CellOutcome::Ok(Box::default())]]));
    }

    #[test]
    fn panic_payloads_render() {
        let p = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(payload_string(p), "boom 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(payload_string(p), "non-string panic payload");
    }
}
