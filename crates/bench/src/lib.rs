//! Shared harness for regenerating the paper's figures.
//!
//! Each `fig*` binary in this crate reproduces one figure of the
//! evaluation (see DESIGN.md §4 for the experiment index). This library
//! holds the common machinery: preparing workloads, running policy
//! sweeps, and printing aligned tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::{execute_window, Dataflow, PcIndex, Program, Trace};
use polyflow_reconv::ReconvConfig;
use polyflow_sim::{
    simulate_traced, simulate_with, try_simulate_with, DependenceMode, MachineConfig, NoSpawn,
    PreparedTrace, ReconvSpawnSource, SimError, SimResult, SimScratch, StaticSpawnSource,
    TraceSink,
};
use polyflow_workloads::Workload;
use std::sync::{Arc, Mutex, OnceLock};

pub mod cli;
pub mod fuzz;
pub mod pool;
pub mod stopwatch;
pub mod sweep;

/// A predictor configuration fingerprint ([`MachineConfig::predictor_key`]).
type PredictorKey = (usize, usize, usize);

/// A workload with its trace and spawn analysis, ready for policy sweeps.
///
/// The trace and its config-independent oracles (dataflow, PC index) are
/// computed once at preparation and shared read-only (`Arc`) by every
/// policy cell; per-predictor-configuration [`PreparedTrace`]s are built
/// lazily and cached, so no run ever re-derives them (the seed harness
/// rebuilt all of it on every `run_*` call).
#[derive(Debug)]
pub struct PreparedWorkload {
    /// Workload name (a bundled benchmark's paper x-axis label, or a
    /// runtime-loaded program's name).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The static spawn-point analysis.
    pub analysis: ProgramAnalysis,
    trace: Arc<Trace>,
    dataflow: Arc<Dataflow>,
    pc_index: Arc<PcIndex>,
    preps: Mutex<Vec<(PredictorKey, PreparedTrace)>>,
}

impl PreparedWorkload {
    /// Executes and analyzes one workload.
    ///
    /// # Panics
    ///
    /// Panics if the program faults or fails to halt within its window
    /// — bundled workloads are tested to halt; for runtime-loaded
    /// programs prefer [`Self::try_prepare`].
    pub fn prepare(w: Workload) -> PreparedWorkload {
        Self::try_prepare(w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::prepare`]: interpreter faults and
    /// non-termination come back as an error message instead of a panic,
    /// so untrusted runtime workloads (uploads, `--asm` files) degrade
    /// to a diagnostic.
    pub fn try_prepare(w: Workload) -> Result<PreparedWorkload, String> {
        let result = execute_window(&w.program, w.window)
            .map_err(|e| format!("{} failed to execute: {e}", w.name))?;
        if !result.halted {
            return Err(format!("{} did not halt in its window", w.name));
        }
        let analysis = ProgramAnalysis::analyze(&w.program);
        let trace = Arc::new(result.trace);
        let dataflow = Arc::new(trace.dataflow());
        let pc_index = Arc::new(trace.pc_index());
        Ok(PreparedWorkload {
            name: w.name,
            program: w.program,
            analysis,
            trace,
            dataflow,
            pc_index,
            preps: Mutex::new(Vec::new()),
        })
    }

    /// The retired-instruction trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The dynamic occurrences of each static PC (shared oracle).
    pub fn pc_index(&self) -> &PcIndex {
        &self.pc_index
    }

    /// The prepared trace for `cfg`: built once per predictor
    /// configuration ([`MachineConfig::predictor_key`]) on first use and
    /// shared (cheap `Arc` clones) by every subsequent run, across
    /// threads. The superscalar baseline and the PolyFlow machine share a
    /// key, so a full figure grid prepares each workload exactly once.
    pub fn prepared(&self, cfg: &MachineConfig) -> PreparedTrace {
        let key = cfg.predictor_key();
        let mut cache = self.preps.lock().unwrap();
        if let Some((_, p)) = cache.iter().find(|(k, _)| *k == key) {
            return p.clone();
        }
        let p = PreparedTrace::with_oracles(
            Arc::clone(&self.trace),
            Arc::clone(&self.dataflow),
            Arc::clone(&self.pc_index),
            cfg,
        );
        cache.push((key, p.clone()));
        p
    }

    /// Runs the superscalar baseline.
    pub fn run_baseline(&self) -> SimResult {
        self.run_baseline_with(&mut SimScratch::default())
    }

    /// [`run_baseline`](Self::run_baseline) with a reusable scratch arena.
    pub fn run_baseline_with(&self, scratch: &mut SimScratch) -> SimResult {
        let cfg = superscalar_config();
        simulate_with(&self.prepared(&cfg), &cfg, &mut NoSpawn, scratch)
    }

    /// Fallible [`run_baseline_with`](Self::run_baseline_with): watchdog
    /// trips and malformed traces come back as [`SimError`] instead of a
    /// panic. Used by the sweep engine's fault-isolated cells.
    pub fn try_run_baseline_with(&self, scratch: &mut SimScratch) -> Result<SimResult, SimError> {
        let cfg = superscalar_config();
        try_simulate_with(&self.prepared(&cfg), &cfg, &mut NoSpawn, scratch)
    }

    /// Runs one static policy on the PolyFlow machine.
    pub fn run_static(&self, policy: Policy) -> SimResult {
        self.run_static_with(policy, &mut SimScratch::default())
    }

    /// [`run_static`](Self::run_static) with a reusable scratch arena.
    pub fn run_static_with(&self, policy: Policy, scratch: &mut SimScratch) -> SimResult {
        let cfg = polyflow_config();
        let mut src = StaticSpawnSource::new(self.analysis.spawn_table(policy));
        simulate_with(&self.prepared(&cfg), &cfg, &mut src, scratch)
    }

    /// Fallible [`run_static_with`](Self::run_static_with).
    pub fn try_run_static_with(
        &self,
        policy: Policy,
        scratch: &mut SimScratch,
    ) -> Result<SimResult, SimError> {
        let cfg = polyflow_config();
        let mut src = StaticSpawnSource::new(self.analysis.spawn_table(policy));
        try_simulate_with(&self.prepared(&cfg), &cfg, &mut src, scratch)
    }

    /// Runs one static policy (or the superscalar baseline for
    /// [`Policy::None`]), streaming structured events to `sink`. Event
    /// emission never perturbs the simulation, so the result is
    /// bit-identical to [`run_static`](Self::run_static) /
    /// [`run_baseline`](Self::run_baseline).
    pub fn run_traced(&self, policy: Policy, sink: &mut dyn TraceSink) -> SimResult {
        let mut scratch = SimScratch::default();
        if policy == Policy::None {
            let cfg = superscalar_config();
            simulate_traced(&self.prepared(&cfg), &cfg, &mut NoSpawn, &mut scratch, sink)
        } else {
            let cfg = polyflow_config();
            let mut src = StaticSpawnSource::new(self.analysis.spawn_table(policy));
            simulate_traced(&self.prepared(&cfg), &cfg, &mut src, &mut scratch, sink)
        }
    }

    /// Runs the dynamic reconvergence-predictor policy (cold predictor,
    /// trained online; §4.4).
    pub fn run_reconv(&self) -> SimResult {
        self.run_reconv_with(&mut SimScratch::default())
    }

    /// [`run_reconv`](Self::run_reconv) with a reusable scratch arena.
    pub fn run_reconv_with(&self, scratch: &mut SimScratch) -> SimResult {
        let cfg = polyflow_config();
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        simulate_with(&self.prepared(&cfg), &cfg, &mut src, scratch)
    }

    /// Fallible [`run_reconv_with`](Self::run_reconv_with).
    pub fn try_run_reconv_with(&self, scratch: &mut SimScratch) -> Result<SimResult, SimError> {
        let cfg = polyflow_config();
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        try_simulate_with(&self.prepared(&cfg), &cfg, &mut src, scratch)
    }
}

/// The hard cycle budget every figure binary honors: `--max-cycles N`
/// (or `--max-cycles=N`) on the command line, else the
/// `POLYFLOW_MAX_CYCLES` environment variable, else unlimited
/// (`u64::MAX`). Read once per process; a run that exceeds the budget
/// fails with [`SimError::CyclesExceeded`] and the sweep engine marks
/// its cell `FAILED` instead of hanging the figure.
pub fn resolve_max_cycles() -> u64 {
    static MAX: OnceLock<u64> = OnceLock::new();
    *MAX.get_or_init(|| {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--max-cycles" {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    return n;
                }
            } else if let Some(n) = a.strip_prefix("--max-cycles=").and_then(|v| v.parse().ok()) {
                return n;
            }
        }
        std::env::var("POLYFLOW_MAX_CYCLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(u64::MAX)
    })
}

/// The superscalar baseline configuration with the process-wide cycle
/// budget ([`resolve_max_cycles`]) applied. The budget does not affect
/// the predictor key, so prepared traces stay shared with the PolyFlow
/// configuration.
fn superscalar_config() -> MachineConfig {
    let mut cfg = MachineConfig::superscalar();
    cfg.max_cycles = resolve_max_cycles();
    cfg
}

/// The PolyFlow machine configuration used by the figure binaries:
/// Figure 8 defaults, with environment overrides for the dependence-model
/// experiments (`POLYFLOW_REG_HINTS=1` enables the capacity-limited
/// hint-entry register model; `POLYFLOW_STORE_SETS=1` enables store-set
/// memory-dependence prediction; both default to oracle synchronization).
/// The environment is read once per process.
pub fn polyflow_config() -> MachineConfig {
    static CONFIG: OnceLock<MachineConfig> = OnceLock::new();
    CONFIG
        .get_or_init(|| {
            let mut cfg = MachineConfig::hpca07();
            if std::env::var("POLYFLOW_REG_HINTS").is_ok_and(|v| v == "1") {
                cfg.register_dependence = DependenceMode::StoreSet;
            }
            if std::env::var("POLYFLOW_STORE_SETS").is_ok_and(|v| v == "1") {
                cfg.memory_dependence = DependenceMode::StoreSet;
            }
            cfg.max_cycles = resolve_max_cycles();
            cfg
        })
        .clone()
}

/// Prepares every workload (or a named subset), fanning the interpret +
/// analyze work out across the pool ([`pool::resolve_jobs`] workers).
pub fn prepare_all(filter: &[String]) -> Vec<PreparedWorkload> {
    prepare_all_jobs(filter, pool::resolve_jobs())
}

/// [`prepare_all`] with an explicit worker count.
pub fn prepare_all_jobs(filter: &[String], jobs: usize) -> Vec<PreparedWorkload> {
    let selected: Vec<Workload> = polyflow_workloads::all()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.contains(&w.name))
        .collect();
    pool::parallel_map(selected, jobs, |_, w| PreparedWorkload::prepare(w))
}

/// Resolves a figure bin's full workload selection: bundled workloads
/// matching the positional filter, plus every `--asm <path>` runtime
/// workload, in command-line order after the bundled set.
///
/// When `--asm` files are given and no bundled names are listed, only
/// the files run (bring-your-own-workload mode); listing names alongside
/// `--asm` runs both.
///
/// Exits with status 2 (like other CLI errors) when a file cannot be
/// read, fails to assemble, or does not halt within its window.
pub fn prepare_selection(args: &cli::Args) -> Vec<PreparedWorkload> {
    let mut prepared = if args.asm.is_empty() || !args.filter.is_empty() {
        prepare_all(&args.filter)
    } else {
        Vec::new()
    };
    for path in &args.asm {
        let w = polyflow_workloads::from_asm_file(path).unwrap_or_else(|e| {
            eprintln!("cannot load workload `{path}`: {e}");
            std::process::exit(2);
        });
        let pw = PreparedWorkload::try_prepare(w).unwrap_or_else(|e| {
            eprintln!("cannot prepare workload `{path}`: {e}");
            std::process::exit(2);
        });
        prepared.push(pw);
    }
    prepared
}

/// Parses a policy by its display name ([`Policy::name`]), as used on the
/// `explain` command line. `"superscalar"` / `"baseline"` / `"none"` name
/// the no-spawn baseline.
pub fn parse_policy(s: &str) -> Option<Policy> {
    match s {
        "superscalar" | "baseline" | "none" => Some(Policy::None),
        "loop" => Some(Policy::Loop),
        "loopFT" => Some(Policy::LoopFt),
        "procFT" => Some(Policy::ProcFt),
        "hammock" => Some(Policy::Hammock),
        "other" => Some(Policy::Other),
        "postdoms" => Some(Policy::Postdoms),
        _ => None,
    }
}

/// The policy names [`parse_policy`] accepts (for usage messages).
pub const POLICY_NAMES: &[&str] = &[
    "superscalar",
    "loop",
    "loopFT",
    "procFT",
    "hammock",
    "other",
    "postdoms",
];

/// Renders a speedup table as CSV (`benchmark,ss_ipc,<columns...>`).
/// NaN entries — cells the sweep engine marked failed — render as the
/// literal `FAILED` so a degraded figure is machine-detectable.
pub fn speedup_csv(rows: &[(String, f64, Vec<f64>)], columns: &[String]) -> String {
    let mut out = format!("benchmark,ss_ipc,{}\n", columns.join(","));
    for (name, ipc, speedups) in rows {
        let vals: Vec<String> = speedups
            .iter()
            .map(|s| {
                if s.is_nan() {
                    "FAILED".to_string()
                } else {
                    format!("{s:.2}")
                }
            })
            .collect();
        let ipc = if ipc.is_nan() {
            "FAILED".to_string()
        } else {
            format!("{ipc:.3}")
        };
        out.push_str(&format!("{name},{ipc},{}\n", vals.join(",")));
    }
    out
}

/// Emits a speedup table as CSV (`benchmark,ss_ipc,<columns...>`).
pub fn print_speedup_csv(rows: &[(String, f64, Vec<f64>)], columns: &[String]) {
    print!("{}", speedup_csv(rows, columns));
}

/// Prints a speedup table: one row per workload, one column per policy,
/// with a geometric-mean-free arithmetic average row (the paper averages
/// arithmetically). NaN entries — failed sweep cells — render as
/// `FAILED` and are excluded from the column average (an all-failed
/// column averages to `FAILED` too).
pub fn print_speedup_table(
    title: &str,
    rows: &[(String, f64, Vec<f64>)], // (name, baseline IPC, speedups %)
    columns: &[String],
) {
    println!("== {title} ==");
    print!("{:<12} {:>8}", "benchmark", "ss IPC");
    for c in columns {
        print!(" {c:>24}");
    }
    println!();
    let mut sums = vec![0.0; columns.len()];
    let mut counts = vec![0usize; columns.len()];
    for (name, ipc, speedups) in rows {
        if ipc.is_nan() {
            print!("{name:<12} {:>8}", "FAILED");
        } else {
            print!("{name:<12} {ipc:>8.2}");
        }
        for (i, s) in speedups.iter().enumerate() {
            if s.is_nan() {
                print!(" {:>24}", "FAILED");
            } else {
                print!(" {s:>23.1}%");
                sums[i] += s;
                counts[i] += 1;
            }
        }
        println!();
    }
    print!("{:<12} {:>8}", "Average", "");
    for (s, n) in sums.iter().zip(&counts) {
        if *n == 0 {
            print!(" {:>24}", "FAILED");
        } else {
            print!(" {:>23.1}%", s / *n as f64);
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_one_workload() {
        let w = polyflow_workloads::by_name("bzip2").unwrap();
        let pw = PreparedWorkload::prepare(w);
        assert_eq!(pw.name, "bzip2");
        assert!(!pw.trace().is_empty());
        assert!(!pw.analysis.candidates().is_empty());
    }

    #[test]
    fn failed_cells_render_in_csv() {
        let rows = vec![
            ("gzip".to_string(), 1.234, vec![10.0, f64::NAN]),
            ("mcf".to_string(), f64::NAN, vec![f64::NAN, f64::NAN]),
        ];
        let cols = vec!["a".to_string(), "b".to_string()];
        let csv = speedup_csv(&rows, &cols);
        assert!(csv.contains("gzip,1.234,10.00,FAILED"));
        assert!(csv.contains("mcf,FAILED,FAILED,FAILED"));
    }

    #[test]
    fn baseline_and_policy_share_work() {
        let w = polyflow_workloads::by_name("gzip").unwrap();
        let pw = PreparedWorkload::prepare(w);
        let base = pw.run_baseline();
        let pd = pw.run_static(Policy::Postdoms);
        assert_eq!(base.instructions, pd.instructions);
    }
}
