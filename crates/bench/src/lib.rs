//! Shared harness for regenerating the paper's figures.
//!
//! Each `fig*` binary in this crate reproduces one figure of the
//! evaluation (see DESIGN.md §4 for the experiment index). This library
//! holds the common machinery: preparing workloads, running policy
//! sweeps, and printing aligned tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::{execute_window, Program, Trace};
use polyflow_reconv::ReconvConfig;
use polyflow_sim::{
    simulate, DependenceMode, MachineConfig, NoSpawn, PreparedTrace, ReconvSpawnSource, SimResult,
    StaticSpawnSource,
};
use polyflow_workloads::Workload;

pub mod stopwatch;

/// A workload with its trace and spawn analysis, ready for policy sweeps.
#[derive(Debug)]
pub struct PreparedWorkload {
    /// Benchmark name (paper x-axis label).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// The retired-instruction trace.
    pub trace: Trace,
    /// The static spawn-point analysis.
    pub analysis: ProgramAnalysis,
}

impl PreparedWorkload {
    /// Executes and analyzes one workload.
    pub fn prepare(w: Workload) -> PreparedWorkload {
        let result = execute_window(&w.program, w.window)
            .unwrap_or_else(|e| panic!("{} failed to execute: {e}", w.name));
        assert!(result.halted, "{} did not halt in its window", w.name);
        let analysis = ProgramAnalysis::analyze(&w.program);
        PreparedWorkload {
            name: w.name,
            program: w.program,
            trace: result.trace,
            analysis,
        }
    }

    /// Runs the superscalar baseline.
    pub fn run_baseline(&self) -> SimResult {
        let cfg = MachineConfig::superscalar();
        let prepared = PreparedTrace::new(&self.trace, &cfg);
        simulate(&prepared, &cfg, &mut NoSpawn)
    }

    /// Runs one static policy on the PolyFlow machine.
    pub fn run_static(&self, policy: Policy) -> SimResult {
        let cfg = polyflow_config();
        let prepared = PreparedTrace::new(&self.trace, &cfg);
        let mut src = StaticSpawnSource::new(self.analysis.spawn_table(policy));
        simulate(&prepared, &cfg, &mut src)
    }

    /// Runs the dynamic reconvergence-predictor policy (cold predictor,
    /// trained online; §4.4).
    pub fn run_reconv(&self) -> SimResult {
        let cfg = polyflow_config();
        let prepared = PreparedTrace::new(&self.trace, &cfg);
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        simulate(&prepared, &cfg, &mut src)
    }
}

/// The PolyFlow machine configuration used by the figure binaries:
/// Figure 8 defaults, with environment overrides for the dependence-model
/// experiments (`POLYFLOW_REG_HINTS=1` enables the capacity-limited
/// hint-entry register model; `POLYFLOW_STORE_SETS=1` enables store-set
/// memory-dependence prediction; both default to oracle synchronization).
pub fn polyflow_config() -> MachineConfig {
    let mut cfg = MachineConfig::hpca07();
    if std::env::var("POLYFLOW_REG_HINTS").is_ok_and(|v| v == "1") {
        cfg.register_dependence = DependenceMode::StoreSet;
    }
    if std::env::var("POLYFLOW_STORE_SETS").is_ok_and(|v| v == "1") {
        cfg.memory_dependence = DependenceMode::StoreSet;
    }
    cfg
}

/// Prepares every workload (or a named subset).
pub fn prepare_all(filter: &[String]) -> Vec<PreparedWorkload> {
    polyflow_workloads::all()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|f| f == w.name))
        .map(PreparedWorkload::prepare)
        .collect()
}

/// Parses CLI args as an optional workload filter.
pub fn cli_filter() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

/// True if `--csv` was passed: figure binaries then emit
/// machine-readable CSV instead of the aligned table.
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Emits a speedup table as CSV (`benchmark,ss_ipc,<columns...>`).
pub fn print_speedup_csv(rows: &[(String, f64, Vec<f64>)], columns: &[String]) {
    println!("benchmark,ss_ipc,{}", columns.join(","));
    for (name, ipc, speedups) in rows {
        let vals: Vec<String> = speedups.iter().map(|s| format!("{s:.2}")).collect();
        println!("{name},{ipc:.3},{}", vals.join(","));
    }
}

/// Prints a speedup table: one row per workload, one column per policy,
/// with a geometric-mean-free arithmetic average row (the paper averages
/// arithmetically).
pub fn print_speedup_table(
    title: &str,
    rows: &[(String, f64, Vec<f64>)], // (name, baseline IPC, speedups %)
    columns: &[String],
) {
    println!("== {title} ==");
    print!("{:<12} {:>8}", "benchmark", "ss IPC");
    for c in columns {
        print!(" {c:>24}");
    }
    println!();
    let mut sums = vec![0.0; columns.len()];
    for (name, ipc, speedups) in rows {
        print!("{name:<12} {ipc:>8.2}");
        for (i, s) in speedups.iter().enumerate() {
            print!(" {s:>23.1}%");
            sums[i] += s;
        }
        println!();
    }
    print!("{:<12} {:>8}", "Average", "");
    for s in &sums {
        print!(" {:>23.1}%", s / rows.len() as f64);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_one_workload() {
        let w = polyflow_workloads::by_name("bzip2").unwrap();
        let pw = PreparedWorkload::prepare(w);
        assert_eq!(pw.name, "bzip2");
        assert!(!pw.trace.is_empty());
        assert!(!pw.analysis.candidates().is_empty());
    }

    #[test]
    fn baseline_and_policy_share_work() {
        let w = polyflow_workloads::by_name("gzip").unwrap();
        let pw = PreparedWorkload::prepare(w);
        let base = pw.run_baseline();
        let pd = pw.run_static(Policy::Postdoms);
        assert_eq!(base.instructions, pd.instructions);
    }
}
