//! Whole-program spawn-point analysis.

use crate::classify::SpawnKind;
use crate::policy::Policy;
use crate::spawn::{SpawnPoint, SpawnTable, StaticDistribution};
use polyflow_cfg::{Cfg, CfgError, DomTree, LoopForest};
use polyflow_dataflow::InterLiveness;
use polyflow_isa::{Inst, Pc, Program, Reg};

/// CFG analyses for one function: the graph, both dominator trees, and the
/// loop forest.
#[derive(Debug, Clone)]
pub struct FunctionAnalysis {
    /// The function's control-flow graph.
    pub cfg: Cfg,
    /// Forward dominators.
    pub dom: DomTree,
    /// Postdominators (virtual-exit rooted).
    pub pdom: DomTree,
    /// Natural loops.
    pub loops: LoopForest,
}

impl FunctionAnalysis {
    /// Runs all analyses for `function`.
    ///
    /// # Panics
    ///
    /// Panics if the function's CFG cannot be built (see
    /// [`Cfg::try_build`]); use [`FunctionAnalysis::try_analyze`] for a
    /// typed error instead.
    pub fn analyze(program: &Program, function: &polyflow_isa::Function) -> FunctionAnalysis {
        FunctionAnalysis::try_analyze(program, function).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FunctionAnalysis::analyze`]: degenerate function
    /// metadata yields a [`CfgError`] instead of a panic.
    pub fn try_analyze(
        program: &Program,
        function: &polyflow_isa::Function,
    ) -> Result<FunctionAnalysis, CfgError> {
        let cfg = Cfg::try_build(program, function)?;
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::postdominators(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        Ok(FunctionAnalysis {
            cfg,
            dom,
            pdom,
            loops,
        })
    }

    /// Extracts every spawn candidate in this function, classified per §2.2.
    ///
    /// * Conditional branches contribute their block's immediate
    ///   postdominator, classified as **LoopFT** (latch or loop-exit
    ///   branch), **Hammock** (forward branch joining within the same
    ///   innermost loop), or **Other**.
    /// * Call instructions contribute their block's immediate postdominator
    ///   as **ProcFT**.
    /// * Indirect jumps contribute their block's immediate postdominator as
    ///   **Other**.
    /// * Each natural loop additionally contributes a **Loop** heuristic
    ///   spawn: from the loop entry to the loop's last latch block (§2.3).
    ///
    /// Branches whose immediate postdominator is the virtual exit (or
    /// undefined) contribute nothing: there is no control-equivalent block
    /// to spawn.
    pub fn candidates(&self) -> Vec<SpawnPoint> {
        let mut out = Vec::new();
        for block in self.cfg.blocks() {
            let b = block.id;
            let tpc = block.terminator_pc();
            let Some(ip) = self.pdom.idom(b) else {
                continue;
            };
            let target = self.cfg.block(ip).start;
            let kind = match self.cfg.terminator(b) {
                Inst::Br { .. } => {
                    if self.loops.is_latch(b) || self.loops.is_loop_exit_block(b) {
                        SpawnKind::LoopFallThrough
                    } else {
                        let same_loop = self.loops.innermost(b).map(|l| l.id)
                            == self.loops.innermost(ip).map(|l| l.id);
                        if same_loop && target > tpc {
                            SpawnKind::Hammock
                        } else {
                            SpawnKind::Other
                        }
                    }
                }
                Inst::Call { .. } | Inst::CallR { .. } => SpawnKind::ProcFallThrough,
                Inst::Jr { .. } => SpawnKind::Other,
                _ => continue,
            };
            out.push(SpawnPoint {
                trigger: tpc,
                target,
                kind,
            });
        }
        // Loop-iteration heuristic spawns (§2.3): spawn the loop's last
        // latch block from the loop entry.
        for l in self.loops.loops() {
            let Some(&last_latch) = l.latches.iter().max_by_key(|&&b| self.cfg.block(b).start)
            else {
                continue;
            };
            // Only loops closed by a conditional branch are spawnable this
            // way (an unconditional latch has no iteration decision).
            if !matches!(self.cfg.terminator(last_latch), Inst::Br { .. }) {
                continue;
            }
            out.push(SpawnPoint {
                trigger: self.cfg.block(l.header).start,
                target: self.cfg.block(last_latch).start,
                kind: SpawnKind::Loop,
            });
        }
        out
    }
}

/// Spawn-point analysis over every function of a program.
///
/// This is the compiler side of the paper's system: it produces the spawn
/// hint information that is "loaded into the hint cache on demand" (§2.1).
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    functions: Vec<FunctionAnalysis>,
    candidates: Vec<SpawnPoint>,
    liveness: InterLiveness,
}

impl ProgramAnalysis {
    /// Analyzes every function in `program`.
    ///
    /// Functions whose CFG cannot be built — degenerate metadata that the
    /// [`polyflow_isa::ProgramBuilder`] never produces — are skipped here
    /// rather than panicking; [`crate::verify`] reports each one as a
    /// `degenerate-cfg` diagnostic.
    pub fn analyze(program: &Program) -> ProgramAnalysis {
        Self::analyze_inner(program, None)
    }

    /// [`ProgramAnalysis::analyze`] with an explicit worker count for the
    /// supergraph liveness solve (the dominant cost on large programs).
    /// The solver is bit-identical at every `jobs`, so results never
    /// depend on the worker count — only wall-clock does.
    pub fn analyze_with_jobs(program: &Program, jobs: usize) -> ProgramAnalysis {
        Self::analyze_inner(program, Some(jobs))
    }

    fn analyze_inner(program: &Program, jobs: Option<usize>) -> ProgramAnalysis {
        let functions: Vec<FunctionAnalysis> = program
            .functions()
            .iter()
            .filter_map(|f| FunctionAnalysis::try_analyze(program, f).ok())
            .collect();
        let candidates = functions
            .iter()
            .flat_map(FunctionAnalysis::candidates)
            .collect();
        let liveness = match jobs {
            Some(j) => InterLiveness::compute_with_jobs(program, j),
            None => InterLiveness::compute(program),
        };
        ProgramAnalysis {
            functions,
            candidates,
            liveness,
        }
    }

    /// Per-function analyses, in program layout order.
    pub fn functions(&self) -> &[FunctionAnalysis] {
        &self.functions
    }

    /// The analysis for a named function.
    pub fn function(&self, name: &str) -> Option<&FunctionAnalysis> {
        self.functions
            .iter()
            .find(|f| f.cfg.function().name == name)
    }

    /// Every spawn candidate in the program (all kinds).
    pub fn candidates(&self) -> &[SpawnPoint] {
        &self.candidates
    }

    /// The whole-program liveness analysis.
    pub fn liveness(&self) -> &InterLiveness {
        &self.liveness
    }

    /// Registers live immediately before `pc`, in the whole-program sense.
    ///
    /// For a spawn target this is the set of registers the spawned task may
    /// read before writing — exactly what the Task Spawn Unit's hint
    /// entries (§3.1) must forward from the parent. Never includes `r0`.
    pub fn live_in_regs(&self, pc: Pc) -> Vec<Reg> {
        self.liveness.live_regs(pc)
    }

    /// [`ProgramAnalysis::live_in_regs`] as a bit mask (bit `i` = `ri`).
    pub fn live_in_mask(&self, pc: Pc) -> u64 {
        self.liveness.live_mask(pc)
    }

    /// The spawn table for a policy (the hint-cache contents).
    pub fn spawn_table(&self, policy: Policy) -> SpawnTable {
        SpawnTable::from_candidates(self.candidates.iter().copied(), policy)
    }

    /// The static distribution over all postdominator candidates — one bar
    /// of Figure 5.
    pub fn static_distribution(&self) -> StaticDistribution {
        let mut d = StaticDistribution::default();
        for sp in &self.candidates {
            d.add(sp.kind);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

    /// if-then-else inside a loop, plus a call and an indirect jump after.
    fn rich_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let els = b.fresh_label("else");
        let join = b.fresh_label("join");
        let c0 = b.fresh_label("c0");
        let c1 = b.fresh_label("c1");
        let out = b.fresh_label("out");
        // Loop with an embedded hammock.
        b.li(Reg::R1, 0); // 0
        b.bind_label(top);
        b.br_imm(Cond::Eq, Reg::R2, 0, els); // 1,2 hammock branch
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 3 then
        b.jmp(join); // 4
        b.bind_label(els);
        b.alui(AluOp::Add, Reg::R4, Reg::R4, 1); // 5 else
        b.bind_label(join);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 6 join
        b.br_imm(Cond::Lt, Reg::R1, 10, top); // 7,8 loop branch
                                              // Call.
        b.call("callee"); // 9
                          // Indirect dispatch.
        let tbl = b.alloc_label_table(&[c0, c1]);
        b.li(Reg::R5, tbl as i64); // 10
        b.load(Reg::R6, Reg::R5, 0); // 11
        b.jr(Reg::R6, &[c0, c1]); // 12
        b.bind_label(c0);
        b.nop(); // 13
        b.jmp(out); // 14
        b.bind_label(c1);
        b.nop(); // 15
        b.bind_label(out);
        b.halt(); // 16
        b.end_function();
        b.begin_function("callee");
        b.ret();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn classification_covers_all_kinds() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let d = a.static_distribution();
        assert_eq!(d.hammocks, 1, "the if-else join");
        assert_eq!(d.loop_ft, 1, "the loop branch");
        assert_eq!(d.proc_ft, 1, "the call");
        assert_eq!(d.other, 1, "the indirect jump");
        assert_eq!(d.loop_spawns, 1, "the loop-iteration heuristic");
        assert_eq!(d.total_postdom(), 4);
    }

    #[test]
    fn hammock_targets_the_join() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let hammock = a
            .candidates()
            .iter()
            .find(|s| s.kind == SpawnKind::Hammock)
            .unwrap();
        assert_eq!(hammock.trigger, Pc::new(2));
        assert_eq!(hammock.target, Pc::new(6));
    }

    #[test]
    fn loop_ft_targets_after_loop() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let lft = a
            .candidates()
            .iter()
            .find(|s| s.kind == SpawnKind::LoopFallThrough)
            .unwrap();
        assert_eq!(lft.trigger, Pc::new(8));
        assert_eq!(lft.target, Pc::new(9));
    }

    #[test]
    fn proc_ft_targets_return_point() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let pft = a
            .candidates()
            .iter()
            .find(|s| s.kind == SpawnKind::ProcFallThrough)
            .unwrap();
        assert_eq!(pft.trigger, Pc::new(9));
        assert_eq!(pft.target, Pc::new(10));
    }

    #[test]
    fn indirect_jump_is_other_targeting_reconvergence() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let other = a
            .candidates()
            .iter()
            .find(|s| s.kind == SpawnKind::Other)
            .unwrap();
        assert_eq!(other.trigger, Pc::new(12));
        assert_eq!(other.target, Pc::new(16), "join of the two switch cases");
    }

    #[test]
    fn loop_spawn_from_entry_to_latch() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        let ls = a
            .candidates()
            .iter()
            .find(|s| s.kind == SpawnKind::Loop)
            .unwrap();
        // Loop header block starts at pc 1; latch block starts at the join
        // (pc 6, since [6..9) is one block ending in the loop branch).
        assert_eq!(ls.trigger, Pc::new(1));
        assert_eq!(ls.target, Pc::new(6));
    }

    #[test]
    fn branch_with_no_real_ipostdom_is_skipped() {
        // Each branch arm returns separately; ipostdom is the virtual exit.
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let els = b.fresh_label("else");
        b.br_imm(Cond::Eq, Reg::R1, 0, els);
        b.ret();
        b.bind_label(els);
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let a = ProgramAnalysis::analyze(&p);
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn policy_filtering_through_spawn_table() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        assert_eq!(a.spawn_table(Policy::Postdoms).len(), 4);
        assert_eq!(a.spawn_table(Policy::Hammock).len(), 1);
        assert_eq!(a.spawn_table(Policy::Loop).len(), 1);
        assert_eq!(a.spawn_table(Policy::None).len(), 0);
        assert_eq!(
            a.spawn_table(Policy::PostdomsWithout(SpawnKind::Hammock))
                .len(),
            3
        );
    }

    #[test]
    fn function_lookup() {
        let p = rich_program();
        let a = ProgramAnalysis::analyze(&p);
        assert_eq!(a.functions().len(), 2);
        assert!(a.function("callee").is_some());
        assert!(a.function("missing").is_none());
    }

    #[test]
    fn multi_level_break_is_loop_fall_through() {
        // A break out of an inner loop directly to after the outer loop.
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        let outer = b.fresh_label("outer");
        let inner = b.fresh_label("inner");
        let done = b.fresh_label("done");
        b.li(Reg::R1, 0); // 0
        b.bind_label(outer);
        b.li(Reg::R2, 0); // 1
        b.bind_label(inner);
        b.br_imm(Cond::Eq, Reg::R9, 7, done); // 2,3 break out of both loops
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1); // 4
        b.br_imm(Cond::Lt, Reg::R2, 3, inner); // 5,6
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 7
        b.br_imm(Cond::Lt, Reg::R1, 3, outer); // 8,9
        b.bind_label(done);
        b.halt(); // 10
        b.end_function();
        let p = b.build().unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let break_spawn = a
            .candidates()
            .iter()
            .find(|s| s.trigger == Pc::new(3))
            .unwrap();
        assert_eq!(break_spawn.kind, SpawnKind::LoopFallThrough);
        assert_eq!(break_spawn.target, Pc::new(10));
    }
}
