//! The task-selection policies evaluated in the paper's §4.

use crate::classify::SpawnKind;
use std::fmt;

/// A task-selection (spawn) policy: which kinds of spawn points the Task
/// Spawn Unit may act on.
///
/// ```
/// use polyflow_core::{Policy, SpawnKind};
///
/// assert!(Policy::Postdoms.admits(SpawnKind::Hammock));
/// assert!(!Policy::Postdoms.admits(SpawnKind::Loop));
/// assert_eq!(Policy::LoopFt.name(), "loopFT");
/// ```
///
/// The variants map one-to-one onto the configurations in the paper's
/// evaluation:
///
/// * Figure 9 (individual heuristics): [`Policy::Loop`],
///   [`Policy::LoopFt`], [`Policy::ProcFt`], [`Policy::Hammock`],
///   [`Policy::Other`], and [`Policy::Postdoms`].
/// * Figure 10 (combinations): [`Policy::LoopPlusLoopFt`],
///   [`Policy::LoopFtPlusProcFt`], [`Policy::LoopProcFtLoopFt`].
/// * Figure 11 (exclusions): [`Policy::PostdomsWithout`].
/// * The superscalar baseline spawns nothing: [`Policy::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// No spawning (the superscalar baseline).
    None,
    /// Loop-iteration spawns only.
    Loop,
    /// Loop fall-through spawns only.
    LoopFt,
    /// Procedure fall-through spawns only.
    ProcFt,
    /// Hammock spawns only.
    Hammock,
    /// "Other" postdominator spawns only.
    Other,
    /// All immediate-postdominator spawns (control-equivalent spawning).
    Postdoms,
    /// Loop + loop fall-through (Figure 10).
    LoopPlusLoopFt,
    /// Loop fall-through + procedure fall-through (Figure 10).
    LoopFtPlusProcFt,
    /// Loop + procedure fall-through + loop fall-through (Figure 10).
    LoopProcFtLoopFt,
    /// Full postdominator set minus one category (Figure 11).
    PostdomsWithout(SpawnKind),
}

impl Policy {
    /// True if this policy admits spawn points of `kind`.
    pub fn admits(self, kind: SpawnKind) -> bool {
        use SpawnKind::*;
        match self {
            Policy::None => false,
            Policy::Loop => kind == Loop,
            Policy::LoopFt => kind == LoopFallThrough,
            Policy::ProcFt => kind == ProcFallThrough,
            Policy::Hammock => kind == Hammock,
            Policy::Other => kind == Other,
            Policy::Postdoms => kind.is_postdom(),
            Policy::LoopPlusLoopFt => matches!(kind, Loop | LoopFallThrough),
            Policy::LoopFtPlusProcFt => matches!(kind, LoopFallThrough | ProcFallThrough),
            Policy::LoopProcFtLoopFt => {
                matches!(kind, Loop | LoopFallThrough | ProcFallThrough)
            }
            Policy::PostdomsWithout(excluded) => kind.is_postdom() && kind != excluded,
        }
    }

    /// The individual-heuristic policies of Figure 9, in plot order.
    pub fn figure9() -> [Policy; 6] {
        [
            Policy::Loop,
            Policy::LoopFt,
            Policy::ProcFt,
            Policy::Hammock,
            Policy::Other,
            Policy::Postdoms,
        ]
    }

    /// The combination policies of Figure 10, in plot order.
    pub fn figure10() -> [Policy; 4] {
        [
            Policy::LoopPlusLoopFt,
            Policy::LoopFtPlusProcFt,
            Policy::LoopProcFtLoopFt,
            Policy::Postdoms,
        ]
    }

    /// The exclusion policies of Figure 11, in plot order.
    pub fn figure11() -> [Policy; 4] {
        [
            Policy::PostdomsWithout(SpawnKind::LoopFallThrough),
            Policy::PostdomsWithout(SpawnKind::ProcFallThrough),
            Policy::PostdomsWithout(SpawnKind::Hammock),
            Policy::PostdomsWithout(SpawnKind::Other),
        ]
    }

    /// The policy's name as used in the paper's figure legends.
    pub fn name(self) -> String {
        match self {
            Policy::None => "superscalar".into(),
            Policy::Loop => "loop".into(),
            Policy::LoopFt => "loopFT".into(),
            Policy::ProcFt => "procFT".into(),
            Policy::Hammock => "hammock".into(),
            Policy::Other => "other".into(),
            Policy::Postdoms => "postdoms".into(),
            Policy::LoopPlusLoopFt => "loop + loopFT".into(),
            Policy::LoopFtPlusProcFt => "loopFT + procFT".into(),
            Policy::LoopProcFtLoopFt => "loop + procFT + loopFT".into(),
            Policy::PostdomsWithout(k) => format!("postdoms - {}", k.label()),
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_admits_nothing() {
        for k in SpawnKind::POSTDOM_KINDS {
            assert!(!Policy::None.admits(k));
        }
        assert!(!Policy::None.admits(SpawnKind::Loop));
    }

    #[test]
    fn postdoms_admits_exactly_the_four_categories() {
        for k in SpawnKind::POSTDOM_KINDS {
            assert!(Policy::Postdoms.admits(k));
        }
        assert!(!Policy::Postdoms.admits(SpawnKind::Loop));
    }

    #[test]
    fn individual_policies_are_disjoint() {
        let singles = [
            (Policy::Loop, SpawnKind::Loop),
            (Policy::LoopFt, SpawnKind::LoopFallThrough),
            (Policy::ProcFt, SpawnKind::ProcFallThrough),
            (Policy::Hammock, SpawnKind::Hammock),
            (Policy::Other, SpawnKind::Other),
        ];
        for (p, k) in singles {
            assert!(p.admits(k), "{p} should admit {k}");
            for (q, j) in singles {
                if p != q {
                    assert!(!p.admits(j), "{p} should not admit {j}");
                }
            }
        }
    }

    #[test]
    fn exclusions_drop_exactly_one_kind() {
        for excluded in SpawnKind::POSTDOM_KINDS {
            let p = Policy::PostdomsWithout(excluded);
            for k in SpawnKind::POSTDOM_KINDS {
                assert_eq!(p.admits(k), k != excluded);
            }
            assert!(!p.admits(SpawnKind::Loop));
        }
    }

    #[test]
    fn combinations_match_figure10() {
        assert!(Policy::LoopPlusLoopFt.admits(SpawnKind::Loop));
        assert!(Policy::LoopPlusLoopFt.admits(SpawnKind::LoopFallThrough));
        assert!(!Policy::LoopPlusLoopFt.admits(SpawnKind::Hammock));
        assert!(Policy::LoopFtPlusProcFt.admits(SpawnKind::ProcFallThrough));
        assert!(!Policy::LoopFtPlusProcFt.admits(SpawnKind::Loop));
        assert!(Policy::LoopProcFtLoopFt.admits(SpawnKind::Loop));
        assert!(!Policy::LoopProcFtLoopFt.admits(SpawnKind::Other));
    }

    #[test]
    fn names_match_legends() {
        assert_eq!(Policy::Postdoms.name(), "postdoms");
        assert_eq!(
            Policy::PostdomsWithout(SpawnKind::Hammock).name(),
            "postdoms - Hammock"
        );
        assert_eq!(
            Policy::LoopProcFtLoopFt.to_string(),
            "loop + procFT + loopFT"
        );
    }

    #[test]
    fn figure_lists_have_expected_sizes() {
        assert_eq!(Policy::figure9().len(), 6);
        assert_eq!(Policy::figure10().len(), 4);
        assert_eq!(Policy::figure11().len(), 4);
    }
}
