//! Spawn points, the spawn table (hint cache contents), and static
//! distribution statistics (Figure 5).

use crate::classify::SpawnKind;
use crate::policy::Policy;
use polyflow_isa::Pc;
use std::collections::HashMap;
use std::fmt;

/// A static spawn opportunity.
///
/// When a task's fetch unit reaches `trigger`, the Task Spawn Unit may
/// create a new task beginning at `target` (paper §2.1: the hint cache
/// "associates control-equivalent spawn points with branch PCs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpawnPoint {
    /// The PC whose fetch triggers the spawn (a branch, call, or — for
    /// loop-iteration spawns — the loop entry).
    pub trigger: Pc,
    /// The PC at which the spawned task begins.
    pub target: Pc,
    /// Classification of this spawn point.
    pub kind: SpawnKind,
}

impl fmt::Display for SpawnPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} [{}]", self.trigger, self.target, self.kind)
    }
}

/// The spawn points admitted by one policy, indexed by trigger PC.
///
/// This models the contents of PolyFlow's *spawn hint cache*. Following the
/// paper (§3.2), conflict and capacity misses in the hint cache are not
/// modeled: lookup is by exact PC over the full table.
#[derive(Debug, Clone, Default)]
pub struct SpawnTable {
    points: Vec<SpawnPoint>,
    by_trigger: HashMap<Pc, Vec<usize>>,
}

impl SpawnTable {
    /// Builds a table from candidates, keeping those the policy admits.
    pub fn from_candidates<I>(candidates: I, policy: Policy) -> SpawnTable
    where
        I: IntoIterator<Item = SpawnPoint>,
    {
        let mut table = SpawnTable::default();
        for sp in candidates {
            if policy.admits(sp.kind) {
                table.insert(sp);
            }
        }
        table
    }

    /// Adds a spawn point.
    pub fn insert(&mut self, sp: SpawnPoint) {
        let idx = self.points.len();
        self.points.push(sp);
        self.by_trigger.entry(sp.trigger).or_default().push(idx);
    }

    /// Spawn points triggered by fetching `pc`.
    pub fn lookup(&self, pc: Pc) -> impl Iterator<Item = &SpawnPoint> + '_ {
        self.by_trigger
            .get(&pc)
            .into_iter()
            .flatten()
            .map(move |&i| &self.points[i])
    }

    /// All spawn points, in insertion order.
    pub fn points(&self) -> &[SpawnPoint] {
        &self.points
    }

    /// Number of static spawn points (the totals atop Figure 5's bars).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the table is empty (e.g. the superscalar policy).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The static distribution over kinds (one Figure 5 bar).
    pub fn distribution(&self) -> StaticDistribution {
        let mut d = StaticDistribution::default();
        for sp in &self.points {
            d.add(sp.kind);
        }
        d
    }
}

impl Extend<SpawnPoint> for SpawnTable {
    fn extend<I: IntoIterator<Item = SpawnPoint>>(&mut self, iter: I) {
        for sp in iter {
            self.insert(sp);
        }
    }
}

impl FromIterator<SpawnPoint> for SpawnTable {
    fn from_iter<I: IntoIterator<Item = SpawnPoint>>(iter: I) -> SpawnTable {
        let mut t = SpawnTable::default();
        t.extend(iter);
        t
    }
}

/// Static spawn-point counts per category — one bar of Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticDistribution {
    /// Loop fall-through count.
    pub loop_ft: usize,
    /// Procedure fall-through count.
    pub proc_ft: usize,
    /// Hammock count.
    pub hammocks: usize,
    /// "Other" count.
    pub other: usize,
    /// Loop-iteration heuristic count (not part of the Figure 5 bar).
    pub loop_spawns: usize,
}

impl StaticDistribution {
    /// Records one spawn point.
    pub fn add(&mut self, kind: SpawnKind) {
        match kind {
            SpawnKind::LoopFallThrough => self.loop_ft += 1,
            SpawnKind::ProcFallThrough => self.proc_ft += 1,
            SpawnKind::Hammock => self.hammocks += 1,
            SpawnKind::Other => self.other += 1,
            SpawnKind::Loop => self.loop_spawns += 1,
        }
    }

    /// Count for one postdominator category.
    pub fn count(&self, kind: SpawnKind) -> usize {
        match kind {
            SpawnKind::LoopFallThrough => self.loop_ft,
            SpawnKind::ProcFallThrough => self.proc_ft,
            SpawnKind::Hammock => self.hammocks,
            SpawnKind::Other => self.other,
            SpawnKind::Loop => self.loop_spawns,
        }
    }

    /// Total static postdominator spawns (the number atop a Figure 5 bar).
    pub fn total_postdom(&self) -> usize {
        self.loop_ft + self.proc_ft + self.hammocks + self.other
    }

    /// Percentage of postdominator spawns in `kind` (0–100).
    ///
    /// Returns 0.0 when there are no postdominator spawns.
    pub fn percent(&self, kind: SpawnKind) -> f64 {
        let total = self.total_postdom();
        if total == 0 {
            0.0
        } else {
            100.0 * self.count(kind) as f64 / total as f64
        }
    }
}

impl fmt::Display for StaticDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LoopFT {:.1}% ProcFT {:.1}% Hammocks {:.1}% Other {:.1}% (total {})",
            self.percent(SpawnKind::LoopFallThrough),
            self.percent(SpawnKind::ProcFallThrough),
            self.percent(SpawnKind::Hammock),
            self.percent(SpawnKind::Other),
            self.total_postdom()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(trigger: u32, target: u32, kind: SpawnKind) -> SpawnPoint {
        SpawnPoint {
            trigger: Pc::new(trigger),
            target: Pc::new(target),
            kind,
        }
    }

    #[test]
    fn table_lookup_by_trigger() {
        let mut t = SpawnTable::default();
        t.insert(sp(1, 5, SpawnKind::Hammock));
        t.insert(sp(1, 9, SpawnKind::Other));
        t.insert(sp(3, 7, SpawnKind::LoopFallThrough));
        assert_eq!(t.lookup(Pc::new(1)).count(), 2);
        assert_eq!(t.lookup(Pc::new(3)).count(), 1);
        assert_eq!(t.lookup(Pc::new(2)).count(), 0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_candidates_filters_by_policy() {
        let candidates = vec![
            sp(1, 2, SpawnKind::Hammock),
            sp(3, 4, SpawnKind::Loop),
            sp(5, 6, SpawnKind::ProcFallThrough),
        ];
        let t = SpawnTable::from_candidates(candidates.clone(), Policy::Hammock);
        assert_eq!(t.len(), 1);
        assert_eq!(t.points()[0].kind, SpawnKind::Hammock);
        let t = SpawnTable::from_candidates(candidates.clone(), Policy::Postdoms);
        assert_eq!(t.len(), 2); // loop heuristic excluded
        let t = SpawnTable::from_candidates(candidates, Policy::None);
        assert!(t.is_empty());
    }

    #[test]
    fn distribution_percentages() {
        let mut d = StaticDistribution::default();
        d.add(SpawnKind::Hammock);
        d.add(SpawnKind::Hammock);
        d.add(SpawnKind::LoopFallThrough);
        d.add(SpawnKind::Other);
        d.add(SpawnKind::Loop); // excluded from the bar
        assert_eq!(d.total_postdom(), 4);
        assert_eq!(d.percent(SpawnKind::Hammock), 50.0);
        assert_eq!(d.percent(SpawnKind::LoopFallThrough), 25.0);
        assert_eq!(d.loop_spawns, 1);
        assert!(d.to_string().contains("total 4"));
    }

    #[test]
    fn empty_distribution_has_zero_percent() {
        let d = StaticDistribution::default();
        assert_eq!(d.percent(SpawnKind::Hammock), 0.0);
        assert_eq!(d.total_postdom(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let t: SpawnTable = vec![sp(0, 1, SpawnKind::Other)].into_iter().collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t.distribution().other, 1);
    }

    #[test]
    fn display_spawn_point() {
        let s = sp(1, 2, SpawnKind::Hammock).to_string();
        assert!(s.contains("Hammock"));
        assert!(s.contains("->"));
    }
}
