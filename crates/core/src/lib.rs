//! Task-selection (spawn) policies based on immediate postdominance — the
//! core contribution of *Exploiting Postdominance for Speculative
//! Parallelization* (HPCA 2007).
//!
//! The paper's thesis: a speculative-parallelization system should spawn a
//! new task at the **immediate postdominator of every conditional branch**
//! ("control-equivalent spawning", §2). This crate implements:
//!
//! * [`SpawnKind`] — the four categories of postdominator-derived spawn
//!   points (loop fall-through, procedure fall-through, simple hammock,
//!   other; paper §2.2 / Figure 5), plus the classic *loop-iteration*
//!   heuristic spawn (§2.3).
//! * [`Policy`] — the task-selection policies evaluated in §4: each
//!   individual heuristic, the heuristic combinations of Figure 10, the
//!   exclusion ablations of Figure 11, and full control-equivalent
//!   spawning.
//! * [`ProgramAnalysis`] — runs the CFG/postdominator analyses over every
//!   function of a program and extracts [`SpawnPoint`]s.
//! * [`SpawnTable`] — the contents of the paper's *spawn hint cache*
//!   (§2.1, §3.1): a map from trigger PC to spawn target consumed by the
//!   Task Spawn Unit in `polyflow-sim`.
//!
//! # Example
//!
//! ```
//! use polyflow_core::{Policy, ProgramAnalysis};
//! use polyflow_isa::{ProgramBuilder, Reg, Cond, AluOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.begin_function("main");
//! let skip = b.fresh_label("skip");
//! b.br_imm(Cond::Eq, Reg::R1, 0, skip);   // a hammock branch
//! b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
//! b.bind_label(skip);
//! b.halt();
//! b.end_function();
//! let program = b.build()?;
//!
//! let analysis = ProgramAnalysis::analyze(&program);
//! let table = analysis.spawn_table(Policy::Postdoms);
//! assert_eq!(table.len(), 1); // the if-then join is a hammock spawn point
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod classify;
mod policy;
mod spawn;
mod verify;

pub use analysis::{FunctionAnalysis, ProgramAnalysis};
pub use classify::SpawnKind;
pub use policy::Policy;
pub use spawn::{SpawnPoint, SpawnTable, StaticDistribution};
pub use verify::{
    check_spawn_points, verify, CheckKind, Diagnostic, HintPressure, VerifyOptions, VerifyReport,
};
