//! Static verification of programs and their spawn tables.
//!
//! The paper's spawn machinery rests on structural facts the rest of the
//! pipeline silently assumes: every spawn target postdominates its
//! trigger, immediate-postdominator computation is correct, functions are
//! well terminated, and so on. This module re-derives each assumption as
//! an explicit check and reports violations as [`Diagnostic`]s:
//!
//! * **unreachable blocks** — dead code the CFG builder materialized;
//! * **use of an undefined register** — a read no definition reaches
//!   (policy-controlled via [`EntryDefs`], see [`VerifyOptions`]);
//! * **malformed terminators** — control transfers that leave the
//!   enclosing function other than by call/return/halt, or functions
//!   whose final instruction can fall off the end;
//! * **irreducible loops** — retreating edges whose target does not
//!   dominate their source (the loop forest, and therefore loop-derived
//!   spawn classification, is only meaningful on reducible flow graphs);
//! * **immediate-postdominator mismatches** — the production iterative
//!   solver cross-checked against the set-based reference oracle;
//! * **illegal spawn points** — a postdominator-kind spawn whose target
//!   does not postdominate its trigger, or a loop-iteration spawn whose
//!   target is not a latch of the triggering header.
//!
//! Alongside the pass/fail diagnostics, [`verify`] reports [`HintPressure`]
//! for every spawn point: the statically predicted live-in registers of
//! the spawned task versus the hint cache's register-slot capacity
//! (`hint_register_slots`, §3.1). Overflow is not an error — the hardware
//! degrades by synchronizing on a conservative mask — so pressure is a
//! report, not a diagnostic.

use crate::analysis::ProgramAnalysis;
use crate::classify::SpawnKind;
use crate::spawn::SpawnPoint;
use polyflow_cfg::{reference, BlockId, Cfg, DomTree};
use polyflow_dataflow::{EntryDefs, ReachingDefs};
use polyflow_isa::{Inst, Pc, Program, Reg};
use std::fmt;

/// What a [`Diagnostic`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A basic block no path from the function entry reaches.
    Unreachable,
    /// A register read that no definition reaches.
    UndefinedUse,
    /// A control transfer that exits the function body, or a function
    /// whose last instruction can fall off the end.
    MalformedTerminator,
    /// A retreating edge whose target does not dominate its source.
    IrreducibleLoop,
    /// The iterative immediate-postdominator solver disagrees with the
    /// set-based reference computation.
    IpostdomMismatch,
    /// A spawn point violating the postdominance (or latch) contract.
    IllegalSpawn,
    /// A function whose CFG cannot be built at all (empty body, or a
    /// range past the program's end). [`ProgramAnalysis::analyze`] skips
    /// such functions instead of panicking; this check reports them.
    DegenerateCfg,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Unreachable => "unreachable-block",
            CheckKind::UndefinedUse => "undefined-use",
            CheckKind::MalformedTerminator => "malformed-terminator",
            CheckKind::IrreducibleLoop => "irreducible-loop",
            CheckKind::IpostdomMismatch => "ipostdom-mismatch",
            CheckKind::IllegalSpawn => "illegal-spawn",
            CheckKind::DegenerateCfg => "degenerate-cfg",
        };
        f.write_str(s)
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub check: CheckKind,
    /// The function the finding is in.
    pub function: String,
    /// The instruction the finding is anchored to (a block's first
    /// instruction for block-level findings).
    pub pc: Pc,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.check, self.function, self.pc, self.message
        )
    }
}

/// Statically predicted hint-cache occupancy of one spawn point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintPressure {
    /// The spawn point.
    pub spawn: SpawnPoint,
    /// The spawned task's static live-in registers at the target.
    pub live_in: Vec<Reg>,
    /// The modeled hint-entry register-slot capacity.
    pub slots: usize,
}

impl HintPressure {
    /// True if the live-in set does not fit the hint entry's slots.
    pub fn overflows(&self) -> bool {
        self.live_in.len() > self.slots
    }
}

/// Verifier configuration.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Entry policy for the undefined-use check on the *entry* function.
    /// Non-entry functions always use [`EntryDefs::All`] — their callers
    /// arrive with a fully materialized register file.
    pub entry_defs: EntryDefs,
    /// Hint-entry register slots (the `hint_register_slots` machine
    /// parameter, §3.1) used for the [`HintPressure`] report.
    pub hint_register_slots: usize,
    /// Cross-check immediate postdominators against the O(n²·e)
    /// set-based reference. Exact but slow — worth skipping on very
    /// large programs.
    pub cross_check_reference: bool,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            entry_defs: EntryDefs::All,
            hint_register_slots: 4,
            cross_check_reference: true,
        }
    }
}

/// The outcome of [`verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, in function order.
    pub diagnostics: Vec<Diagnostic>,
    /// Hint-capacity report for every spawn candidate.
    pub hint_pressure: Vec<HintPressure>,
}

impl VerifyReport {
    /// True if no check fired (hint pressure does not count).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The findings of one check.
    pub fn of_kind(&self, check: CheckKind) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics.iter().filter(move |d| d.check == check)
    }

    /// Spawn points whose predicted live-ins exceed the hint slots.
    pub fn hint_overflows(&self) -> impl Iterator<Item = &HintPressure> + '_ {
        self.hint_pressure.iter().filter(|h| h.overflows())
    }
}

/// Runs every static check over `program`.
pub fn verify(program: &Program, analysis: &ProgramAnalysis, opts: &VerifyOptions) -> VerifyReport {
    let mut report = VerifyReport::default();
    let entry_fn = program.function_at(program.entry()).map(|f| f.name.clone());

    // Functions [`ProgramAnalysis::analyze`] skipped because their CFG
    // cannot be built are still lint findings: report the typed build
    // error instead of letting `Cfg::build` panic downstream.
    for f in program.functions() {
        if analysis.function(&f.name).is_none() {
            if let Err(e) = Cfg::try_build(program, f) {
                report.diagnostics.push(Diagnostic {
                    check: CheckKind::DegenerateCfg,
                    function: f.name.clone(),
                    pc: f.entry(),
                    message: e.to_string(),
                });
            }
        }
    }

    for fa in analysis.functions() {
        let cfg = &fa.cfg;
        let name = &cfg.function().name;
        let reachable: Vec<bool> = (0..cfg.len())
            .map(|i| fa.dom.is_reachable(BlockId::from_index(i)))
            .collect();

        check_unreachable(cfg, &reachable, name, &mut report.diagnostics);
        check_terminators(program, cfg, name, &mut report.diagnostics);
        check_reducibility(cfg, &fa.dom, &reachable, name, &mut report.diagnostics);
        if opts.cross_check_reference {
            check_ipostdoms(cfg, &fa.pdom, name, &mut report.diagnostics);
        }

        let policy = if Some(name.as_str()) == entry_fn.as_deref() {
            opts.entry_defs
        } else {
            EntryDefs::All
        };
        let rd = ReachingDefs::compute_with(program, cfg, policy);
        for u in rd.undefined_uses(program, cfg, &reachable) {
            report.diagnostics.push(Diagnostic {
                check: CheckKind::UndefinedUse,
                function: name.clone(),
                pc: u.pc,
                message: format!("{} read before any definition reaches it", u.reg),
            });
        }
    }

    check_spawn_points(analysis, analysis.candidates(), &mut report.diagnostics);

    for &sp in analysis.candidates() {
        report.hint_pressure.push(HintPressure {
            spawn: sp,
            live_in: analysis.live_in_regs(sp.target),
            slots: opts.hint_register_slots,
        });
    }
    report
}

fn check_unreachable(cfg: &Cfg, reachable: &[bool], name: &str, out: &mut Vec<Diagnostic>) {
    for block in cfg.blocks() {
        if !reachable[block.id.index()] {
            out.push(Diagnostic {
                check: CheckKind::Unreachable,
                function: name.to_string(),
                pc: block.start,
                message: format!("block {} is unreachable from the function entry", block.id),
            });
        }
    }
}

fn check_terminators(program: &Program, cfg: &Cfg, name: &str, out: &mut Vec<Diagnostic>) {
    let func = cfg.function();
    for block in cfg.blocks() {
        let tpc = block.terminator_pc();
        match cfg.terminator(block.id) {
            Inst::Br { target, .. } | Inst::Jmp { target } if !func.contains(target) => {
                out.push(Diagnostic {
                    check: CheckKind::MalformedTerminator,
                    function: name.to_string(),
                    pc: tpc,
                    message: format!("branch target {target} lies outside the function"),
                });
            }
            Inst::Jr { .. } => {
                for &t in program.jump_targets(tpc) {
                    if !func.contains(t) {
                        out.push(Diagnostic {
                            check: CheckKind::MalformedTerminator,
                            function: name.to_string(),
                            pc: tpc,
                            message: format!("indirect jump target {t} lies outside the function"),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    // The function's final instruction must not fall off the end.
    let last = Pc::new(func.range.end - 1);
    if !matches!(
        program.inst(last),
        Inst::Jmp { .. } | Inst::Jr { .. } | Inst::Ret | Inst::Halt
    ) {
        out.push(Diagnostic {
            check: CheckKind::MalformedTerminator,
            function: name.to_string(),
            pc: last,
            message: "function's last instruction can fall off the end".to_string(),
        });
    }
}

/// A reducible graph's every retreating edge targets a dominator of its
/// source; a violation is (part of) an irreducible loop.
fn check_reducibility(
    cfg: &Cfg,
    dom: &DomTree,
    reachable: &[bool],
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; cfg.len()];
    // Iterative DFS with an explicit edge cursor so we can mark gray/black
    // correctly.
    let mut stack: Vec<(usize, usize)> = vec![(cfg.entry().index(), 0)];
    color[cfg.entry().index()] = GRAY;
    while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
        let succs = cfg.succs(BlockId::from_index(u));
        if *cursor == succs.len() {
            color[u] = BLACK;
            stack.pop();
            continue;
        }
        let v = succs[*cursor].0.index();
        *cursor += 1;
        match color[v] {
            WHITE => {
                color[v] = GRAY;
                stack.push((v, 0));
            }
            GRAY
                // Retreating edge u -> v.
                if reachable[u]
                    && !dom.dominates(BlockId::from_index(v), BlockId::from_index(u))
                => {
                    out.push(Diagnostic {
                        check: CheckKind::IrreducibleLoop,
                        function: name.to_string(),
                        pc: cfg.block(BlockId::from_index(u)).terminator_pc(),
                        message: format!(
                            "back edge into {} whose header does not dominate it \
                             (irreducible loop)",
                            BlockId::from_index(v)
                        ),
                    });
                }
            _ => {}
        }
    }
}

fn check_ipostdoms(cfg: &Cfg, pdom: &DomTree, name: &str, out: &mut Vec<Diagnostic>) {
    let oracle = reference::immediate_postdominators(cfg);
    for block in cfg.blocks() {
        let got = if pdom.is_reachable(block.id) {
            pdom.idom(block.id)
        } else {
            None
        };
        let want = oracle[block.id.index()];
        if got != want {
            out.push(Diagnostic {
                check: CheckKind::IpostdomMismatch,
                function: name.to_string(),
                pc: block.start,
                message: format!(
                    "iterative solver says ipostdom({}) = {:?}, reference says {:?}",
                    block.id, got, want
                ),
            });
        }
    }
}

/// Checks the spawn-point contract for an arbitrary set of points.
///
/// Public so tests (and tools) can validate hand-built spawn tables, not
/// just the ones [`ProgramAnalysis`] derives — which are correct by
/// construction and exercised by [`verify`].
pub fn check_spawn_points(
    analysis: &ProgramAnalysis,
    points: &[SpawnPoint],
    out: &mut Vec<Diagnostic>,
) {
    for sp in points {
        let Some(fa) = analysis
            .functions()
            .iter()
            .find(|f| f.cfg.function().contains(sp.trigger))
        else {
            out.push(Diagnostic {
                check: CheckKind::IllegalSpawn,
                function: "<none>".to_string(),
                pc: sp.trigger,
                message: "spawn trigger lies outside every function".to_string(),
            });
            continue;
        };
        let name = &fa.cfg.function().name;
        let (Some(tb), Some(gb)) = (fa.cfg.block_at(sp.trigger), fa.cfg.block_at(sp.target)) else {
            out.push(Diagnostic {
                check: CheckKind::IllegalSpawn,
                function: name.clone(),
                pc: sp.trigger,
                message: format!(
                    "spawn target {} is not in the trigger's function",
                    sp.target
                ),
            });
            continue;
        };
        match sp.kind {
            SpawnKind::Loop => {
                // The loop-iteration heuristic spawns a latch from its
                // header; the latch does NOT postdominate the header (the
                // loop may exit first) — its contract is latch-of-header.
                let ok = fa
                    .loops
                    .loops()
                    .iter()
                    .any(|l| l.header == tb && l.latches.contains(&gb));
                if !ok {
                    out.push(Diagnostic {
                        check: CheckKind::IllegalSpawn,
                        function: name.clone(),
                        pc: sp.trigger,
                        message: format!(
                            "loop spawn target {} is not a latch of a loop headed at {}",
                            sp.target, sp.trigger
                        ),
                    });
                }
            }
            _ => {
                if !fa.pdom.dominates(gb, tb) {
                    out.push(Diagnostic {
                        check: CheckKind::IllegalSpawn,
                        function: name.clone(),
                        pc: sp.trigger,
                        message: format!(
                            "spawn target {} does not postdominate trigger {}",
                            sp.target, sp.trigger
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, ProgramBuilder};

    fn analyzed(p: &Program) -> ProgramAnalysis {
        ProgramAnalysis::analyze(p)
    }

    /// A healthy program with a loop, a hammock, and a call.
    fn healthy() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let skip = b.fresh_label("skip");
        b.li(Reg::R1, 0); // 0
        b.bind_label(top);
        b.br_imm(Cond::Eq, Reg::R1, 3, skip); // 1,2
        b.call("leaf"); // 3
        b.bind_label(skip);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 4
        b.br_imm(Cond::Lt, Reg::R1, 5, top); // 5,6
        b.halt(); // 7
        b.end_function();
        b.begin_function("leaf");
        b.ret();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn healthy_program_is_clean() {
        let p = healthy();
        let a = analyzed(&p);
        let r = verify(&p, &a, &VerifyOptions::default());
        assert!(r.is_clean(), "unexpected diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.hint_pressure.len(), a.candidates().len());
    }

    #[test]
    fn single_block_functions_are_clean() {
        // The smallest legal CFG shape — one block, entry == exit — must
        // neither panic nor lint (bundled workloads are full of such leaf
        // functions).
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("leaf");
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let a = analyzed(&p);
        let leaf = a.function("leaf").expect("leaf analyzed");
        assert_eq!(leaf.cfg.len(), 1);
        let r = verify(&p, &a, &VerifyOptions::default());
        assert!(r.is_clean(), "unexpected diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn degenerate_cfg_kind_renders() {
        // The check itself only fires on function metadata the builder
        // refuses to produce (see `Cfg::try_build`'s unit tests); pin the
        // lint's rendered name here so tooling can match on it.
        assert_eq!(CheckKind::DegenerateCfg.to_string(), "degenerate-cfg");
    }

    #[test]
    fn dead_code_is_reported_unreachable() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let end = b.fresh_label("end");
        b.jmp(end); // 0
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 1: dead
        b.bind_label(end);
        b.halt(); // 2
        b.end_function();
        let p = b.build().unwrap();
        let a = analyzed(&p);
        let r = verify(&p, &a, &VerifyOptions::default());
        let dead: Vec<_> = r.of_kind(CheckKind::Unreachable).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].pc, Pc::new(1));
        // The dead block reads r1 undefined under Strict — but unreachable
        // blocks are excluded from the undefined-use scan.
        let strict = verify(
            &p,
            &a,
            &VerifyOptions {
                entry_defs: EntryDefs::Strict,
                ..VerifyOptions::default()
            },
        );
        assert!(strict.of_kind(CheckKind::UndefinedUse).next().is_none());
    }

    #[test]
    fn strict_mode_flags_uninitialized_reads() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.alu(AluOp::Add, Reg::R2, Reg::R7, Reg::R0); // 0: reads r7
        b.halt(); // 1
        b.end_function();
        let p = b.build().unwrap();
        let a = analyzed(&p);
        assert!(verify(&p, &a, &VerifyOptions::default()).is_clean());
        let strict = verify(
            &p,
            &a,
            &VerifyOptions {
                entry_defs: EntryDefs::Strict,
                ..VerifyOptions::default()
            },
        );
        let uses: Vec<_> = strict.of_kind(CheckKind::UndefinedUse).collect();
        assert_eq!(uses.len(), 1);
        assert!(uses[0].message.contains("r7"));
    }

    #[test]
    fn cross_function_jump_is_malformed() {
        // The builder validates only that targets are globally in range, so
        // a jump into another function is constructible — and wrong.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let lab = b.fresh_label("x");
        b.jmp(lab); // 0 — resolves into "other"
        b.end_function();
        b.begin_function("other");
        b.bind_label(lab);
        b.halt(); // 1
        b.end_function();
        let p = b.build().unwrap();
        let a = analyzed(&p);
        let r = verify(&p, &a, &VerifyOptions::default());
        let bad: Vec<_> = r.of_kind(CheckKind::MalformedTerminator).collect();
        assert!(!bad.is_empty());
        assert_eq!(bad[0].function, "main");
    }

    #[test]
    fn irreducible_flow_is_detected() {
        // Jump into the middle of a loop body: two entries into the cycle.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let mid = b.fresh_label("mid");
        let top = b.fresh_label("top");
        let end = b.fresh_label("end");
        b.br_imm(Cond::Eq, Reg::R1, 0, mid); // 0,1: sneak into the loop
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1); // 2
        b.bind_label(mid);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // 3
        b.br_imm(Cond::Lt, Reg::R3, 9, top); // 4,5: back edge
        b.jmp(end); // 6
        b.bind_label(end);
        b.halt(); // 7
        b.end_function();
        let p = b.build().unwrap();
        let a = analyzed(&p);
        let r = verify(&p, &a, &VerifyOptions::default());
        assert!(r.of_kind(CheckKind::IrreducibleLoop).next().is_some());
    }

    #[test]
    fn bogus_spawn_points_are_rejected() {
        let p = healthy();
        let a = analyzed(&p);
        let mut out = Vec::new();
        // Target does not postdominate the trigger: pc 3 (the call, on the
        // hammock's then-arm) does not postdominate pc 2 (the branch).
        check_spawn_points(
            &a,
            &[SpawnPoint {
                trigger: Pc::new(2),
                target: Pc::new(3),
                kind: SpawnKind::Hammock,
            }],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].check, CheckKind::IllegalSpawn);

        // A loop spawn whose target is not a latch of the trigger header.
        out.clear();
        check_spawn_points(
            &a,
            &[SpawnPoint {
                trigger: Pc::new(1),
                target: Pc::new(7),
                kind: SpawnKind::Loop,
            }],
            &mut out,
        );
        assert_eq!(out.len(), 1);

        // Derived candidates are legal by construction.
        out.clear();
        check_spawn_points(&a, a.candidates(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hint_pressure_reports_live_ins() {
        let p = healthy();
        let a = analyzed(&p);
        let r = verify(
            &p,
            &a,
            &VerifyOptions {
                hint_register_slots: 0,
                ..VerifyOptions::default()
            },
        );
        // With zero slots, any spawn with a nonempty live-in overflows;
        // the loop-carried counter r1 is live at the loop-branch target.
        assert!(r.hint_overflows().count() > 0);
        let some = r
            .hint_pressure
            .iter()
            .find(|h| h.live_in.contains(&Reg::R1))
            .expect("r1 live at some spawn target");
        assert!(some.overflows());
    }
}
