//! Classification of spawn points into the paper's categories (§2.2).

use std::fmt;

/// The kind of a spawn point.
///
/// The first four are the categories of Figure 5 — tasks beginning at the
/// immediate postdominators of branching instructions. [`SpawnKind::Loop`]
/// is the classic loop-iteration heuristic (§2.3), which is *not* derived
/// from postdominators; control-equivalent spawning recovers its benefit
/// through hammock + loop fall-through spawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpawnKind {
    /// Immediate postdominator of a loop branch (latch or break): the code
    /// after the loop. Exposes outer-loop parallelism and prefetches
    /// distant code.
    LoopFallThrough,
    /// Immediate postdominator of a call instruction: the return point.
    /// Overlaps instruction-cache misses across procedure boundaries.
    ProcFallThrough,
    /// Join of a simple if-then / if-then-else: jumps over hard-to-predict
    /// branches.
    Hammock,
    /// Everything else: immediate postdominators of indirect jumps and of
    /// branches with complex (heuristic-resistant) control flow.
    Other,
    /// Loop-iteration spawn: from the loop entry, spawn the loop's latch
    /// block (§2.3 explains why the latch, not the next header, is the
    /// better target — it makes the induction-variable update local to the
    /// spawned task).
    Loop,
}

impl SpawnKind {
    /// The four postdominator-derived categories, in Figure 5 order.
    pub const POSTDOM_KINDS: [SpawnKind; 4] = [
        SpawnKind::LoopFallThrough,
        SpawnKind::ProcFallThrough,
        SpawnKind::Hammock,
        SpawnKind::Other,
    ];

    /// True if this kind is derived from immediate postdominator analysis.
    pub fn is_postdom(self) -> bool {
        self != SpawnKind::Loop
    }

    /// Short label used in figure output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SpawnKind::LoopFallThrough => "LoopFT",
            SpawnKind::ProcFallThrough => "ProcFT",
            SpawnKind::Hammock => "Hammock",
            SpawnKind::Other => "Other",
            SpawnKind::Loop => "Loop",
        }
    }
}

impl fmt::Display for SpawnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postdom_kinds_exclude_loop() {
        assert!(!SpawnKind::POSTDOM_KINDS.contains(&SpawnKind::Loop));
        assert!(SpawnKind::POSTDOM_KINDS.iter().all(|k| k.is_postdom()));
        assert!(!SpawnKind::Loop.is_postdom());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SpawnKind::LoopFallThrough.to_string(), "LoopFT");
        assert_eq!(SpawnKind::ProcFallThrough.to_string(), "ProcFT");
        assert_eq!(SpawnKind::Hammock.to_string(), "Hammock");
        assert_eq!(SpawnKind::Other.to_string(), "Other");
        assert_eq!(SpawnKind::Loop.to_string(), "Loop");
    }
}
