//! A hermetic work-stealing thread pool.
//!
//! The repository takes no external dependencies (DESIGN.md §8), so this
//! is a minimal std-only pool: scoped worker threads, one mutex-guarded
//! [`StealDeque`] per worker seeded round-robin, owners popping LIFO from
//! the back while idle workers steal FIFO from the front. Results land in
//! index-ordered slots, so the output of [`parallel_map`] is identical to
//! a serial map regardless of worker count or interleaving — the figure
//! binaries rely on this for byte-identical tables at any `--jobs`.
//!
//! This crate sits at the bottom of the workspace (it depends on nothing)
//! so that both the sweep harness (`polyflow-bench`) and the SCC-parallel
//! dataflow solver (`polyflow-dataflow`) can schedule over the same
//! deques without a dependency cycle. `polyflow_bench::pool` re-exports
//! everything here, so existing call sites are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// A work-stealing deque: the owning worker pushes and pops at the back
/// (LIFO, keeping its recently seeded work warm), thieves steal from the
/// front (FIFO, taking the oldest work). A single mutex guards both ends;
/// the grain of pool work (one full cycle-simulation, or one SCC-local
/// dataflow fixpoint) dwarfs the lock cost.
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> StealDeque<T> {
    /// An empty deque.
    pub fn new() -> StealDeque<T> {
        StealDeque {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes work at the owner's end.
    pub fn push(&self, item: T) {
        self.items.lock().unwrap().push_back(item);
    }

    /// Pops the most recently pushed item (owner's end).
    pub fn pop(&self) -> Option<T> {
        self.items.lock().unwrap().pop_back()
    }

    /// Steals the oldest item (thief's end).
    pub fn steal(&self) -> Option<T> {
        self.items.lock().unwrap().pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// True if no work is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resolves the worker count for this process: `--jobs N` / `--jobs=N` on
/// the command line wins, then the `POLYFLOW_JOBS` environment variable,
/// then the number of CPUs the process may run on.
pub fn resolve_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            return parse_jobs(v);
        }
        if a == "--jobs" {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--jobs requires a value"));
            return parse_jobs(v);
        }
    }
    match std::env::var("POLYFLOW_JOBS") {
        Ok(v) if !v.is_empty() => parse_jobs(&v),
        _ => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

fn parse_jobs(v: &str) -> usize {
    let n: usize = v
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("invalid job count {v:?}"));
    n.max(1)
}

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// input order.
///
/// Items are seeded round-robin across per-worker deques; a worker drains
/// its own deque LIFO and steals FIFO from the others when it runs dry.
/// Each item is executed exactly once (removal from a deque is atomic
/// under its mutex), and results are written into index-ordered slots, so
/// the returned vector is identical to `items.map(f)` for every `jobs`.
/// With `jobs <= 1` no threads are spawned at all.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let queues: Vec<StealDeque<(usize, T)>> = (0..jobs).map(|_| StealDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % jobs].push((i, item));
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first, then scan the other deques for prey.
                // No work is ever added after seeding, so an all-empty
                // scan means the map is complete.
                let next = queues[w]
                    .pop()
                    .or_else(|| (1..jobs).find_map(|d| queues[(w + d) % jobs].steal()));
                let Some((i, item)) = next else { break };
                *slots[i].lock().unwrap() = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every item executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn steal_from_empty_returns_none() {
        let d: StealDeque<u32> = StealDeque::new();
        assert!(d.is_empty());
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn owner_pops_lifo_thieves_steal_fifo() {
        let d = StealDeque::new();
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.pop(), Some(3), "owner takes the newest item");
        assert_eq!(d.steal(), Some(0), "thief takes the oldest item");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.steal(), Some(1));
        assert!(d.is_empty());
    }

    #[test]
    fn single_producer_items_stolen_exactly_once_under_contention() {
        const ITEMS: usize = 10_000;
        const THIEVES: usize = 4;
        let d: StealDeque<usize> = StealDeque::new();
        let seen: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();
        let produced = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let d = &d;
            let seen = &seen;
            let produced = &produced;
            // One producer pushes while consuming its own end...
            scope.spawn(move || {
                for i in 0..ITEMS {
                    d.push(i);
                    produced.store(i + 1, Ordering::Release);
                    if i % 3 == 0 {
                        if let Some(j) = d.pop() {
                            seen[j].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(j) = d.pop() {
                    seen[j].fetch_add(1, Ordering::Relaxed);
                }
            });
            // ...and thieves hammer the other end until everything was
            // produced and the deque is drained.
            for _ in 0..THIEVES {
                scope.spawn(move || loop {
                    match d.steal() {
                        Some(j) => {
                            seen[j].fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if produced.load(Ordering::Acquire) == ITEMS && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} executed once");
        }
    }

    #[test]
    fn parallel_map_matches_serial_and_runs_each_item_once() {
        let items: Vec<u64> = (0..257).collect();
        let calls: Vec<AtomicUsize> = items.iter().map(|_| AtomicUsize::new(0)).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for jobs in [1, 2, 4, 7] {
            let got = parallel_map(items.clone(), jobs, |i, x| {
                calls[i].fetch_add(1, Ordering::Relaxed);
                x * x + 1
            });
            assert_eq!(got, expect, "jobs={jobs} must match the serial map");
        }
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                4,
                "item {i}: once per jobs value"
            );
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed_inputs() {
        let empty: Vec<u32> = parallel_map(Vec::new(), 8, |_, x: u32| x);
        assert!(empty.is_empty());
        let tiny = parallel_map(vec![41u32], 8, |_, x| x + 1);
        assert_eq!(tiny, vec![42]);
    }
}
