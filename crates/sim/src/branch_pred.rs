//! Branch prediction: gshare for conditional branches, a return-address
//! stack for returns, and a last-target table for indirect jumps.
//!
//! The timing model is trace-driven, so predictions are computed in a
//! single pass over the trace in program (retirement) order — exactly the
//! stream the equivalent-resource superscalar would train on. The per-entry
//! outcome (`correct` / `mispredicted`) is then replayed by the cycle
//! model. This is the standard trace-driven approximation; DESIGN.md §3
//! records it.

use crate::config::MachineConfig;
use polyflow_isa::{Inst, InstClass, Pc, Trace};
use std::collections::HashMap;

/// A 16 Kbit gshare predictor (2-bit counters, XOR-folded global history).
///
/// ```
/// use polyflow_sim::Gshare;
/// use polyflow_isa::Pc;
///
/// let mut g = Gshare::new(13, 8);
/// for _ in 0..32 {
///     g.update(Pc::new(64), true); // an always-taken loop branch
/// }
/// assert!(g.predict(Pc::new(64)));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `index_bits` counters and `history_bits`
    /// of global history.
    pub fn new(index_bits: usize, history_bits: usize) -> Gshare {
        Gshare {
            counters: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: (1u64 << index_bits) - 1,
        }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        (((pc.index() as u64) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter and global history with the actual outcome.
    ///
    /// Must only be called for *conditional* branches: calls, returns and
    /// indirect jumps have their own predictors, and shifting their
    /// outcomes into the global history would alias unrelated counters
    /// and skew the conditional misprediction rate.
    #[inline]
    pub fn update(&mut self, pc: Pc, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }

    /// The current global history register (shifted only by conditional
    /// branches — exposed so tests can audit that other instruction
    /// classes never pollute it).
    pub fn history(&self) -> u64 {
        self.history
    }
}

/// A bounded return-address stack.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<Pc>,
    capacity: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> ReturnStack {
        ReturnStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a call's return address.
    pub fn push(&mut self, ret: Pc) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<Pc> {
        self.stack.pop()
    }
}

/// Per-trace-entry control-flow prediction outcomes.
#[derive(Debug, Clone)]
pub struct PredictionTrace {
    mispredicted: Vec<bool>,
    cond_branches: u64,
    cond_mispredicts: u64,
    indirect_mispredicts: u64,
    final_history: u64,
}

impl PredictionTrace {
    /// Runs the predictors over `trace` in retirement order.
    pub fn compute(trace: &Trace, config: &MachineConfig) -> PredictionTrace {
        let mut gshare = Gshare::new(config.gshare_index_bits, config.gshare_history_bits);
        let mut ras = ReturnStack::new(config.ras_entries);
        let mut last_target: HashMap<Pc, Pc> = HashMap::new();
        let mut mispredicted = vec![false; trace.len()];
        let mut cond_branches = 0;
        let mut cond_mispredicts = 0;
        let mut indirect_mispredicts = 0;

        for (i, e) in trace.iter().enumerate() {
            match e.class() {
                InstClass::CondBranch => {
                    cond_branches += 1;
                    let predicted = gshare.predict(e.pc);
                    if predicted != e.taken {
                        mispredicted[i] = true;
                        cond_mispredicts += 1;
                    }
                    gshare.update(e.pc, e.taken);
                }
                InstClass::Call => {
                    ras.push(e.pc.next());
                    if matches!(e.inst, Inst::CallR { .. }) {
                        let predicted = last_target.insert(e.pc, e.next_pc);
                        if predicted != Some(e.next_pc) {
                            mispredicted[i] = true;
                            indirect_mispredicts += 1;
                        }
                    }
                }
                InstClass::Ret => {
                    let predicted = ras.pop();
                    if predicted != Some(e.next_pc) {
                        mispredicted[i] = true;
                        indirect_mispredicts += 1;
                    }
                }
                InstClass::IndirectJump => {
                    let predicted = last_target.insert(e.pc, e.next_pc);
                    if predicted != Some(e.next_pc) {
                        mispredicted[i] = true;
                        indirect_mispredicts += 1;
                    }
                }
                _ => {}
            }
        }
        PredictionTrace {
            mispredicted,
            cond_branches,
            cond_mispredicts,
            indirect_mispredicts,
            final_history: gshare.history(),
        }
    }

    /// True if the control transfer at trace index `i` was mispredicted.
    #[inline]
    pub fn mispredicted(&self, i: usize) -> bool {
        self.mispredicted[i]
    }

    /// Retired conditional branches.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branches
    }

    /// Mispredicted conditional branches.
    pub fn cond_mispredicts(&self) -> u64 {
        self.cond_mispredicts
    }

    /// Mispredicted returns and indirect jumps/calls.
    pub fn indirect_mispredicts(&self) -> u64 {
        self.indirect_mispredicts
    }

    /// The gshare global-history register after the full pass — shifted
    /// once per conditional branch and by nothing else (audited by the
    /// call-heavy-trace test).
    pub fn final_history(&self) -> u64 {
        self.final_history
    }

    /// Conditional-branch misprediction rate in [0, 1].
    pub fn cond_misp_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, AluOp, Cond, ProgramBuilder, Reg};

    #[test]
    fn gshare_learns_bias() {
        let mut g = Gshare::new(10, 8);
        let pc = Pc::new(100);
        for _ in 0..10 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
        // History changes the index, so train across the same history
        // pattern.
        let mut correct = 0;
        for _ in 0..100 {
            if g.predict(pc) {
                correct += 1;
            }
            g.update(pc, true);
        }
        assert!(correct > 90);
    }

    #[test]
    fn gshare_learns_alternation_with_history() {
        // Alternating T/NT is perfectly predictable with history.
        let mut g = Gshare::new(12, 8);
        let pc = Pc::new(7);
        let mut correct = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            if g.predict(pc) == taken && i > 100 {
                correct += 1;
            }
            g.update(pc, taken);
        }
        assert!(correct > 280, "only {correct} correct");
    }

    #[test]
    fn return_stack_predicts_nested_returns() {
        let mut ras = ReturnStack::new(8);
        ras.push(Pc::new(10));
        ras.push(Pc::new(20));
        assert_eq!(ras.pop(), Some(Pc::new(20)));
        assert_eq!(ras.pop(), Some(Pc::new(10)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn return_stack_caps_depth() {
        let mut ras = ReturnStack::new(2);
        ras.push(Pc::new(1));
        ras.push(Pc::new(2));
        ras.push(Pc::new(3)); // evicts 1
        assert_eq!(ras.pop(), Some(Pc::new(3)));
        assert_eq!(ras.pop(), Some(Pc::new(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn prediction_trace_on_biased_loop() {
        // A 100-iteration loop: the loop branch mispredicts rarely
        // (final exit + warm-up).
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 400, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let pt = PredictionTrace::compute(&trace, &MachineConfig::hpca07());
        assert_eq!(pt.cond_branches(), 400);
        assert!(pt.cond_misp_rate() < 0.08, "rate {}", pt.cond_misp_rate());
    }

    #[test]
    fn calls_and_returns_predicted_by_ras() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.call("leaf");
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 50, top);
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.nop();
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let pt = PredictionTrace::compute(&trace, &MachineConfig::hpca07());
        // All 50 returns hit in the RAS.
        assert_eq!(pt.indirect_mispredicts(), 0);
    }

    #[test]
    fn call_heavy_trace_leaves_gshare_history_untouched() {
        // A straight-line chain of calls/returns with no conditional
        // branch at all: the gshare history register must stay 0. Calls,
        // returns and indirect jumps are handled by the RAS / last-target
        // table, and feeding them through `Gshare::update` would shift
        // their outcomes into the global history, aliasing unrelated
        // counters and skewing `cond_misp_rate`.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        for _ in 0..40 {
            b.call("leaf");
        }
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.nop();
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let pt = PredictionTrace::compute(&trace, &MachineConfig::hpca07());
        assert_eq!(pt.cond_branches(), 0);
        assert_eq!(
            pt.final_history(),
            0,
            "non-conditional control flow polluted the gshare history"
        );
        // And with conditional branches present, the history shifts
        // exactly once per branch (low bits reflect the last outcomes).
        let mut g = Gshare::new(10, 8);
        g.update(Pc::new(4), true);
        g.update(Pc::new(8), false);
        g.update(Pc::new(12), true);
        assert_eq!(g.history(), 0b101);
    }

    #[test]
    fn stable_indirect_jump_predicted_after_first() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let case = b.fresh_label("case");
        let back = b.fresh_label("back");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.li_label_addr(Reg::R2, case);
        b.jr(Reg::R2, &[case]);
        b.bind_label(case);
        b.bind_label(back);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 20, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let pt = PredictionTrace::compute(&trace, &MachineConfig::hpca07());
        // Only the first (cold) indirect jump mispredicts.
        assert_eq!(pt.indirect_mispredicts(), 1);
    }
}
