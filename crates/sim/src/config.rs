//! Machine configuration (the paper's Figure 8).

use crate::store_set::DependenceMode;

/// Geometry and latencies of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines / self.ways;
        assert!(sets > 0, "cache has no sets");
        sets
    }
}

/// Full machine configuration: pipeline, predictor, task and memory
/// parameters. [`MachineConfig::hpca07`] reproduces Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Pipeline width: fetch/dispatch/issue/retire per cycle (8).
    pub width: usize,
    /// Tasks that may fetch in the same cycle (2 for PolyFlow, 1 for the
    /// superscalar; §3.2).
    pub fetch_tasks_per_cycle: usize,
    /// Maximum simultaneous tasks (8 for PolyFlow, 1 for the superscalar).
    pub max_tasks: usize,
    /// Reorder buffer entries, dynamically shared (512).
    pub rob_entries: usize,
    /// Scheduler entries, dynamically shared (64).
    pub scheduler_entries: usize,
    /// Divert queue entries, dynamically shared (128).
    pub divert_entries: usize,
    /// Identical general-purpose functional units (8).
    pub fn_units: usize,
    /// Minimum branch misprediction penalty in cycles (8).
    pub misprediction_penalty: u64,
    /// Front-end depth: cycles from fetch to earliest dispatch.
    pub decode_latency: u64,
    /// Per-task fetch buffer capacity (fetched, not yet dispatched).
    pub fetch_queue_entries: usize,
    /// gshare: log2 of the number of 2-bit counters (16 Kbit = 8 K
    /// counters = 13 bits).
    pub gshare_index_bits: usize,
    /// gshare global history bits (8).
    pub gshare_history_bits: usize,
    /// Return-address-stack depth for return prediction.
    pub ras_entries: usize,
    /// Level-1 instruction cache (8 KB, 2-way, 128 B lines).
    pub l1i: CacheConfig,
    /// Level-1 data cache (16 KB, 4-way, 64 B lines).
    pub l1d: CacheConfig,
    /// Unified level-2 cache (512 KB, 8-way, 128 B lines).
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// L1 miss (L2 hit) latency in cycles (10).
    pub l1_miss_latency: u64,
    /// L2 miss latency in cycles (100).
    pub l2_miss_latency: u64,
    /// Multiply latency in cycles.
    pub mul_latency: u64,
    /// Maximum dynamic distance (in retired instructions) a spawn target
    /// may lie ahead of its trigger; the Task Spawn Unit "uses a trace to
    /// ensure that tasks are not spawned too far into the future" (§3.2).
    pub max_spawn_distance: u32,
    /// Minimum dynamic distance for a spawn: targets closer than this are
    /// not worth a task context because "the fetch unit will soon fetch
    /// those successor blocks along the conventional control-flow path"
    /// (§2.2).
    pub min_spawn_distance: u32,
    /// Cycles between a producer's dispatch and the release of its
    /// diverted consumers: "a diverted instruction is removed from the
    /// divert queue and dispatched into the scheduler *some time after*
    /// its corresponding producer instruction has been dispatched" (§3.1).
    /// This is the cost of PolyFlow's conservative inter-task
    /// synchronization.
    pub divert_release_delay: u64,
    /// Cycles before a freshly spawned task may begin fetching: the Task
    /// Spawn Unit must set up the new context (rename map checkpoint,
    /// hint-cache dependence entry) before the task is live.
    pub spawn_overhead_cycles: u64,
    /// Enables the Task Spawn Unit's dynamic profitability feedback: "the
    /// Spawn Unit may decide to spawn the new task, depending on dynamic
    /// feedback about which tasks are profitable" (§3.1). A spawn point
    /// whose spawner rarely stalls afterwards is learned to be
    /// unprofitable and throttled.
    pub profitability_feedback: bool,
    /// Stall cycles the spawner must accumulate (after spawning, before
    /// its fetch completes) for the spawn to count as profitable.
    pub profit_stall_threshold: u64,
    /// How inter-task memory dependences are handled (§3.1): oracle
    /// synchronization (default) or store-set prediction with violation
    /// squashes.
    pub memory_dependence: DependenceMode,
    /// How inter-task *register* dependences are handled: oracle
    /// synchronization (default), or the hint-cache model — each spawn
    /// point's 8-byte hint entry (§3.1) holds up to
    /// [`MachineConfig::hint_register_slots`] architectural registers the
    /// spawned task must synchronize on; unlisted dependences execute
    /// speculatively, violate, squash, and train the entry. A task with
    /// more live inter-task registers than the entry can name keeps
    /// violating — a real capacity limit of the paper's design.
    pub register_dependence: DependenceMode,
    /// Registers one hint entry can name (8 bytes ≈ 4 slots).
    pub hint_register_slots: usize,
    /// log2 of the store-set predictor's entry count.
    pub store_set_index_bits: usize,
    /// Cycles a squashed task waits before refetching (recovery).
    pub squash_penalty: u64,
    /// §6 future-work extension: allow *any* task (not only the tail) to
    /// spawn, splitting its own interval. The paper's system "allows each
    /// thread to spawn only a single successor", which it names as the
    /// reason it cannot spawn past the inner branch of a nested hammock.
    pub spawn_from_any_task: bool,
    /// §6 future-work extension: when the oldest task has been blocked on
    /// a full ROB for [`MachineConfig::rob_reclaim_after`] cycles, squash
    /// the youngest task to reclaim its entries (the paper: the ROB "is
    /// unable to reclaim resources from younger threads").
    pub rob_reclamation: bool,
    /// Consecutive ROB-blocked cycles before reclamation triggers.
    pub rob_reclaim_after: u64,
    /// Hard cycle budget: a run that reaches this many cycles without
    /// retiring its whole trace fails with
    /// [`SimError::CyclesExceeded`](crate::SimError::CyclesExceeded).
    /// `u64::MAX` (the default) disables the budget.
    pub max_cycles: u64,
    /// Livelock watchdog: if no instruction retires in any context for
    /// this many consecutive cycles, the run fails with
    /// [`SimError::Livelock`](crate::SimError::Livelock) carrying the
    /// cycle account and recent events for post-mortem.
    pub livelock_window: u64,
}

impl MachineConfig {
    /// The PolyFlow configuration of Figure 8.
    pub fn hpca07() -> MachineConfig {
        MachineConfig {
            width: 8,
            fetch_tasks_per_cycle: 2,
            max_tasks: 8,
            rob_entries: 512,
            scheduler_entries: 64,
            divert_entries: 128,
            fn_units: 8,
            misprediction_penalty: 8,
            decode_latency: 4,
            fetch_queue_entries: 32,
            gshare_index_bits: 13,
            gshare_history_bits: 8,
            ras_entries: 32,
            l1i: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 2,
                line_bytes: 128,
            },
            l1d: CacheConfig {
                size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 128,
            },
            l1_hit_latency: 1,
            l1_miss_latency: 10,
            l2_miss_latency: 100,
            mul_latency: 3,
            max_spawn_distance: 320,
            min_spawn_distance: 4,
            divert_release_delay: 6,
            spawn_overhead_cycles: 3,
            profitability_feedback: true,
            profit_stall_threshold: 4,
            memory_dependence: DependenceMode::OracleSync,
            register_dependence: DependenceMode::OracleSync,
            hint_register_slots: 4,
            store_set_index_bits: 12,
            squash_penalty: 8,
            spawn_from_any_task: false,
            rob_reclamation: false,
            rob_reclaim_after: 16,
            max_cycles: u64::MAX,
            livelock_window: 500_000,
        }
    }

    /// The equivalent-resource superscalar baseline: one task, one fetch
    /// stream, everything else identical (§3.2).
    pub fn superscalar() -> MachineConfig {
        MachineConfig {
            fetch_tasks_per_cycle: 1,
            max_tasks: 1,
            ..Self::hpca07()
        }
    }

    /// True if this configuration can run more than one task.
    pub fn is_multitask(&self) -> bool {
        self.max_tasks > 1
    }

    /// Task-context slots the cycle accountant charges each cycle: the
    /// [`CycleAccount`](crate::CycleAccount) sum invariant is
    /// `sum(buckets) == cycles × contexts()`. Equal to `max_tasks` (one
    /// slot per hardware context, live or idle).
    pub fn contexts(&self) -> u64 {
        self.max_tasks as u64
    }

    /// A deterministic, human-readable fingerprint of **every** semantic
    /// field of the configuration. Two configs with equal fingerprints
    /// run byte-identically on the same workload and policy, so this is
    /// the config component of a result-cache key (`polyflow-serve`
    /// caches simulation results under `(workload, fingerprint, policy)`).
    ///
    /// The fingerprint strictly refines [`predictor_key`]: configs that
    /// share a predictor key (and may therefore share a prepared trace)
    /// still fingerprint differently whenever any non-predictor field —
    /// task geometry, latencies, dependence modes, watchdogs — differs.
    ///
    /// [`predictor_key`]: MachineConfig::predictor_key
    pub fn fingerprint(&self) -> String {
        let dep = |m: &DependenceMode| match m {
            DependenceMode::OracleSync => "oracle",
            DependenceMode::StoreSet => "storeset",
        };
        let cache = |c: &CacheConfig| format!("{}/{}/{}", c.size_bytes, c.ways, c.line_bytes);
        format!(
            "w{} ftc{} mt{} rob{} sch{} dv{} fu{} mp{} dec{} fq{} gi{} gh{} ras{} \
             l1i{} l1d{} l2{} lat{}/{}/{} mul{} sd{}-{} drd{} soh{} pf{}/{} \
             mem:{} reg:{} hrs{} ssi{} sq{} any{} rr{}/{} mc{} lw{}",
            self.width,
            self.fetch_tasks_per_cycle,
            self.max_tasks,
            self.rob_entries,
            self.scheduler_entries,
            self.divert_entries,
            self.fn_units,
            self.misprediction_penalty,
            self.decode_latency,
            self.fetch_queue_entries,
            self.gshare_index_bits,
            self.gshare_history_bits,
            self.ras_entries,
            cache(&self.l1i),
            cache(&self.l1d),
            cache(&self.l2),
            self.l1_hit_latency,
            self.l1_miss_latency,
            self.l2_miss_latency,
            self.mul_latency,
            self.min_spawn_distance,
            self.max_spawn_distance,
            self.divert_release_delay,
            self.spawn_overhead_cycles,
            self.profitability_feedback,
            self.profit_stall_threshold,
            dep(&self.memory_dependence),
            dep(&self.register_dependence),
            self.hint_register_slots,
            self.store_set_index_bits,
            self.squash_penalty,
            self.spawn_from_any_task,
            self.rob_reclamation,
            self.rob_reclaim_after,
            self.max_cycles,
            self.livelock_window,
        )
    }

    /// The subset of the configuration that determines the replayed
    /// branch-prediction outcomes: two configs with equal keys produce
    /// identical `PredictionTrace`s for the same trace, so the prepared
    /// trace can be shared between them (the superscalar baseline and the
    /// PolyFlow machine differ only in task geometry and therefore share
    /// a key). Must be kept in sync with what
    /// [`PredictionTrace::compute`](crate::PredictionTrace::compute)
    /// reads.
    pub fn predictor_key(&self) -> (usize, usize, usize) {
        (
            self.gshare_index_bits,
            self.gshare_history_bits,
            self.ras_entries,
        )
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::hpca07()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_parameters() {
        let c = MachineConfig::hpca07();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.scheduler_entries, 64);
        assert_eq!(c.divert_entries, 128);
        assert_eq!(c.max_tasks, 8);
        assert_eq!(c.misprediction_penalty, 8);
        assert_eq!(c.l1i.size_bytes, 8 * 1024);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l2.line_bytes, 128);
        assert!(c.is_multitask());
    }

    #[test]
    fn superscalar_differs_only_in_tasks() {
        let s = MachineConfig::superscalar();
        assert_eq!(s.max_tasks, 1);
        assert_eq!(s.fetch_tasks_per_cycle, 1);
        assert!(!s.is_multitask());
        let p = MachineConfig::hpca07();
        assert_eq!(s.rob_entries, p.rob_entries);
        assert_eq!(s.l2, p.l2);
    }

    #[test]
    fn fingerprint_refines_predictor_key() {
        let ss = MachineConfig::superscalar();
        let pf = MachineConfig::hpca07();
        // Shared predictor key (prepared-trace sharing) ...
        assert_eq!(ss.predictor_key(), pf.predictor_key());
        // ... but distinct fingerprints (distinct cached results).
        assert_ne!(ss.fingerprint(), pf.fingerprint());
        assert_eq!(pf.fingerprint(), MachineConfig::hpca07().fingerprint());
        let budgeted = MachineConfig {
            max_cycles: 100_000,
            ..MachineConfig::hpca07()
        };
        assert_ne!(budgeted.fingerprint(), pf.fingerprint());
        let storeset = MachineConfig {
            memory_dependence: DependenceMode::StoreSet,
            ..MachineConfig::hpca07()
        };
        assert_ne!(storeset.fingerprint(), pf.fingerprint());
    }

    #[test]
    fn cache_set_math() {
        let c = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 128,
        };
        assert_eq!(c.sets(), 32);
        let c = CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 128,
        };
        assert_eq!(c.sets(), 512);
    }

    #[test]
    #[should_panic(expected = "no sets")]
    fn degenerate_cache_panics() {
        CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 64,
        }
        .sets();
    }
}
