//! Structured simulation events and pluggable trace sinks.
//!
//! The cycle model can narrate a run as a stream of [`SimEvent`]s —
//! spawns, squashes, diverts, stall episodes, retirement batches —
//! delivered to a [`TraceSink`]. Tracing is *zero-cost when off*: the
//! default [`NullSink`] reports [`TraceSink::enabled`]` == false` and the
//! machine skips event construction entirely, so the figure sweeps pay
//! nothing and their output stays byte-identical. Event emission never
//! feeds back into simulation state, so any sink observes the exact same
//! run the null sink would.
//!
//! Three sinks are provided:
//!
//! * [`NullSink`] — discards everything (the default).
//! * [`RingSink`] — keeps the last *N* events in memory (flight-recorder
//!   style, for tests and interactive inspection).
//! * [`JsonlSink`] — serializes each event as one JSON object per line to
//!   any [`std::io::Write`] (hand-rolled writer; the workspace takes no
//!   serde dependency).

use crate::account::Bucket;
use polyflow_core::SpawnKind;
use polyflow_isa::Pc;
use std::collections::VecDeque;

/// One structured event in a simulation run. `task` is the dynamic task
/// uid — an index into `CycleAccount::tasks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// The Task Spawn Unit split the fetch stream.
    Spawn {
        /// Cycle of the spawn.
        cycle: u64,
        /// Uid of the new task.
        task: u32,
        /// Trigger PC (the fetched branch/call that caused the spawn).
        trigger: Pc,
        /// Target PC (start of the new task).
        target: Pc,
        /// Trace index where the new task begins.
        target_index: u32,
        /// Spawn classification.
        kind: SpawnKind,
        /// Live tasks immediately after the spawn.
        live_tasks: u8,
    },
    /// A dependence violation (or ROB reclamation) squashed a task and
    /// everything younger.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// Uid of the oldest squashed task (the violator, or the
        /// youngest task for a reclamation).
        task: u32,
        /// In-flight instructions discarded.
        discarded: u64,
        /// True for §6 ROB-reclamation squashes, false for dependence
        /// violations.
        reclaim: bool,
    },
    /// An instruction entered the divert queue (§3.1).
    Divert {
        /// Cycle of the diversion.
        cycle: u64,
        /// Uid of the task that owns the instruction.
        task: u32,
        /// Trace index of the diverted instruction.
        index: u32,
    },
    /// A task entered a stall episode (see [`Bucket`] for the taxonomy).
    StallBegin {
        /// First stalled cycle.
        cycle: u64,
        /// Uid of the stalled task.
        task: u32,
        /// What the task is stalled on.
        bucket: Bucket,
    },
    /// A task left its current stall episode.
    StallEnd {
        /// First non-stalled cycle.
        cycle: u64,
        /// Uid of the task.
        task: u32,
        /// The bucket of the episode that ended.
        bucket: Bucket,
    },
    /// One or more instructions retired this cycle.
    RetireBatch {
        /// Retirement cycle.
        cycle: u64,
        /// Instructions retired this cycle.
        count: u32,
        /// Trace index of the next unretired instruction.
        retire_ptr: u32,
    },
}

impl SimEvent {
    /// The event's cycle.
    pub fn cycle(&self) -> u64 {
        match *self {
            SimEvent::Spawn { cycle, .. }
            | SimEvent::Squash { cycle, .. }
            | SimEvent::Divert { cycle, .. }
            | SimEvent::StallBegin { cycle, .. }
            | SimEvent::StallEnd { cycle, .. }
            | SimEvent::RetireBatch { cycle, .. } => cycle,
        }
    }

    /// Stable kind tag (the `"event"` field of the JSONL encoding).
    pub fn kind_label(&self) -> &'static str {
        match self {
            SimEvent::Spawn { .. } => "spawn",
            SimEvent::Squash { .. } => "squash",
            SimEvent::Divert { .. } => "divert",
            SimEvent::StallBegin { .. } => "stall_begin",
            SimEvent::StallEnd { .. } => "stall_end",
            SimEvent::RetireBatch { .. } => "retire_batch",
        }
    }

    /// One-line JSON encoding (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"event\":\"{}\",\"cycle\":{}",
            self.kind_label(),
            self.cycle()
        );
        match *self {
            SimEvent::Spawn {
                task,
                trigger,
                target,
                target_index,
                kind,
                live_tasks,
                ..
            } => {
                s.push_str(&format!(
                    ",\"task\":{task},\"trigger\":\"{trigger}\",\"target\":\"{target}\",\
                     \"target_index\":{target_index},\"kind\":\"{kind}\",\"live_tasks\":{live_tasks}"
                ));
            }
            SimEvent::Squash {
                task,
                discarded,
                reclaim,
                ..
            } => {
                s.push_str(&format!(
                    ",\"task\":{task},\"discarded\":{discarded},\"reclaim\":{reclaim}"
                ));
            }
            SimEvent::Divert { task, index, .. } => {
                s.push_str(&format!(",\"task\":{task},\"index\":{index}"));
            }
            SimEvent::StallBegin { task, bucket, .. } | SimEvent::StallEnd { task, bucket, .. } => {
                s.push_str(&format!(",\"task\":{task},\"bucket\":\"{bucket}\""));
            }
            SimEvent::RetireBatch {
                count, retire_ptr, ..
            } => {
                s.push_str(&format!(",\"count\":{count},\"retire_ptr\":{retire_ptr}"));
            }
        }
        s.push('}');
        s
    }
}

/// A consumer of [`SimEvent`]s. Implementations must not assume any
/// particular event ordering beyond nondecreasing cycles.
pub trait TraceSink {
    /// Whether the machine should construct and deliver events at all.
    /// Returning `false` makes tracing free; the value is read once per
    /// run.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event.
    fn event(&mut self, ev: &SimEvent);
}

/// Discards every event; [`TraceSink::enabled`] is `false`, so the
/// machine skips event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&mut self, _ev: &SimEvent) {}
}

/// A flight recorder: keeps the most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<SimEvent>,
    capacity: usize,
    seen: u64,
}

impl RingSink {
    /// A ring holding up to `capacity` events (capacity 0 records
    /// nothing but still counts).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.buf.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events delivered, including evicted ones.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, ev: &SimEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
    }
}

/// Streams events as JSON Lines to any writer.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    w: W,
    written: u64,
    errored: bool,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps `w`; each event becomes one line.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink {
            w,
            written: 0,
            errored: false,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &SimEvent) {
        if self.errored {
            return; // sink failures must never disturb the simulation
        }
        let line = ev.to_json();
        if writeln!(self.w, "{line}").is_err() {
            self.errored = true;
            return;
        }
        self.written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_event(cycle: u64) -> SimEvent {
        SimEvent::Spawn {
            cycle,
            task: 3,
            trigger: Pc::new(5),
            target: Pc::new(9),
            target_index: 40,
            kind: SpawnKind::Hammock,
            live_tasks: 2,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_sink_keeps_last_n() {
        let mut ring = RingSink::new(3);
        assert!(ring.is_empty());
        for c in 0..10 {
            ring.event(&spawn_event(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 10);
        let cycles: Vec<u64> = ring.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(&spawn_event(12));
        sink.event(&SimEvent::RetireBatch {
            cycle: 13,
            count: 8,
            retire_ptr: 64,
        });
        assert_eq!(sink.written(), 2);
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"spawn\",\"cycle\":12,"));
        assert!(lines[0].contains("\"kind\":\"Hammock\""));
        assert!(lines[1].contains("\"retire_ptr\":64"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn every_variant_encodes_its_kind_tag() {
        let events = [
            spawn_event(1),
            SimEvent::Squash {
                cycle: 2,
                task: 1,
                discarded: 17,
                reclaim: false,
            },
            SimEvent::Divert {
                cycle: 3,
                task: 0,
                index: 99,
            },
            SimEvent::StallBegin {
                cycle: 4,
                task: 2,
                bucket: Bucket::BranchStall,
            },
            SimEvent::StallEnd {
                cycle: 5,
                task: 2,
                bucket: Bucket::BranchStall,
            },
            SimEvent::RetireBatch {
                cycle: 6,
                count: 1,
                retire_ptr: 7,
            },
        ];
        for ev in events {
            let json = ev.to_json();
            assert!(
                json.contains(&format!("\"event\":\"{}\"", ev.kind_label())),
                "{json}"
            );
            assert!(json.contains(&format!("\"cycle\":{}", ev.cycle())));
        }
    }
}
