//! Cycle accounting: attributing every simulated cycle-slot to a cause.
//!
//! The paper's central claim is a *mechanism* claim — control-equivalent
//! tasks win by overlapping fetch-stall time (§3.2, Figure 4) — so the
//! simulator must be able to show *where* the cycles went, not just how
//! many there were. A [`CycleAccount`] charges every cycle-slot (one slot
//! per task context per cycle) to exactly one [`Bucket`], globally and
//! per dynamic task, with a hard invariant:
//!
//! ```text
//! sum(buckets) == cycles × contexts
//! ```
//!
//! checked in debug builds after every run ([`CycleAccount::check`]) and
//! locked in by tests over every bundled workload.
//!
//! # Bucket taxonomy
//!
//! Each live task is classified once per cycle, in priority order:
//!
//! 1. [`Bucket::BranchStall`] — fetch frozen on an unresolved mispredicted
//!    branch (the stall control-equivalent tasks overlap).
//! 2. [`Bucket::IcacheStall`] — fetch frozen on an instruction-cache fill.
//! 3. [`Bucket::SquashRecovery`] — refetch delay after a dependence-
//!    violation squash ([`MachineConfig::squash_penalty`]).
//! 4. [`Bucket::SpawnSetup`] — a freshly spawned task waiting out the Task
//!    Spawn Unit's context-setup overhead
//!    ([`MachineConfig::spawn_overhead_cycles`]).
//! 5. [`Bucket::DivertWait`] — not fetch-stalled, but at least one of the
//!    task's instructions sits in the divert queue (the §3.1 conservative
//!    inter-task synchronization cost).
//! 6. [`Bucket::Contention`] — blocked by a structural resource this
//!    cycle: full fetch queue, ROB or scheduler limit, full divert queue,
//!    or losing fetch arbitration to
//!    [`MachineConfig::fetch_tasks_per_cycle`].
//! 7. [`Bucket::Retire`] — none of the above: the task is fetching,
//!    decoding, executing or retiring normally (forward progress).
//!
//! Context slots with no live task are charged to
//! [`Bucket::IdleContext`]. The first four buckets mirror the
//! `SimResult` stall counters one-for-one (a regression net for the
//! counter-consistency audits); the classification itself never feeds
//! back into timing, so accounting is free of observer effects.
//!
//! [`MachineConfig::squash_penalty`]: crate::MachineConfig::squash_penalty
//! [`MachineConfig::spawn_overhead_cycles`]: crate::MachineConfig::spawn_overhead_cycles
//! [`MachineConfig::fetch_tasks_per_cycle`]: crate::MachineConfig::fetch_tasks_per_cycle

use polyflow_core::SpawnKind;
use polyflow_isa::Pc;

/// Number of attribution buckets.
pub const BUCKET_COUNT: usize = 8;

/// Where one task-context cycle-slot went. See the module docs for the
/// exact classification rules and priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Forward progress: fetching, decoding, executing or retiring.
    Retire,
    /// Fetch frozen on an unresolved mispredicted branch.
    BranchStall,
    /// Fetch frozen on an instruction-cache fill.
    IcacheStall,
    /// Instructions serialized in the divert queue (§3.1).
    DivertWait,
    /// Post-squash refetch delay (dependence-violation recovery).
    SquashRecovery,
    /// Spawned-task context setup (Task Spawn Unit overhead).
    SpawnSetup,
    /// Blocked on a structural resource (fetch queue, ROB, scheduler,
    /// divert queue, fetch arbitration).
    Contention,
    /// Context slot with no live task.
    IdleContext,
}

impl Bucket {
    /// Every bucket, in display order.
    pub const ALL: [Bucket; BUCKET_COUNT] = [
        Bucket::Retire,
        Bucket::BranchStall,
        Bucket::IcacheStall,
        Bucket::DivertWait,
        Bucket::SquashRecovery,
        Bucket::SpawnSetup,
        Bucket::Contention,
        Bucket::IdleContext,
    ];

    /// Dense index of this bucket (its position in [`Bucket::ALL`]).
    pub const fn index(self) -> usize {
        match self {
            Bucket::Retire => 0,
            Bucket::BranchStall => 1,
            Bucket::IcacheStall => 2,
            Bucket::DivertWait => 3,
            Bucket::SquashRecovery => 4,
            Bucket::SpawnSetup => 5,
            Bucket::Contention => 6,
            Bucket::IdleContext => 7,
        }
    }

    /// Stable snake_case label (used in tables and the JSON export).
    pub const fn label(self) -> &'static str {
        match self {
            Bucket::Retire => "retire",
            Bucket::BranchStall => "branch_stall",
            Bucket::IcacheStall => "icache_stall",
            Bucket::DivertWait => "divert_wait",
            Bucket::SquashRecovery => "squash_recovery",
            Bucket::SpawnSetup => "spawn_setup",
            Bucket::Contention => "contention",
            Bucket::IdleContext => "idle_context",
        }
    }

    /// True for buckets that represent lost (non-progress) slots.
    pub const fn is_stall(self) -> bool {
        !matches!(self, Bucket::Retire)
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-dynamic-task cycle attribution. A task's account persists after
/// the task retires or is squashed (squashed tasks keep the slots they
/// burned — that *is* the cost of the squash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskAccount {
    /// Trace index where the task's interval begins.
    pub start_index: u32,
    /// Trigger PC of the spawn that created the task (`None` for the
    /// initial task).
    pub created_by: Option<Pc>,
    /// Spawn classification (`None` for the initial task).
    pub kind: Option<SpawnKind>,
    /// Cycle the task was created.
    pub spawn_cycle: u64,
    /// Cycle-slots charged to this task, by [`Bucket::index`]. The
    /// [`Bucket::IdleContext`] entry is always zero (idle slots belong to
    /// no task).
    pub buckets: [u64; BUCKET_COUNT],
}

impl TaskAccount {
    /// Total cycle-slots charged to this task.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Slots lost to stalls (everything except [`Bucket::Retire`]).
    pub fn stalled(&self) -> u64 {
        self.total() - self.buckets[Bucket::Retire.index()]
    }
}

/// The full cycle-slot ledger of one simulation run.
///
/// `contexts` is the machine's task-context count
/// ([`MachineConfig::max_tasks`](crate::MachineConfig::max_tasks)), so
/// the superscalar baseline accounts one slot per cycle and the PolyFlow
/// machine eight. [`CycleAccount::check`] verifies the sum invariant and
/// the per-task decomposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAccount {
    /// Task contexts the machine accounts each cycle.
    pub contexts: u64,
    /// Cycles accounted (equals the run's `SimResult::cycles` for
    /// non-empty traces).
    pub cycles: u64,
    /// Global slot totals, by [`Bucket::index`].
    pub totals: [u64; BUCKET_COUNT],
    /// One account per dynamic task, in creation (uid) order; entry 0 is
    /// the initial task.
    pub tasks: Vec<TaskAccount>,
}

impl CycleAccount {
    /// A fresh ledger for a machine with `contexts` task contexts and the
    /// initial task already registered.
    pub(crate) fn new(contexts: usize) -> CycleAccount {
        CycleAccount {
            contexts: contexts as u64,
            cycles: 0,
            totals: [0; BUCKET_COUNT],
            tasks: vec![TaskAccount {
                start_index: 0,
                created_by: None,
                kind: None,
                spawn_cycle: 0,
                buckets: [0; BUCKET_COUNT],
            }],
        }
    }

    /// Registers a freshly spawned task; returns its uid.
    pub(crate) fn add_task(
        &mut self,
        start_index: u32,
        created_by: Pc,
        kind: SpawnKind,
        spawn_cycle: u64,
    ) -> u32 {
        let uid = self.tasks.len() as u32;
        self.tasks.push(TaskAccount {
            start_index,
            created_by: Some(created_by),
            kind: Some(kind),
            spawn_cycle,
            buckets: [0; BUCKET_COUNT],
        });
        uid
    }

    /// Charges one slot of task `uid` to `bucket`.
    pub(crate) fn charge(&mut self, uid: u32, bucket: Bucket) {
        debug_assert!(bucket != Bucket::IdleContext, "idle slots have no task");
        self.totals[bucket.index()] += 1;
        self.tasks[uid as usize].buckets[bucket.index()] += 1;
    }

    /// Charges `slots` slots of task `uid` to `bucket` in one step — the
    /// bulk form [`charge`](Self::charge) used by the cycle-skip fast
    /// path, where one classification is known to repeat for a whole span
    /// of idle cycles.
    pub(crate) fn charge_many(&mut self, uid: u32, bucket: Bucket, slots: u64) {
        debug_assert!(bucket != Bucket::IdleContext, "idle slots have no task");
        self.totals[bucket.index()] += slots;
        self.tasks[uid as usize].buckets[bucket.index()] += slots;
    }

    /// Charges `slots` idle-context slots (contexts with no live task).
    pub(crate) fn charge_idle(&mut self, slots: u64) {
        self.totals[Bucket::IdleContext.index()] += slots;
    }

    /// The count in one bucket.
    pub fn bucket(&self, b: Bucket) -> u64 {
        self.totals[b.index()]
    }

    /// Total slots accounted (must equal `cycles × contexts`).
    pub fn total_slots(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Share of all slots in `b`, in percent.
    pub fn percent(&self, b: Bucket) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            100.0 * self.bucket(b) as f64 / total as f64
        }
    }

    /// Verifies the ledger: every slot charged exactly once
    /// (`sum(buckets) == cycles × contexts`) and the global totals
    /// decompose exactly into the per-task accounts plus idle slots.
    pub fn check(&self) -> Result<(), String> {
        let slots = self.total_slots();
        let expected = self.cycles * self.contexts;
        if slots != expected {
            return Err(format!(
                "cycle-account sum invariant violated: {slots} slots accounted, \
                 expected cycles × contexts = {} × {} = {expected}",
                self.cycles, self.contexts
            ));
        }
        for (i, b) in Bucket::ALL.iter().enumerate() {
            let per_task: u64 = self.tasks.iter().map(|t| t.buckets[i]).sum();
            let expected = if *b == Bucket::IdleContext {
                0
            } else {
                self.totals[i]
            };
            if per_task != expected {
                return Err(format!(
                    "bucket {b}: per-task sum {per_task} != global total {expected}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_match_all_order() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(Bucket::ALL.len(), BUCKET_COUNT);
    }

    #[test]
    fn labels_are_unique_snake_case() {
        let labels: Vec<&str> = Bucket::ALL.iter().map(|b| b.label()).collect();
        for (i, l) in labels.iter().enumerate() {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert!(!labels[i + 1..].contains(l), "duplicate label {l}");
        }
    }

    #[test]
    fn charge_and_check_balance() {
        let mut a = CycleAccount::new(2);
        let t1 = a.add_task(100, Pc::new(10), SpawnKind::Hammock, 5);
        // Cycle 0: both contexts live.
        a.charge(0, Bucket::Retire);
        a.charge(t1, Bucket::SpawnSetup);
        // Cycle 1: one live, one idle.
        a.charge(0, Bucket::BranchStall);
        a.charge_idle(1);
        a.cycles = 2;
        assert_eq!(a.total_slots(), 4);
        a.check().unwrap();
        assert_eq!(a.bucket(Bucket::Retire), 1);
        assert_eq!(a.tasks[t1 as usize].stalled(), 1);
        assert_eq!(a.percent(Bucket::IdleContext), 25.0);
    }

    #[test]
    fn check_catches_missing_slots() {
        let mut a = CycleAccount::new(4);
        a.charge(0, Bucket::Retire);
        a.cycles = 1;
        let err = a.check().unwrap_err();
        assert!(err.contains("sum invariant"), "{err}");
    }

    #[test]
    fn check_catches_per_task_mismatch() {
        let mut a = CycleAccount::new(1);
        a.charge(0, Bucket::Retire);
        a.cycles = 1;
        a.tasks[0].buckets[Bucket::Retire.index()] = 0; // corrupt
        let err = a.check().unwrap_err();
        assert!(err.contains("per-task sum"), "{err}");
    }

    #[test]
    fn default_account_is_balanced() {
        CycleAccount::default().check().unwrap();
    }

    #[test]
    fn stall_classification() {
        assert!(!Bucket::Retire.is_stall());
        for b in Bucket::ALL.iter().skip(1) {
            assert!(b.is_stall(), "{b} should count as a stall");
        }
    }
}
