//! Sources of spawn decisions for the Task Spawn Unit.

use polyflow_core::{SpawnKind, SpawnTable};
use polyflow_isa::{InstClass, Pc, TraceEntry};
use polyflow_reconv::{ReconvConfig, ReconvergencePredictor};
use std::collections::HashSet;

/// Supplies spawn decisions to the Task Spawn Unit.
///
/// The simulator calls [`spawn_at`](Self::spawn_at) for every instruction
/// fetched by the tail task, and [`on_retire`](Self::on_retire) for every
/// retired instruction — the hook dynamic mechanisms (the reconvergence
/// predictor, §4.4) use to train on the retirement stream.
pub trait SpawnSource {
    /// A spawn opportunity triggered by fetching `entry`, if any.
    ///
    /// Takes `&mut self` so stateful sources (the demand-filled
    /// [`HintCacheSource`], dynamic predictors) can update themselves at
    /// lookup time.
    fn spawn_at(&mut self, entry: &TraceEntry) -> Option<(Pc, SpawnKind)>;

    /// Observes one retired instruction (default: ignore).
    fn on_retire(&mut self, entry: &TraceEntry) {
        let _ = entry;
    }

    /// True when this source observes the retirement stream. The machine
    /// asks once per run and skips the per-retire virtual call entirely
    /// when the answer is `false` (static and no-spawn sources).
    fn wants_retire(&self) -> bool {
        false
    }
}

/// A compiler-driven source: spawn points come from a static
/// [`SpawnTable`] (the hint-cache contents).
#[derive(Debug, Clone)]
pub struct StaticSpawnSource {
    table: SpawnTable,
    /// Dense trigger membership keyed by [`Pc::index`]: the Task Spawn
    /// Unit probes every instruction the tail task fetches, and almost
    /// none are triggers, so the hash-map lookup hides behind one load.
    is_trigger: Vec<bool>,
}

impl StaticSpawnSource {
    /// Wraps a spawn table.
    pub fn new(table: SpawnTable) -> StaticSpawnSource {
        let max = table
            .points()
            .iter()
            .map(|sp| sp.trigger.index())
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut is_trigger = vec![false; max];
        for sp in table.points() {
            is_trigger[sp.trigger.index()] = true;
        }
        StaticSpawnSource { table, is_trigger }
    }

    /// The underlying table.
    pub fn table(&self) -> &SpawnTable {
        &self.table
    }
}

impl SpawnSource for StaticSpawnSource {
    fn spawn_at(&mut self, entry: &TraceEntry) -> Option<(Pc, SpawnKind)> {
        if !self
            .is_trigger
            .get(entry.pc.index())
            .copied()
            .unwrap_or(false)
        {
            return None;
        }
        self.table
            .lookup(entry.pc)
            .next()
            .map(|sp| (sp.target, sp.kind))
    }
}

/// A source that never spawns (the superscalar baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpawn;

impl SpawnSource for NoSpawn {
    fn spawn_at(&mut self, _entry: &TraceEntry) -> Option<(Pc, SpawnKind)> {
        None
    }
}

/// The dynamic source of §4.4: a reconvergence predictor trained on the
/// retirement stream supplies spawn targets for conditional branches, and
/// call instructions spawn their fall-through ("the system also spawns
/// procedure fall-throughs at call instructions", §4.4).
#[derive(Debug)]
pub struct ReconvSpawnSource {
    predictor: ReconvergencePredictor,
    /// Branch PCs whose prediction should not be used as a spawn (e.g.
    /// none by default; reserved for experiments).
    suppressed: HashSet<Pc>,
}

impl ReconvSpawnSource {
    /// Creates the source with a fresh (cold) predictor — warm-up effects
    /// are therefore modeled, as in the paper.
    pub fn new(config: ReconvConfig) -> ReconvSpawnSource {
        ReconvSpawnSource {
            predictor: ReconvergencePredictor::new(config),
            suppressed: HashSet::new(),
        }
    }

    /// Wraps an already-trained predictor (for offline experiments).
    pub fn with_predictor(predictor: ReconvergencePredictor) -> ReconvSpawnSource {
        ReconvSpawnSource {
            predictor,
            suppressed: HashSet::new(),
        }
    }

    /// Access to the predictor (e.g. for post-run statistics).
    pub fn predictor(&self) -> &ReconvergencePredictor {
        &self.predictor
    }

    /// Suppresses spawning at one branch PC.
    pub fn suppress(&mut self, pc: Pc) {
        self.suppressed.insert(pc);
    }
}

impl SpawnSource for ReconvSpawnSource {
    fn spawn_at(&mut self, entry: &TraceEntry) -> Option<(Pc, SpawnKind)> {
        if self.suppressed.contains(&entry.pc) {
            return None;
        }
        match entry.class() {
            InstClass::CondBranch | InstClass::IndirectJump => {
                // Statically adjacent targets are fine: a loop branch's
                // fall-through is `pc + 1` in the layout but dynamically
                // far; the Task Spawn Unit's distance check filters the
                // genuinely useless cases.
                let target = self.predictor.predict(entry.pc)?;
                Some((target, SpawnKind::Other))
            }
            InstClass::Call => Some((entry.pc.next(), SpawnKind::ProcFallThrough)),
            _ => None,
        }
    }

    fn on_retire(&mut self, entry: &TraceEntry) {
        self.predictor.observe(entry);
    }

    fn wants_retire(&self) -> bool {
        true
    }
}

/// A finite, set-associative spawn hint cache in front of another source.
///
/// The paper's hint cache associates spawn points with branch PCs and is
/// "loaded ... on demand" (§2.1), but its evaluation does **not** model
/// capacity or conflict misses (§3.2). This wrapper adds that effect as
/// an extension: a trigger whose hint entry is not resident yields no
/// spawn this time and is filled for subsequent fetches. Use it to study
/// how much hint storage control-equivalent spawning actually needs
/// (`cargo run -p polyflow-bench --bin ablations`).
#[derive(Debug)]
pub struct HintCacheSource<S> {
    inner: S,
    cache: crate::cache::Cache,
    misses: u64,
}

impl<S: SpawnSource> HintCacheSource<S> {
    /// Wraps `inner` with a hint cache of `entries` total hint slots and
    /// the given associativity. Each slot maps one trigger PC (modeled as
    /// an 8-byte line, matching the paper's 8-byte hint entries).
    pub fn new(inner: S, entries: usize, ways: usize) -> HintCacheSource<S> {
        let config = crate::config::CacheConfig {
            size_bytes: entries * 8,
            ways,
            line_bytes: 8,
        };
        HintCacheSource {
            inner,
            cache: crate::cache::Cache::new(config),
            misses: 0,
        }
    }

    /// Demand misses observed (spawn opportunities deferred).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SpawnSource> SpawnSource for HintCacheSource<S> {
    fn spawn_at(&mut self, entry: &TraceEntry) -> Option<(Pc, SpawnKind)> {
        let spawn = self.inner.spawn_at(entry)?;
        // Only triggers with hints occupy cache slots; an absent entry is
        // filled on demand and the opportunity is lost this once.
        if self.cache.access(entry.pc.byte_addr() * 2) {
            Some(spawn)
        } else {
            self.misses += 1;
            None
        }
    }

    fn on_retire(&mut self, entry: &TraceEntry) {
        self.inner.on_retire(entry);
    }

    fn wants_retire(&self) -> bool {
        self.inner.wants_retire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_core::SpawnPoint;
    use polyflow_isa::{Cond, Inst, Reg};

    fn entry(pc: u32, inst: Inst) -> TraceEntry {
        TraceEntry {
            pc: Pc::new(pc),
            inst,
            taken: false,
            next_pc: Pc::new(pc + 1),
            mem_addr: None,
        }
    }

    #[test]
    fn static_source_looks_up_trigger() {
        let mut table = SpawnTable::default();
        table.insert(SpawnPoint {
            trigger: Pc::new(5),
            target: Pc::new(9),
            kind: SpawnKind::Hammock,
        });
        let mut src = StaticSpawnSource::new(table);
        let hit = entry(5, Inst::Nop);
        assert_eq!(src.spawn_at(&hit), Some((Pc::new(9), SpawnKind::Hammock)));
        let miss = entry(6, Inst::Nop);
        assert_eq!(src.spawn_at(&miss), None);
        assert_eq!(src.table().len(), 1);
    }

    #[test]
    fn no_spawn_never_spawns() {
        let mut src = NoSpawn;
        assert_eq!(src.spawn_at(&entry(0, Inst::Nop)), None);
    }

    #[test]
    fn reconv_source_spawns_call_fallthrough_immediately() {
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        let call = entry(
            7,
            Inst::Call {
                target: Pc::new(100),
            },
        );
        assert_eq!(
            src.spawn_at(&call),
            Some((Pc::new(8), SpawnKind::ProcFallThrough))
        );
    }

    #[test]
    fn reconv_source_is_cold_for_branches() {
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        let br = entry(
            3,
            Inst::Br {
                cond: Cond::Eq,
                rs: Reg::R1,
                rt: Reg::R0,
                target: Pc::new(9),
            },
        );
        assert_eq!(src.spawn_at(&br), None, "no training yet");
    }

    #[test]
    fn reconv_source_trains_through_on_retire() {
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        let br = |taken: bool| TraceEntry {
            pc: Pc::new(3),
            inst: Inst::Br {
                cond: Cond::Eq,
                rs: Reg::R1,
                rt: Reg::R0,
                target: Pc::new(6),
            },
            taken,
            next_pc: if taken { Pc::new(6) } else { Pc::new(4) },
            mem_addr: None,
        };
        // Not-taken path: 4, 5, 6; taken path: 6. Reconvergence: 6.
        src.on_retire(&br(false));
        src.on_retire(&entry(4, Inst::Nop));
        src.on_retire(&entry(5, Inst::Nop));
        src.on_retire(&entry(6, Inst::Nop));
        src.on_retire(&br(true)); // closes the previous window
        src.on_retire(&entry(6, Inst::Nop));
        src.on_retire(&entry(7, Inst::Nop));
        // Close the taken window by retiring the branch again.
        src.on_retire(&br(false));
        assert_eq!(
            src.spawn_at(&br(false)),
            Some((Pc::new(6), SpawnKind::Other))
        );
    }

    #[test]
    fn hint_cache_defers_first_use_then_hits() {
        let mut table = SpawnTable::default();
        table.insert(SpawnPoint {
            trigger: Pc::new(5),
            target: Pc::new(9),
            kind: SpawnKind::Hammock,
        });
        let mut src = HintCacheSource::new(StaticSpawnSource::new(table), 64, 2);
        let e = entry(5, Inst::Nop);
        assert_eq!(src.spawn_at(&e), None, "cold hint cache defers");
        assert_eq!(src.misses(), 1);
        assert_eq!(
            src.spawn_at(&e),
            Some((Pc::new(9), SpawnKind::Hammock)),
            "demand fill makes the second fetch hit"
        );
        assert_eq!(src.misses(), 1);
        assert_eq!(src.inner().table().len(), 1);
    }

    #[test]
    fn hint_cache_capacity_evicts() {
        // A 2-entry direct-mapped hint cache thrashes between conflicting
        // triggers.
        let mut table = SpawnTable::default();
        for pc in [0u32, 2] {
            // Both map to the same set of a 2-set direct-mapped cache? Use
            // pcs 0 and 2: sets = 2 entries/1 way = 2 sets; line index =
            // byte_addr*2/8 = pc. pc 0 -> set 0, pc 2 -> set 0.
            table.insert(SpawnPoint {
                trigger: Pc::new(pc),
                target: Pc::new(pc + 10),
                kind: SpawnKind::Other,
            });
        }
        let mut src = HintCacheSource::new(StaticSpawnSource::new(table), 2, 1);
        let a = entry(0, Inst::Nop);
        let b = entry(2, Inst::Nop);
        assert_eq!(src.spawn_at(&a), None); // fill a
        assert!(src.spawn_at(&a).is_some()); // hit a
        assert_eq!(src.spawn_at(&b), None); // fill b, evicts a
        assert_eq!(src.spawn_at(&a), None, "a was evicted by the conflict");
    }

    #[test]
    fn suppression_blocks_spawns() {
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        src.suppress(Pc::new(7));
        let call = entry(
            7,
            Inst::Call {
                target: Pc::new(100),
            },
        );
        assert_eq!(src.spawn_at(&call), None);
    }
}
