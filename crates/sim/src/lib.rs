//! The PolyFlow timing simulator and its equivalent-resource superscalar
//! baseline (paper §3, Figures 7–8).
//!
//! PolyFlow is a speculative-parallelization machine built on a
//! simultaneously multithreaded core: a Task Spawn Unit splits the fetch
//! stream into control-equivalent tasks, a shared out-of-order backend
//! (512-entry ROB, 64-entry scheduler, 8 FUs) executes them, and a divert
//! queue conservatively synchronizes inter-task register and memory
//! dependences — no value prediction, no selective re-execution (§3.1).
//!
//! # Trace-driven model
//!
//! The paper's simulator is execution-driven; ours replays the retirement
//! trace produced by [`polyflow_isa::execute_window`] (see DESIGN.md §3
//! for the substitution argument). Wrong-path effects appear as per-task
//! fetch stalls: a mispredicted branch freezes only its own task's fetch
//! until resolution, so control-equivalent tasks keep the backend fed —
//! the paper's central effect.
//!
//! # Example
//!
//! ```
//! use polyflow_sim::{run_policy, MachineConfig};
//! use polyflow_core::Policy;
//! use polyflow_isa::{ProgramBuilder, Reg, Cond, AluOp, execute_window};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.begin_function("main");
//! let top = b.fresh_label("top");
//! b.li(Reg::R1, 0);
//! b.bind_label(top);
//! b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
//! b.br_imm(Cond::Lt, Reg::R1, 100, top);
//! b.halt();
//! b.end_function();
//! let program = b.build()?;
//! let trace = execute_window(&program, 100_000)?.trace;
//!
//! let baseline = run_policy(&program, &trace, Policy::None);
//! let postdoms = run_policy(&program, &trace, Policy::Postdoms);
//! assert_eq!(baseline.instructions, postdoms.instructions);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Robustness: library code may not `unwrap()` — fallible paths return the
// typed errors in `error.rs`. Tests may (a failed unwrap is the assert).
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod account;
mod branch_pred;
mod cache;
mod config;
mod error;
pub mod events;
mod machine;
mod metrics;
mod profile;
mod spawn_source;
mod store_set;
pub mod timeline;

pub use account::{Bucket, CycleAccount, TaskAccount};
pub use branch_pred::{Gshare, PredictionTrace, ReturnStack};
pub use cache::{Cache, Hierarchy};
pub use config::{CacheConfig, MachineConfig};
pub use error::SimError;
pub use events::{JsonlSink, NullSink, RingSink, SimEvent, TraceSink};
pub use machine::{
    simulate, simulate_traced, simulate_with, try_simulate, try_simulate_opts, try_simulate_traced,
    try_simulate_with, PreparedTrace, SimOptions, SimScratch, SimTelemetry,
};
pub use metrics::{SimResult, SpawnCounts, SpawnEvent};
pub use spawn_source::{
    HintCacheSource, NoSpawn, ReconvSpawnSource, SpawnSource, StaticSpawnSource,
};
pub use store_set::{DependenceMode, StoreSetPredictor};

use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::{Program, Trace};
use polyflow_reconv::ReconvConfig;

/// Simulates `trace` under a static task-selection `policy`, using the
/// Figure 8 machine (superscalar geometry when the policy is
/// [`Policy::None`]).
///
/// Convenience wrapper: analyzes the program, builds the spawn table, and
/// runs the cycle model. For sweeps over many policies, precompute the
/// analysis and [`PreparedTrace`] yourself and call [`simulate`].
pub fn run_policy(program: &Program, trace: &Trace, policy: Policy) -> SimResult {
    let config = if policy == Policy::None {
        MachineConfig::superscalar()
    } else {
        MachineConfig::hpca07()
    };
    let prepared = PreparedTrace::new(trace, &config);
    if policy == Policy::None {
        simulate(&prepared, &config, &mut NoSpawn)
    } else {
        let analysis = ProgramAnalysis::analyze(program);
        let mut source = StaticSpawnSource::new(analysis.spawn_table(policy));
        simulate(&prepared, &config, &mut source)
    }
}

/// Simulates `trace` with the dynamic reconvergence-predictor spawn source
/// of §4.4 (cold predictor, trained online on the retirement stream).
pub fn run_reconvergence(trace: &Trace, reconv: ReconvConfig) -> SimResult {
    let config = MachineConfig::hpca07();
    let prepared = PreparedTrace::new(trace, &config);
    let mut source = ReconvSpawnSource::new(reconv);
    simulate(&prepared, &config, &mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, AluOp, Cond, ProgramBuilder, Reg};

    #[test]
    fn run_policy_baseline_vs_postdoms() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let skip = b.fresh_label("skip");
        b.li(Reg::R1, 0);
        b.li(Reg::R10, 99991);
        b.bind_label(top);
        b.li(Reg::R11, 2654435761);
        b.alu(AluOp::Mul, Reg::R10, Reg::R10, Reg::R11);
        b.alui(AluOp::Srl, Reg::R12, Reg::R10, 13);
        b.alui(AluOp::And, Reg::R12, Reg::R12, 1);
        b.br_imm(Cond::Eq, Reg::R12, 0, skip);
        b.alui(AluOp::Add, Reg::R3, Reg::R3, 7);
        b.bind_label(skip);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;

        let base = run_policy(&p, &trace, Policy::None);
        let pd = run_policy(&p, &trace, Policy::Postdoms);
        assert_eq!(base.instructions, pd.instructions);
        assert!(pd.total_spawns() > 0);
    }

    #[test]
    fn run_reconvergence_executes() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 200, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let r = run_reconvergence(&trace, polyflow_reconv::ReconvConfig::default());
        assert_eq!(r.instructions as usize, trace.len());
    }
}
