//! Simulation results and derived metrics.

use crate::account::{Bucket, CycleAccount};
use polyflow_core::SpawnKind;
use polyflow_isa::Pc;
use std::fmt;

/// One dynamic spawn performed by the Task Spawn Unit — the raw material
/// of the paper's Figure 4 (a dynamic fetch ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnEvent {
    /// Cycle the spawn occurred.
    pub cycle: u64,
    /// Trigger PC (the branch/call whose fetch caused the spawn).
    pub trigger: Pc,
    /// Spawn target PC (start of the new task).
    pub target: Pc,
    /// Trace index where the new task begins.
    pub target_index: u32,
    /// Classification of the spawn.
    pub kind: SpawnKind,
    /// Live tasks immediately after the spawn.
    pub live_tasks: u8,
}

/// Counters produced by one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Total cycles to retire the trace.
    pub cycles: u64,
    /// Instructions retired (the trace length).
    pub instructions: u64,
    /// Dynamic spawns performed, by kind.
    pub spawns: SpawnCounts,
    /// Spawn opportunities skipped because the target was too far ahead
    /// (or absent) in the trace.
    pub spawns_rejected_distance: u64,
    /// Spawn opportunities skipped because all task contexts were busy.
    pub spawns_rejected_contexts: u64,
    /// Spawn opportunities throttled by the profitability feedback.
    pub spawns_rejected_unprofitable: u64,
    /// Conditional-branch mispredictions replayed.
    pub branch_mispredicts: u64,
    /// Return / indirect-jump mispredictions replayed.
    pub indirect_mispredicts: u64,
    /// Cycles any task spent with fetch stalled on a branch resolution.
    pub fetch_stall_branch_cycles: u64,
    /// Cycles any task spent with fetch stalled on an instruction-cache
    /// fill (cache fills only — squash recovery and spawn setup have
    /// their own counters; the seed lumped all three in here).
    pub fetch_stall_icache_cycles: u64,
    /// Cycles any task spent refetching after a dependence-violation
    /// squash (the `squash_penalty` waits).
    pub squash_recovery_cycles: u64,
    /// Cycles freshly spawned tasks spent waiting out the Task Spawn
    /// Unit's context-setup overhead (`spawn_overhead_cycles` per spawn,
    /// fewer if the task is squashed mid-setup).
    pub spawn_setup_cycles: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Instructions that passed through the divert queue.
    pub diverted: u64,
    /// Dependence-violation squashes (store-set mode only).
    pub squashes: u64,
    /// In-flight instructions discarded by squashes.
    pub squashed_instructions: u64,
    /// Youngest-task squashes performed to reclaim ROB entries (the §6
    /// reclamation extension).
    pub rob_reclaims: u64,
    /// Register-dependence violations (hint-entry model only).
    pub register_violations: u64,
    /// Register violations that could not train the hint entry because it
    /// was full (the 8-byte capacity limit): these spawn points keep
    /// squashing until the profitability feedback throttles them.
    pub hint_capacity_misses: u64,
    /// Maximum simultaneously live tasks.
    pub max_live_tasks: usize,
    /// Every dynamic spawn, in order (see [`SpawnEvent`]).
    pub spawn_log: Vec<SpawnEvent>,
    /// The run's cycle-slot ledger: every `cycles × contexts` slot
    /// attributed to exactly one [`Bucket`] (see `crate::account`).
    pub account: CycleAccount,
}

impl SimResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of `self` over `baseline`, in percent (the y-axis of
    /// Figures 9, 10 and 12).
    ///
    /// Both runs must have retired the same instruction count.
    ///
    /// # Panics
    ///
    /// Panics if the instruction counts differ (the comparison would be
    /// meaningless).
    pub fn speedup_percent_over(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "speedup requires identical work"
        );
        100.0 * (baseline.cycles as f64 / self.cycles as f64 - 1.0)
    }

    /// Total dynamic spawns.
    pub fn total_spawns(&self) -> u64 {
        self.spawns.total()
    }

    /// JSON encoding of the result including the full [`CycleAccount`]
    /// (hand-rolled writer — the workspace takes no serde dependency).
    /// The spawn log is summarized as a count; use the event trace for
    /// per-spawn detail.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!("  \"ipc\": {:.4},\n", self.ipc()));
        out.push_str(&format!(
            "  \"spawns\": {{\"loop\": {}, \"loop_ft\": {}, \"proc_ft\": {}, \
             \"hammock\": {}, \"other\": {}, \"total\": {}}},\n",
            self.spawns.loop_spawns,
            self.spawns.loop_ft,
            self.spawns.proc_ft,
            self.spawns.hammocks,
            self.spawns.other,
            self.spawns.total()
        ));
        for (key, v) in [
            ("spawns_rejected_distance", self.spawns_rejected_distance),
            ("spawns_rejected_contexts", self.spawns_rejected_contexts),
            (
                "spawns_rejected_unprofitable",
                self.spawns_rejected_unprofitable,
            ),
            ("branch_mispredicts", self.branch_mispredicts),
            ("indirect_mispredicts", self.indirect_mispredicts),
            ("fetch_stall_branch_cycles", self.fetch_stall_branch_cycles),
            ("fetch_stall_icache_cycles", self.fetch_stall_icache_cycles),
            ("squash_recovery_cycles", self.squash_recovery_cycles),
            ("spawn_setup_cycles", self.spawn_setup_cycles),
            ("l1i_misses", self.l1i_misses),
            ("l1d_misses", self.l1d_misses),
            ("l2_misses", self.l2_misses),
            ("diverted", self.diverted),
            ("squashes", self.squashes),
            ("squashed_instructions", self.squashed_instructions),
            ("rob_reclaims", self.rob_reclaims),
            ("register_violations", self.register_violations),
            ("hint_capacity_misses", self.hint_capacity_misses),
            ("max_live_tasks", self.max_live_tasks as u64),
            ("spawn_log_len", self.spawn_log.len() as u64),
        ] {
            out.push_str(&format!("  \"{key}\": {v},\n"));
        }
        out.push_str("  \"account\": {\n");
        out.push_str(&format!(
            "    \"contexts\": {},\n    \"cycles\": {},\n",
            self.account.contexts, self.account.cycles
        ));
        out.push_str(&format!(
            "    \"total_slots\": {},\n",
            self.account.total_slots()
        ));
        out.push_str(&format!(
            "    \"buckets\": {},\n",
            buckets_json(|b| self.account.bucket(b))
        ));
        out.push_str("    \"tasks\": [\n");
        for (uid, t) in self.account.tasks.iter().enumerate() {
            let comma = if uid + 1 == self.account.tasks.len() {
                ""
            } else {
                ","
            };
            let created_by = t
                .created_by
                .map(|pc| format!("\"{pc}\""))
                .unwrap_or_else(|| "null".into());
            let kind = t
                .kind
                .map(|k| format!("\"{k}\""))
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "      {{\"uid\": {uid}, \"start_index\": {}, \"created_by\": {created_by}, \
                 \"kind\": {kind}, \"spawn_cycle\": {}, \"total\": {}, \"stalled\": {}, \
                 \"buckets\": {}}}{comma}\n",
                t.start_index,
                t.spawn_cycle,
                t.total(),
                t.stalled(),
                buckets_json(|b| t.buckets[b.index()])
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }
}

/// One-line `{"retire": n, ...}` object over every [`Bucket`].
fn buckets_json(count: impl Fn(Bucket) -> u64) -> String {
    let fields: Vec<String> = Bucket::ALL
        .iter()
        .map(|&b| format!("\"{}\": {}", b.label(), count(b)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs in {} cycles (IPC {:.2}), {} spawns, {} mispredicts",
            self.instructions,
            self.cycles,
            self.ipc(),
            self.total_spawns(),
            self.branch_mispredicts
        )
    }
}

/// Dynamic spawn counts per [`SpawnKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpawnCounts {
    /// Loop-iteration spawns.
    pub loop_spawns: u64,
    /// Loop fall-through spawns.
    pub loop_ft: u64,
    /// Procedure fall-through spawns.
    pub proc_ft: u64,
    /// Hammock spawns.
    pub hammocks: u64,
    /// "Other" spawns.
    pub other: u64,
}

impl SpawnCounts {
    /// Records one spawn.
    pub fn add(&mut self, kind: SpawnKind) {
        match kind {
            SpawnKind::Loop => self.loop_spawns += 1,
            SpawnKind::LoopFallThrough => self.loop_ft += 1,
            SpawnKind::ProcFallThrough => self.proc_ft += 1,
            SpawnKind::Hammock => self.hammocks += 1,
            SpawnKind::Other => self.other += 1,
        }
    }

    /// The count for one kind.
    pub fn count(&self, kind: SpawnKind) -> u64 {
        match kind {
            SpawnKind::Loop => self.loop_spawns,
            SpawnKind::LoopFallThrough => self.loop_ft,
            SpawnKind::ProcFallThrough => self.proc_ft,
            SpawnKind::Hammock => self.hammocks,
            SpawnKind::Other => self.other,
        }
    }

    /// Total across all kinds.
    pub fn total(&self) -> u64 {
        self.loop_spawns + self.loop_ft + self.proc_ft + self.hammocks + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_speedup() {
        let base = SimResult {
            cycles: 200,
            instructions: 400,
            ..SimResult::default()
        };
        let fast = SimResult {
            cycles: 100,
            instructions: 400,
            ..SimResult::default()
        };
        assert_eq!(base.ipc(), 2.0);
        assert_eq!(fast.ipc(), 4.0);
        assert_eq!(fast.speedup_percent_over(&base), 100.0);
        assert_eq!(base.speedup_percent_over(&base), 0.0);
        // Slowdowns are negative (Figure 9 shows some).
        assert!(base.speedup_percent_over(&fast) < 0.0);
    }

    #[test]
    #[should_panic(expected = "identical work")]
    fn speedup_rejects_different_work() {
        let a = SimResult {
            cycles: 10,
            instructions: 5,
            ..SimResult::default()
        };
        let b = SimResult {
            cycles: 10,
            instructions: 6,
            ..SimResult::default()
        };
        let _ = a.speedup_percent_over(&b);
    }

    #[test]
    fn spawn_counts_roundtrip() {
        let mut c = SpawnCounts::default();
        c.add(SpawnKind::Hammock);
        c.add(SpawnKind::Hammock);
        c.add(SpawnKind::Loop);
        assert_eq!(c.count(SpawnKind::Hammock), 2);
        assert_eq!(c.count(SpawnKind::Loop), 1);
        assert_eq!(c.count(SpawnKind::Other), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn zero_cycles_ipc_is_zero() {
        assert_eq!(SimResult::default().ipc(), 0.0);
    }

    #[test]
    fn display_mentions_ipc() {
        let r = SimResult {
            cycles: 10,
            instructions: 20,
            ..SimResult::default()
        };
        assert!(r.to_string().contains("IPC 2.00"));
    }
}
